//! Property tests for the fault-injection layer and the runtime
//! guardband:
//!
//! * with no plan armed, the hooked simulation path is bit-identical to
//!   the production [`simulate`] path (the pinned `results/*.txt` tables
//!   stay byte-comparable);
//! * the watchdog never fires on clean certified runs, across seeds — the
//!   no-false-alarm property;
//! * armed plans are deterministic and refuse to arm when empty;
//! * the online re-certification gate spends at most its α: across seeds,
//!   a still-violating stream (true pass rate at the certified target `S`)
//!   is never re-certified beyond the nominal error budget, even under
//!   per-dataset peeking and the full multi-attempt retry protocol, and
//!   the sequential breach test never fires on clean oracle streams.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_core::pipeline::{compile, CompileConfig, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_core::recert::RecertConfig;
use mithra_core::watchdog::{GuardState, QualityWatchdog, WatchdogConfig};
use mithra_sim::fault::FaultPlan;
use mithra_sim::system::{run, simulate, RunHooks, SimOptions};
use mithra_sim::SimError;
use mithra_stats::clopper_pearson::Confidence;
use mithra_stats::sequential::SequentialBinomial;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};

fn compiled_sobel() -> &'static Compiled {
    static COMPILED: OnceLock<Compiled> = OnceLock::new();
    COMPILED.get_or_init(|| {
        let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
        compile(bench, &CompileConfig::smoke()).unwrap()
    })
}

#[test]
fn hook_free_run_is_bit_identical_to_simulate_across_seeds() {
    let compiled = compiled_sobel();
    let opts = SimOptions::default();
    for seed in [3u64, 17, 40, 123, 999] {
        let ds = compiled.function.dataset(seed, DatasetScale::Smoke);
        let profile = DatasetProfile::collect(&compiled.function, ds);
        let mut a = compiled.table.clone();
        let mut b = compiled.table.clone();
        let plain = simulate(compiled, &profile, &mut a, &opts);
        let hooked = run(compiled, &profile, &mut b, &opts, RunHooks::none()).unwrap();
        assert_eq!(plain, hooked, "seed {seed} diverged");
    }
}

#[test]
fn watchdog_never_fires_on_clean_certified_runs_across_seeds() {
    let compiled = compiled_sobel();
    let opts = SimOptions::default();
    for seed in [5u64, 21, 77, 310, 4242] {
        let ds = compiled.function.dataset(seed, DatasetScale::Smoke);
        let profile = DatasetProfile::collect(&compiled.function, ds);
        // The oracle admits exactly the invocations whose error is within
        // the certified threshold, so every sampled violation is false.
        let mut oracle = compiled.oracle_for(&profile);
        let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
        let guarded = run(
            compiled,
            &profile,
            &mut oracle,
            &opts,
            RunHooks::none().with_watchdog(&mut watchdog, 2),
        )
        .unwrap();
        let report = watchdog.report();
        assert_eq!(report.breaches, 0, "seed {seed}: {report:?}");
        assert_eq!(report.state, GuardState::Monitoring, "seed {seed}");
        assert_eq!(report.violations, 0, "seed {seed}");
        // Admission was never gated: same delegation as the clean run.
        let mut plain_oracle = compiled.oracle_for(&profile);
        let plain = simulate(compiled, &profile, &mut plain_oracle, &opts);
        assert_eq!(guarded.invoked, plain.invoked, "seed {seed}");
        assert_eq!(guarded.quality_loss, plain.quality_loss, "seed {seed}");
    }
}

#[test]
fn disarmed_plans_refuse_to_arm_and_armed_plans_are_deterministic() {
    let compiled = compiled_sobel();
    let ds = compiled.function.dataset(60, DatasetScale::Smoke);
    assert!(matches!(
        FaultPlan::disarmed().arm(compiled, &ds),
        Err(SimError::Disarmed)
    ));
    assert!(matches!(
        FaultPlan::uniform(9, 0.0).arm(compiled, &ds),
        Err(SimError::Disarmed)
    ));
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::uniform(seed, 0.003);
        let a = plan.arm(compiled, &ds).unwrap();
        let b = plan.arm(compiled, &ds).unwrap();
        assert_eq!(a.profile.errors(), b.profile.errors(), "seed {seed}");
        assert_eq!(a.fifo_events, b.fifo_events, "seed {seed}");
    }
}

/// Runs the re-certification gate exactly as [`RecertEngine`] runs it —
/// up to `max_attempts` frozen candidates, each judged by a fresh
/// e-process at the Bonferroni share `α / max_attempts`, peeked after
/// every dataset, abandoned after `max_certify_trials` — against a
/// synthetic candidate whose per-dataset quality pass is Bernoulli
/// `pass_rate`. Returns whether any attempt certified `target_rate`.
///
/// [`RecertEngine`]: mithra_core::recert::RecertEngine
fn gate_certifies(
    cfg: &RecertConfig,
    alpha: f64,
    target_rate: f64,
    pass_rate: f64,
    seed: u64,
) -> bool {
    let attempt_confidence = Confidence::new(1.0 - alpha / cfg.max_attempts as f64).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for _attempt in 0..cfg.max_attempts {
        let mut test = SequentialBinomial::new();
        for _trial in 0..cfg.max_certify_trials {
            test.observe(rng.gen_bool(pass_rate));
            if test.certifies(target_rate, attempt_confidence).unwrap() {
                return true;
            }
        }
    }
    false
}

#[test]
fn recert_gate_never_certifies_still_violating_streams_beyond_alpha() {
    // The certificate claims "pass rate > S"; a candidate whose true rate
    // is exactly S is the hardest still-violating stream — anything the
    // gate grants it is pure type-I error. Across seeds, the fraction of
    // such streams that EVER certify (peeking after every dataset, across
    // the whole multi-attempt retry budget) must stay within the α the
    // Bonferroni split promises. A naive repeated Clopper–Pearson monitor
    // fails exactly this property (see `mithra_stats::sequential`).
    let cfg = RecertConfig::paper_default();
    let (alpha, s) = (0.1, 0.8); // QualitySpec::new(q, 0.9, 0.8)
    let runs = 300u32;
    let false_certs = (0..runs)
        .filter(|&i| gate_certifies(&cfg, alpha, s, s, 0xFA15_7A7E + u64::from(i)))
        .count();
    let rate = false_certs as f64 / f64::from(runs);
    // Budget plus three binomial standard errors of Monte-Carlo slack.
    let slack = 3.0 * (alpha * (1.0 - alpha) / f64::from(runs)).sqrt();
    assert!(
        rate <= alpha + slack,
        "gate re-certified {false_certs}/{runs} still-violating streams \
         (rate {rate:.3}, budget {alpha})"
    );
}

#[test]
fn recert_gate_retains_power_for_genuinely_recovered_streams() {
    // The α budget must not be bought with vacuous conservatism: a
    // candidate whose true pass rate sits well above S (the selection
    // margin exists precisely to produce such candidates) certifies
    // within the trial budget nearly always.
    let cfg = RecertConfig::paper_default();
    let (alpha, s) = (0.1, 0.8);
    let runs = 100u32;
    let certified = (0..runs)
        .filter(|&i| gate_certifies(&cfg, alpha, s, 0.97, 0x9000_D000 + u64::from(i)))
        .count();
    assert!(
        certified >= 95,
        "only {certified}/{runs} genuinely-recovered streams certified"
    );
}

proptest! {
    #[test]
    fn sequential_test_never_fires_on_clean_oracle_streams(
        n in 1u64..400,
        limit in 0.02f64..0.5,
        level in 0.80f64..0.999,
    ) {
        // A clean oracle stream has zero violations: at no prefix, for no
        // limit, at no confidence may the breach side of the sequential
        // test conclude the quality target is being missed — and the
        // certify side must eventually grant a long-enough clean stream.
        let conf = Confidence::new(level).unwrap();
        let mut test = SequentialBinomial::new();
        for _ in 0..n {
            test.observe(true);
            prop_assert!(!test.refutes(1.0 - limit, conf).unwrap());
        }
        if n >= 60 {
            // ~29–45 consecutive passes certify S = 0.9 at α = 0.05; every
            // generated confidence here is no stricter than that.
            prop_assert!(test.certifies(0.9, Confidence::new(0.95).unwrap()).unwrap());
        }
    }
}

#[test]
fn guardband_restores_quality_under_heavy_faults() {
    // inversek2j's table keeps admitting under weight faults (sobel's
    // rejects nearly everything, starving the watchdog of samples), so
    // it exercises the full breach → fallback → restore ladder.
    let bench: Arc<dyn Benchmark> = suite::by_name("inversek2j").unwrap().into();
    let compiled = &compile(bench, &CompileConfig::smoke()).unwrap();
    let opts = SimOptions::default();
    let ds = compiled.function.dataset(71, DatasetScale::Smoke);
    let armed = FaultPlan {
        npu_weight_bit_rate: 0.02,
        lut_bit_rate: 0.002,
        ..FaultPlan::disarmed()
    }
    .arm(compiled, &ds)
    .unwrap();

    let mut off_cls = armed.classifier.clone();
    let off = run(
        compiled,
        &armed.profile,
        &mut off_cls,
        &opts,
        RunHooks::none(),
    )
    .unwrap();

    let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
    let mut on_cls = armed.classifier.clone();
    let on = run(
        compiled,
        &armed.profile,
        &mut on_cls,
        &opts,
        RunHooks::with_fifo_events(&armed.fifo_events).with_watchdog(&mut watchdog, 1),
    )
    .unwrap();

    let report = watchdog.report();
    assert!(report.breaches > 0, "{report:?}");
    assert!(
        on.quality_loss < off.quality_loss,
        "guarded {} vs unguarded {}",
        on.quality_loss,
        off.quality_loss
    );
    assert!(on.invoked < off.invoked);
}
