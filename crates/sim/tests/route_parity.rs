//! Pool-of-one parity: the routed compile path degenerates to the
//! binary accept/reject pipeline, **bit for bit**, on every benchmark.
//!
//! The routed architecture replaced the binary decision core, so the old
//! pipeline survives only as the `K = 1` special case. These tests pin
//! that equivalence across the whole suite and across disjoint
//! compilation seed spaces: same certified threshold and Clopper–Pearson
//! floor, same deployed classifier, and byte-equal end-to-end simulation
//! of an unseen dataset. Any drift here would silently change every
//! committed `results/*.txt`.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_core::pipeline::{compile, compile_routed, CompileConfig};
use mithra_core::profile::DatasetProfile;
use mithra_core::route::PoolSpec;
use mithra_core::session::profile_validation;
use mithra_explore::{explore, Candidate, DesignSpace, ExploreConfig};
use mithra_sim::system::{run_routed, simulate, SimOptions};
use std::sync::Arc;

/// Compilation seed bases to sweep: the standard base plus two windows
/// inside the extension-test seed space (≥ 7,000,000, disjoint from
/// compile/validation/serve/conform seeds).
const SEED_BASES: [u64; 3] = [0, 7_000_000, 7_000_500];

/// An unseen dataset seed for the end-to-end run comparison, past every
/// compilation window above.
const UNSEEN_SEED: u64 = 7_900_000;

#[test]
fn pool_of_one_is_bit_identical_to_binary_on_every_benchmark() {
    for bench in suite::all() {
        let bench: Arc<dyn Benchmark> = bench.into();
        for seed_base in SEED_BASES {
            let config = CompileConfig {
                seed_base,
                ..CompileConfig::smoke()
            };
            let compiled = compile(Arc::clone(&bench), &config).unwrap();
            let routed = compile_routed(
                Arc::clone(&bench),
                &config,
                &PoolSpec::single(bench.npu_topology()),
            )
            .unwrap();
            let tag = format!("{} seed_base={seed_base}", bench.name());

            // The certificate: same threshold, same statistics.
            assert_eq!(
                routed.threshold.threshold.to_bits(),
                compiled.threshold.threshold.to_bits(),
                "{tag}: threshold"
            );
            assert_eq!(
                routed.threshold.successes, compiled.threshold.successes,
                "{tag}: successes"
            );
            assert_eq!(
                routed.threshold.trials, compiled.threshold.trials,
                "{tag}: trials"
            );
            assert_eq!(
                routed.threshold.certified_rate.to_bits(),
                compiled.threshold.certified_rate.to_bits(),
                "{tag}: certified rate"
            );
            assert_eq!(
                routed.threshold.mean_invocation_rate.to_bits(),
                compiled.threshold.mean_invocation_rate.to_bits(),
                "{tag}: mean invocation rate"
            );
            assert_eq!(
                routed.threshold.member_violations,
                vec![routed.threshold.trials - routed.threshold.successes],
                "{tag}: one-member attribution"
            );

            // The deployed router is one stage: the binary table
            // classifier, byte for byte.
            assert_eq!(routed.router.len(), 1, "{tag}: router stages");
            assert_eq!(
                serde_json::to_string(&routed.router.stages()[0]).unwrap(),
                serde_json::to_string(&compiled.table).unwrap(),
                "{tag}: router stage 0 vs binary table"
            );

            // End to end: simulating an unseen dataset through the
            // routed system reproduces the binary run exactly.
            let dataset = compiled.function.dataset(UNSEEN_SEED, DatasetScale::Smoke);
            let profile = DatasetProfile::collect(&compiled.function, dataset);
            let mut table = compiled.table.clone();
            let binary_run = simulate(&compiled, &profile, &mut table, &SimOptions::default());
            let mut router = routed.router.clone();
            let routed_run =
                run_routed(&routed, &[&profile], &mut router, &SimOptions::default()).unwrap();
            assert_eq!(binary_run, routed_run.run, "{tag}: end-to-end run");
            assert_eq!(
                routed_run.member_invocations,
                vec![binary_run.invoked],
                "{tag}: member invocations"
            );
        }
    }
}

#[test]
fn explored_pool_of_one_point_is_bit_identical_to_binary_pipeline() {
    // The design-space explorer must not be a new code path: its
    // pool-of-one point goes through the same routed compile and the
    // same validation-arm simulation, so its certificate and its mean
    // frontier metrics must equal the hand-built binary pipeline's bit
    // for bit.
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let compile_cfg = CompileConfig::smoke();
    let config = ExploreConfig {
        compile: compile_cfg.clone(),
        validation_datasets: 3,
        trials: 8,
        probe_datasets: 2,
        probe_epochs: 4,
        budget: None,
        ..ExploreConfig::default()
    };
    let space = DesignSpace {
        candidates: vec![Candidate::plain(&[1])],
    };
    let report = explore(&bench, &space, &config).unwrap();
    assert_eq!(report.enumerated, 1);
    assert_eq!(report.evaluated, 1);
    let point = &report.points[report.pool_of_one_index.unwrap()];
    assert!(point.certified);

    let compiled = compile(Arc::clone(&bench), &compile_cfg).unwrap();
    assert_eq!(
        point.threshold.to_bits(),
        compiled.threshold.threshold.to_bits(),
        "explored pool-of-one certificate vs binary"
    );
    assert_eq!(
        point.certified_rate.to_bits(),
        compiled.threshold.certified_rate.to_bits(),
        "explored pool-of-one certified rate vs binary"
    );

    // Validation arm: the explored point's mean speedup/energy over the
    // validation seed space equals the binary pipeline simulated over
    // the very same datasets, folded in the same order.
    let (validation, _) = profile_validation(
        &compiled.function,
        &compile_cfg,
        config.validation_seed_base,
        config.validation_datasets,
    );
    let mut speedup = 0.0f64;
    let mut energy = 0.0f64;
    for profile in &validation {
        let mut table = compiled.table.clone();
        let run = simulate(&compiled, profile, &mut table, &SimOptions::default());
        speedup += run.speedup();
        energy += run.energy_reduction();
    }
    let n = config.validation_datasets as f64;
    assert_eq!(
        point.speedup.to_bits(),
        (speedup / n).to_bits(),
        "explored pool-of-one mean speedup vs binary"
    );
    assert_eq!(
        point.energy_reduction.to_bits(),
        (energy / n).to_bits(),
        "explored pool-of-one mean energy reduction vs binary"
    );
}

#[test]
fn fixed_tiering_is_one_enumerated_candidate_verbatim() {
    // The hand-fixed PR-6 ÷4/÷2/accurate tiering must survive inside the
    // enumerated space as an exact `PoolSpec` — same topologies, default
    // router, no margins — on every benchmark, so explorations always
    // measure it as an anchor.
    for bench in suite::all() {
        let bench: Arc<dyn Benchmark> = bench.into();
        let accurate = bench.npu_topology();
        let fixed = PoolSpec::tiered(&accurate);
        let enumerated = DesignSpace::full().enumerate(&accurate);
        assert!(
            enumerated.iter().any(|(_, spec)| *spec == fixed),
            "{}: fixed tiering missing from the enumerated space",
            bench.name()
        );
        assert!(
            enumerated
                .iter()
                .any(|(_, spec)| *spec == PoolSpec::single(accurate.clone())),
            "{}: pool of one missing from the enumerated space",
            bench.name()
        );
    }
}
