//! System-level timing and energy simulation.
//!
//! The paper measures MITHRA on MARSSx86 (a cycle-accurate x86 simulator
//! modeling a Nehalem-class core) with McPAT/CACTI energy models. This
//! crate substitutes an analytical event model with the same accounting
//! structure: per-invocation core cycles, NPU cycles from the 8-PE
//! schedule, classifier overheads on the decision path, enqueue/dequeue
//! and special-branch ISA costs, and a 45 nm energy constants table. The
//! reported figures of merit — speedup, energy reduction, invocation rate,
//! energy-delay product — are ratios over the all-precise baseline, so the
//! classifier-vs-oracle comparisons the paper plots are preserved.
//!
//! The [`fault`] module adds a seeded, deterministic fault-injection layer
//! (bit flips in the accelerator's weights and sigmoid LUT, corrupted
//! classifier tables and MISR configurations, FIFO stalls/drops, input
//! drift); [`system::run`] threads the resulting fault streams and an
//! optional quality watchdog through the simulation loop, charging the
//! cycle and energy cost of every guard action.
//!
//! # Example
//!
//! ```no_run
//! use mithra_sim::system::{simulate, SimOptions};
//! use mithra_core::pipeline::{compile, CompileConfig};
//! use mithra_core::profile::DatasetProfile;
//! use mithra_axbench::{suite, dataset::DatasetScale};
//! use std::sync::Arc;
//!
//! let bench: Arc<_> = suite::by_name("sobel").unwrap().into();
//! let compiled = compile(bench, &CompileConfig::smoke())?;
//! let ds = compiled.function.dataset(999, DatasetScale::Smoke);
//! let profile = DatasetProfile::collect(&compiled.function, ds);
//! let mut table = compiled.table.clone();
//! let run = simulate(&compiled, &profile, &mut table, &SimOptions::default());
//! println!("speedup {:.2}x", run.speedup());
//! # Ok::<(), mithra_core::MithraError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod energy;
pub mod fault;
pub mod overlap;
pub mod report;
pub mod software;
pub mod system;
pub mod trace;

mod error;

pub use error::SimError;
