//! Simulation-layer errors.
//!
//! Runtime decision paths reachable from [`crate::system::run`] return
//! these instead of panicking: a corrupted accelerator or classifier must
//! degrade a simulated run's quality, never abort the process hosting it.

use mithra_core::MithraError;
use mithra_npu::NpuError;
use std::error::Error;
use std::fmt;

/// Errors raised by the simulation layer.
#[derive(Debug)]
pub enum SimError {
    /// A [`crate::fault::FaultPlan`] with no armed fault source was asked
    /// to arm — the caller should run the clean path instead.
    Disarmed,
    /// A summary was requested over zero runs.
    EmptyRuns,
    /// A core-layer failure (classifier, profile replay, statistics).
    Core(MithraError),
    /// An NPU-layer failure (datapath dimension mismatch, FIFO refusal).
    Npu(NpuError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Disarmed => {
                write!(f, "fault plan is disarmed; run the clean path instead")
            }
            SimError::EmptyRuns => write!(f, "cannot summarize zero runs"),
            SimError::Core(e) => write!(f, "core error: {e}"),
            SimError::Npu(e) => write!(f, "npu error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Core(e) => Some(e),
            SimError::Npu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MithraError> for SimError {
    fn from(e: MithraError) -> Self {
        SimError::Core(e)
    }
}

impl From<NpuError> for SimError {
    fn from(e: NpuError) -> Self {
        SimError::Npu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SimError::Disarmed.to_string().contains("disarmed"));
        assert!(SimError::EmptyRuns.to_string().contains("zero runs"));
        let wrapped = SimError::from(NpuError::DimensionMismatch {
            expected: 2,
            actual: 3,
        });
        assert!(wrapped.to_string().contains("npu error"));
        assert!(wrapped.source().is_some());
    }
}
