//! Seeded fault injection: deterministic fault plans over the simulated
//! hardware.
//!
//! A [`FaultPlan`] describes *what can go wrong* in a MITHRA system —
//! bit flips in the NPU's weight buffers and sigmoid LUT, corrupted
//! classifier-table entries and MISR configurations, FIFO stalls and
//! drops, and input-distribution drift — with every random choice drawn
//! from `StdRng::seed_from_u64`, so a given `(plan, dataset)` pair always
//! produces the same faults.
//!
//! Faults are applied **offline to copies** of the compiled artifacts:
//! [`FaultPlan::arm`] quantizes the trained network into the fixed-point
//! hardware datapath ([`FixedMlp`]), flips bits in that copy, re-profiles
//! the dataset through it, and clones-then-corrupts the table classifier.
//! The production simulation path never consults a plan — a disarmed plan
//! refuses to arm ([`SimError::Disarmed`]) and clean runs pay nothing.
//!
//! Each fault source flips bits by an independent per-bit Bernoulli draw
//! at the configured rate over the site's [`FaultSite::fault_bits`] space,
//! from its own derived RNG stream, so changing one rate never perturbs
//! the faults drawn for another source.

use crate::error::SimError;
use mithra_axbench::dataset::{Dataset, DriftSpec, OutputBuffer};
use mithra_core::pipeline::Compiled;
use mithra_core::profile::DatasetProfile;
use mithra_core::table::TableClassifier;
use mithra_npu::fault::FaultSite;
use mithra_npu::fixed::{FixedMlp, QFormat};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Golden-ratio multiplier mixing the dataset seed into the plan seed.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// What happens to the accelerator FIFOs on one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoEvent {
    /// Queues behave normally.
    None,
    /// A full/empty queue stalls the core for
    /// [`crate::cpu::IsaCosts::fifo_stall`] cycles; the invocation then
    /// completes normally.
    Stall,
    /// The output FIFO dropped this invocation's result: the consumer
    /// dequeues the *stale* output of the last successful invocation.
    Drop,
}

/// A seeded, deterministic description of injected faults.
///
/// Rates are per-bit (for the bit-flip sources) or per-invocation (for
/// the FIFO sources) Bernoulli probabilities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; mixed with the dataset seed on arming.
    pub seed: u64,
    /// Per-bit flip probability over the NPU's weight/bias words.
    pub npu_weight_bit_rate: f64,
    /// Per-bit flip probability over the sigmoid LUT entries.
    pub lut_bit_rate: f64,
    /// Per-bit flip probability over the classifier's table entries.
    pub table_bit_rate: f64,
    /// Number of MISR hash configurations to corrupt (aliasing faults).
    pub misr_corruptions: usize,
    /// Per-invocation probability of a FIFO stall.
    pub fifo_stall_rate: f64,
    /// Per-invocation probability of an output-FIFO drop.
    pub fifo_drop_rate: f64,
    /// Optional input-distribution drift applied to the dataset.
    pub drift: Option<DriftSpec>,
}

impl FaultPlan {
    /// A plan that injects nothing. [`FaultPlan::arm`] refuses it.
    pub fn disarmed() -> Self {
        Self {
            seed: 0,
            npu_weight_bit_rate: 0.0,
            lut_bit_rate: 0.0,
            table_bit_rate: 0.0,
            misr_corruptions: 0,
            fifo_stall_rate: 0.0,
            fifo_drop_rate: 0.0,
            drift: None,
        }
    }

    /// A plan applying `rate` uniformly to every bit-flip and FIFO fault
    /// source (no MISR corruption, no drift). `uniform(seed, 0.0)` is
    /// disarmed — sweep baselines at rate 0 run the clean path.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            npu_weight_bit_rate: rate,
            lut_bit_rate: rate,
            table_bit_rate: rate,
            misr_corruptions: 0,
            fifo_stall_rate: rate,
            fifo_drop_rate: rate,
            drift: None,
        }
    }

    /// Adds input-distribution drift to the plan.
    pub fn with_drift(mut self, drift: DriftSpec) -> Self {
        self.drift = if drift.is_identity() {
            None
        } else {
            Some(drift)
        };
        self
    }

    /// Adds `count` MISR configuration corruptions to the plan.
    pub fn with_misr_corruptions(mut self, count: usize) -> Self {
        self.misr_corruptions = count;
        self
    }

    /// Whether any fault source is active.
    pub fn is_armed(&self) -> bool {
        self.npu_weight_bit_rate > 0.0
            || self.lut_bit_rate > 0.0
            || self.table_bit_rate > 0.0
            || self.misr_corruptions > 0
            || self.fifo_stall_rate > 0.0
            || self.fifo_drop_rate > 0.0
            || self.drift.is_some()
    }

    /// Applies the plan to copies of `compiled`'s artifacts for one
    /// dataset, producing the faulted substrate a simulation runs on.
    ///
    /// The NPU is re-profiled through the fixed-point hardware datapath
    /// ([`FixedMlp`], Q16) with the plan's weight/LUT bits flipped; the
    /// table classifier is cloned and corrupted; FIFO events are drawn
    /// per invocation. `compiled` itself is never mutated.
    ///
    /// # Errors
    ///
    /// [`SimError::Disarmed`] if no fault source is active, or a wrapped
    /// NPU/core error if the faulted datapath cannot be evaluated.
    pub fn arm(&self, compiled: &Compiled, dataset: &Dataset) -> Result<ArmedFaults, SimError> {
        if !self.is_armed() {
            return Err(SimError::Disarmed);
        }
        let base = self.seed ^ dataset.seed().wrapping_mul(SEED_MIX);
        let stage_rng =
            |stage: u64| StdRng::seed_from_u64(base.wrapping_add(stage.wrapping_mul(SEED_MIX)));

        // Input-distribution drift first: it defines the inputs every
        // other fault source is profiled against.
        let dataset = match &self.drift {
            Some(spec) => dataset.drifted(spec),
            None => dataset.clone(),
        };

        // Faulted accelerator: quantize to the hardware datapath, flip
        // weight and LUT bits in the copy.
        let function = &compiled.function;
        let mut fixed = FixedMlp::quantize(function.npu(), QFormat::new(16)?);
        apply_bit_flips(&mut fixed, self.npu_weight_bit_rate, &mut stage_rng(1));
        apply_bit_flips(fixed.lut_mut(), self.lut_bit_rate, &mut stage_rng(2));

        // Re-profile the dataset through the faulted datapath.
        let bench = function.benchmark();
        let n = dataset.invocation_count();
        let mut precise = OutputBuffer::with_capacity(bench.output_dim(), n);
        let mut approx = OutputBuffer::with_capacity(bench.output_dim(), n);
        let mut max_err = Vec::with_capacity(n);
        let mut p = Vec::new();
        for input in dataset.iter() {
            function.precise_into(input, &mut p);
            let normalized = function.input_normalizer().forward(input);
            let raw = fixed.run(&normalized)?;
            let a = function.output_normalizer().inverse(&raw);
            max_err.push(function.max_normalized_error(&p, &a));
            precise.push(&p);
            approx.push(&a);
        }
        let final_precise = bench.run_application(&dataset, &precise);
        let profile = DatasetProfile::from_parts(dataset, precise, approx, max_err, final_precise);

        // Corrupted classifier: table-entry flips, then MISR aliasing.
        let mut classifier = compiled.table.clone();
        apply_bit_flips(&mut classifier, self.table_bit_rate, &mut stage_rng(3));
        let mut misr_rng = stage_rng(4);
        let tables = classifier.configs().len();
        for _ in 0..self.misr_corruptions {
            let table = misr_rng.gen_range(0..tables);
            let taps_mask = misr_rng.gen_range(0..0xFFFFu32) + 1;
            let rotate_delta = misr_rng.gen_range(0..30u32) + 1;
            classifier.corrupt_misr(table, taps_mask, rotate_delta);
        }

        // Per-invocation FIFO events.
        let mut fifo_rng = stage_rng(5);
        let stall = self.fifo_stall_rate.clamp(0.0, 1.0);
        let drop = self.fifo_drop_rate.clamp(0.0, 1.0);
        let fifo_events = (0..n)
            .map(|_| {
                if stall > 0.0 && fifo_rng.gen_bool(stall) {
                    FifoEvent::Stall
                } else if drop > 0.0 && fifo_rng.gen_bool(drop) {
                    FifoEvent::Drop
                } else {
                    FifoEvent::None
                }
            })
            .collect();

        Ok(ArmedFaults {
            profile,
            classifier,
            fifo_events,
        })
    }
}

/// When — and how hard — the input distribution moves over a session's
/// dataset sequence.
///
/// A schedule maps a dataset index to the [`DriftSpec`] in force for that
/// dataset, covering the three canonical drift shapes: an abrupt **step**,
/// a gradual **ramp**, and a **transient** excursion that later reverts.
/// Schedules are plain data — seeded through the target spec, serialized
/// with serde (`figw` writes them into its JSON artifacts), and evaluated
/// with [`DriftSchedule::drift_at`], so the same schedule replayed against
/// the same seeds reproduces the same session bit for bit.
///
/// The noise stream of the returned spec is re-seeded per dataset index
/// (mixing the index into `drift.seed`): consecutive datasets under the
/// same nominal drift see independent noise, as real drifting traffic
/// would, while the whole sequence stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DriftSchedule {
    /// The distribution never moves.
    None,
    /// Identity before `at`; the full `drift` from dataset `at` onward.
    Step {
        /// First drifted dataset index.
        at: usize,
        /// The drift in force from `at` onward.
        drift: DriftSpec,
    },
    /// Linear interpolation from identity at dataset `from` to the full
    /// `drift` at dataset `until`, holding steady afterwards.
    Ramp {
        /// Last identity dataset index.
        from: usize,
        /// First dataset at full drift (must be `> from`).
        until: usize,
        /// The drift reached at `until`.
        drift: DriftSpec,
    },
    /// The full `drift` inside `[at, until)`; identity before and after —
    /// the drift-then-revert scenario the re-certifier must survive
    /// without wedging on the transient distribution.
    Transient {
        /// First drifted dataset index.
        at: usize,
        /// First reverted (identity) dataset index.
        until: usize,
        /// The drift in force inside the excursion.
        drift: DriftSpec,
    },
}

impl DriftSchedule {
    /// The drift in force for dataset `index`, or `None` where the
    /// schedule leaves the distribution untouched (including ramp points
    /// that interpolate to the identity and specs that *are* the
    /// identity).
    pub fn drift_at(&self, index: usize) -> Option<DriftSpec> {
        let reseed = |mut spec: DriftSpec| {
            spec.seed ^= (index as u64).wrapping_mul(SEED_MIX);
            spec
        };
        let spec = match *self {
            DriftSchedule::None => return None,
            DriftSchedule::Step { at, drift } => {
                if index < at {
                    return None;
                }
                drift
            }
            DriftSchedule::Ramp { from, until, drift } => {
                if index <= from {
                    return None;
                }
                let span = until.saturating_sub(from).max(1);
                let t = ((index - from) as f32 / span as f32).min(1.0);
                DriftSpec {
                    scale: 1.0 + t * (drift.scale - 1.0),
                    offset: t * drift.offset,
                    noise_std: t * drift.noise_std,
                    seed: drift.seed,
                }
            }
            DriftSchedule::Transient { at, until, drift } => {
                if index < at || index >= until {
                    return None;
                }
                drift
            }
        };
        if spec.is_identity() {
            None
        } else {
            Some(reseed(spec))
        }
    }

    /// Whether any dataset index drifts under this schedule.
    pub fn is_active(&self) -> bool {
        match *self {
            DriftSchedule::None => false,
            DriftSchedule::Step { drift, .. } => !drift.is_identity(),
            DriftSchedule::Ramp { from, until, drift } => !drift.is_identity() && until > from,
            DriftSchedule::Transient { at, until, drift } => !drift.is_identity() && until > at,
        }
    }
}

/// Flips each bit of `site` independently with probability `rate`.
fn apply_bit_flips(site: &mut dyn FaultSite, rate: f64, rng: &mut StdRng) {
    let rate = rate.clamp(0.0, 1.0);
    if rate <= 0.0 {
        return;
    }
    for bit in 0..site.fault_bits() {
        if rng.gen_bool(rate) {
            site.flip_bit(bit);
        }
    }
}

/// The faulted substrate a simulation runs on: a re-profiled dataset, a
/// corrupted classifier, and a per-invocation FIFO event stream.
#[derive(Debug, Clone)]
pub struct ArmedFaults {
    /// The dataset (drifted if the plan says so) profiled through the
    /// faulted fixed-point accelerator.
    pub profile: DatasetProfile,
    /// The corrupted table classifier.
    pub classifier: TableClassifier,
    /// One event per invocation.
    pub fifo_events: Vec<FifoEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::DatasetScale;
    use mithra_axbench::suite;
    use mithra_core::pipeline::{compile, CompileConfig};
    use std::sync::{Arc, OnceLock};

    fn compiled_sobel() -> &'static Compiled {
        static COMPILED: OnceLock<Compiled> = OnceLock::new();
        COMPILED.get_or_init(|| {
            let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
            compile(bench, &CompileConfig::smoke()).unwrap()
        })
    }

    #[test]
    fn drift_schedule_shapes_cover_step_ramp_transient() {
        let drift = DriftSpec {
            scale: 1.4,
            offset: 0.2,
            noise_std: 0.1,
            seed: 7,
        };
        let step = DriftSchedule::Step { at: 3, drift };
        assert!(step.drift_at(2).is_none());
        assert!(step.drift_at(3).is_some());
        assert!(step.drift_at(100).is_some());

        let ramp = DriftSchedule::Ramp {
            from: 2,
            until: 6,
            drift,
        };
        assert!(ramp.drift_at(2).is_none(), "ramp starts after `from`");
        let half = ramp.drift_at(4).unwrap();
        assert!((half.scale - 1.2).abs() < 1e-6, "scale {}", half.scale);
        assert!((half.offset - 0.1).abs() < 1e-6);
        let full = ramp.drift_at(6).unwrap();
        assert!((full.scale - drift.scale).abs() < 1e-6);
        let held = ramp.drift_at(50).unwrap();
        assert!((held.scale - drift.scale).abs() < 1e-6, "ramps hold");

        let transient = DriftSchedule::Transient {
            at: 3,
            until: 6,
            drift,
        };
        assert!(transient.drift_at(2).is_none());
        assert!(transient.drift_at(3).is_some());
        assert!(transient.drift_at(5).is_some());
        assert!(transient.drift_at(6).is_none(), "transients revert");

        assert!(DriftSchedule::None.drift_at(0).is_none());
        assert!(!DriftSchedule::None.is_active());
        assert!(step.is_active() && ramp.is_active() && transient.is_active());
        let identity = DriftSchedule::Step {
            at: 0,
            drift: DriftSpec::none(),
        };
        assert!(!identity.is_active());
        assert!(identity.drift_at(5).is_none());
    }

    #[test]
    fn drift_schedule_reseeds_noise_per_dataset() {
        let drift = DriftSpec {
            scale: 1.0,
            offset: 0.0,
            noise_std: 0.05,
            seed: 11,
        };
        let step = DriftSchedule::Step { at: 0, drift };
        let a = step.drift_at(1).unwrap();
        let b = step.drift_at(2).unwrap();
        assert_ne!(a.seed, b.seed, "noise streams must differ per dataset");
        assert_eq!(step.drift_at(1).unwrap(), a, "but stay deterministic");
    }

    #[test]
    fn drift_schedule_serde_round_trips() {
        let schedule = DriftSchedule::Transient {
            at: 4,
            until: 9,
            drift: DriftSpec {
                scale: 1.3,
                offset: 0.12,
                noise_std: 0.02,
                seed: 99,
            },
        };
        let json = serde_json::to_string(&schedule).unwrap();
        let back: DriftSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, schedule);
    }

    #[test]
    fn disarmed_plan_refuses_to_arm() {
        let compiled = compiled_sobel();
        let ds = compiled.function.dataset(11, DatasetScale::Smoke);
        let err = FaultPlan::disarmed().arm(compiled, &ds).unwrap_err();
        assert!(matches!(err, SimError::Disarmed));
    }

    #[test]
    fn uniform_zero_rate_is_disarmed() {
        assert!(!FaultPlan::uniform(7, 0.0).is_armed());
        assert!(FaultPlan::uniform(7, 0.001).is_armed());
        assert!(FaultPlan::uniform(7, 0.0)
            .with_misr_corruptions(1)
            .is_armed());
    }

    #[test]
    fn identity_drift_does_not_arm() {
        let plan = FaultPlan::disarmed().with_drift(DriftSpec::none());
        assert!(!plan.is_armed());
        let drifted = FaultPlan::disarmed().with_drift(DriftSpec {
            scale: 1.4,
            offset: 0.0,
            noise_std: 0.0,
            seed: 3,
        });
        assert!(drifted.is_armed());
    }

    #[test]
    fn arming_is_deterministic() {
        let compiled = compiled_sobel();
        let ds = compiled.function.dataset(21, DatasetScale::Smoke);
        let plan = FaultPlan::uniform(99, 0.002).with_misr_corruptions(2);
        let a = plan.arm(compiled, &ds).unwrap();
        let b = plan.arm(compiled, &ds).unwrap();
        assert_eq!(a.profile.errors(), b.profile.errors());
        assert_eq!(a.fifo_events, b.fifo_events);
        assert_eq!(
            a.profile.approx_outputs().as_flat(),
            b.profile.approx_outputs().as_flat()
        );
    }

    #[test]
    fn different_seeds_draw_different_faults() {
        let compiled = compiled_sobel();
        let ds = compiled.function.dataset(21, DatasetScale::Smoke);
        let a = FaultPlan::uniform(1, 0.05).arm(compiled, &ds).unwrap();
        let b = FaultPlan::uniform(2, 0.05).arm(compiled, &ds).unwrap();
        assert_ne!(a.fifo_events, b.fifo_events);
        assert_ne!(
            a.profile.approx_outputs().as_flat(),
            b.profile.approx_outputs().as_flat()
        );
    }

    #[test]
    fn weight_faults_degrade_the_profiled_accelerator() {
        let compiled = compiled_sobel();
        let ds = compiled.function.dataset(33, DatasetScale::Smoke);
        let clean = DatasetProfile::collect(&compiled.function, ds.clone());
        let plan = FaultPlan {
            npu_weight_bit_rate: 0.01,
            ..FaultPlan::disarmed()
        };
        let armed = plan.arm(compiled, &ds).unwrap();
        let clean_mean: f32 = clean.errors().iter().sum::<f32>() / clean.invocation_count() as f32;
        let faulted_mean: f32 =
            armed.profile.errors().iter().sum::<f32>() / armed.profile.invocation_count() as f32;
        assert!(
            faulted_mean > clean_mean,
            "faulted {faulted_mean} vs clean {clean_mean}"
        );
    }

    #[test]
    fn drift_changes_the_profiled_inputs() {
        let compiled = compiled_sobel();
        let ds = compiled.function.dataset(44, DatasetScale::Smoke);
        let plan = FaultPlan::disarmed().with_drift(DriftSpec {
            scale: 1.5,
            offset: 0.2,
            noise_std: 0.05,
            seed: 9,
        });
        let armed = plan.arm(compiled, &ds).unwrap();
        assert_ne!(armed.profile.dataset().as_flat(), ds.as_flat());
        assert_eq!(armed.profile.invocation_count(), ds.invocation_count());
    }

    #[test]
    fn fifo_rates_control_event_mix() {
        let compiled = compiled_sobel();
        let ds = compiled.function.dataset(55, DatasetScale::Smoke);
        let plan = FaultPlan {
            fifo_stall_rate: 0.5,
            fifo_drop_rate: 0.5,
            ..FaultPlan::disarmed()
        };
        let armed = plan.arm(compiled, &ds).unwrap();
        let stalls = armed
            .fifo_events
            .iter()
            .filter(|e| **e == FifoEvent::Stall)
            .count();
        let drops = armed
            .fifo_events
            .iter()
            .filter(|e| **e == FifoEvent::Drop)
            .count();
        assert!(stalls > 0, "expected stalls at rate 0.5");
        assert!(drops > 0, "expected drops at rate 0.5");
        assert_eq!(armed.fifo_events.len(), ds.invocation_count());
    }
}
