//! The 45 nm energy constants table.
//!
//! The paper estimates processor energy with McPAT, table energy with
//! CACTI 6.5, and MISR energy from synthesized Verilog (NanGate 45 nm,
//! 0.9 V, 2080 MHz). This module replaces those toolchains with a
//! documented constants table in the same structural roles; all reported
//! results are energy *ratios*, so the constants' relative magnitudes —
//! core ≫ NPU-MAC ≫ SRAM bit ≫ MISR shift — are what matters.

use mithra_core::classifier::ClassifierOverhead;
use mithra_npu::cost::{InvocationCost, NpuCostModel};
use serde::{Deserialize, Serialize};

/// Energy constants, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Core energy per active cycle (a Nehalem-class OoO core at 2 GHz
    /// burns on the order of watts: ~2 nJ/cycle including L1/L2 activity).
    pub core_active_nj_per_cycle: f64,
    /// Core energy per cycle while clock-gated waiting on the accelerator.
    pub core_idle_nj_per_cycle: f64,
    /// NPU static + control energy per accelerator cycle.
    pub npu_static_nj_per_cycle: f64,
    /// Energy per 16-bit fixed-point multiply-accumulate, including the
    /// weight-buffer read.
    pub npu_mac_nj: f64,
    /// Energy per sigmoid LUT lookup.
    pub npu_lut_nj: f64,
    /// Energy per single-bit classifier-table read (CACTI-class SRAM).
    pub table_bit_read_nj: f64,
    /// Energy per MISR shift operation (synthesized registers + XORs).
    pub misr_shift_nj: f64,
}

impl EnergyModel {
    /// The 45 nm / 0.9 V / 2080 MHz configuration used throughout the
    /// evaluation.
    pub fn paper_default() -> Self {
        Self {
            core_active_nj_per_cycle: 2.0,
            core_idle_nj_per_cycle: 0.4,
            npu_static_nj_per_cycle: 0.05,
            npu_mac_nj: 0.004,
            npu_lut_nj: 0.002,
            table_bit_read_nj: 0.001,
            misr_shift_nj: 0.0002,
        }
    }

    /// Energy of one NPU invocation with the given cost breakdown.
    pub fn npu_invocation_nj(&self, cost: &InvocationCost) -> f64 {
        cost.cycles as f64 * self.npu_static_nj_per_cycle
            + cost.macs as f64 * self.npu_mac_nj
            + cost.lut_lookups as f64 * self.npu_lut_nj
    }

    /// Energy of one classifier decision, given its overhead footprint.
    /// A neural classifier's embedded network is charged as a full NPU
    /// invocation of its topology.
    pub fn classifier_decision_nj(
        &self,
        overhead: &ClassifierOverhead,
        npu_cost: &NpuCostModel,
    ) -> f64 {
        let mut nj = overhead.misr_shifts as f64 * self.misr_shift_nj
            + overhead.table_bit_reads as f64 * self.table_bit_read_nj;
        if let Some(topology) = &overhead.npu_topology {
            nj += self.npu_invocation_nj(&npu_cost.invocation(topology));
        }
        nj
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithra_npu::topology::Topology;

    #[test]
    fn npu_energy_well_below_core_energy_for_same_work() {
        // The premise of approximate acceleration: the NPU path must be
        // much cheaper than the core executing the precise kernel.
        let e = EnergyModel::paper_default();
        let model = NpuCostModel::new();
        let t = Topology::new(&[9, 8, 1]).unwrap();
        let npu_nj = e.npu_invocation_nj(&model.invocation(&t));
        let core_nj = 110.0 * e.core_active_nj_per_cycle; // sobel kernel
        assert!(npu_nj < core_nj / 10.0, "npu {npu_nj} vs core {core_nj}");
    }

    #[test]
    fn table_decision_is_nearly_free() {
        let e = EnergyModel::paper_default();
        let model = NpuCostModel::new();
        let overhead = ClassifierOverhead {
            decision_cycles: 4,
            misr_shifts: 8 * 9,
            table_bit_reads: 8,
            npu_topology: None,
        };
        let nj = e.classifier_decision_nj(&overhead, &model);
        assert!(nj < 0.1, "table decision {nj} nJ");
    }

    #[test]
    fn neural_decision_costs_a_network() {
        let e = EnergyModel::paper_default();
        let model = NpuCostModel::new();
        let overhead = ClassifierOverhead {
            npu_topology: Some(Topology::new(&[9, 8, 2]).unwrap()),
            ..ClassifierOverhead::default()
        };
        let neural_nj = e.classifier_decision_nj(&overhead, &model);
        let table_nj = e.classifier_decision_nj(
            &ClassifierOverhead {
                misr_shifts: 72,
                table_bit_reads: 8,
                ..ClassifierOverhead::default()
            },
            &model,
        );
        assert!(neural_nj > table_nj, "{neural_nj} vs {table_nj}");
    }
}
