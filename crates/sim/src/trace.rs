//! Per-invocation execution traces.
//!
//! The aggregate metrics in [`crate::system`] answer *how much*; a trace
//! answers *where*: which invocations were rejected, where the classifier
//! disagreed with the oracle, and how the error magnitudes of accepted
//! and rejected invocations separate. Used for debugging classifier
//! behaviour and for the per-benchmark deep dives in the experiment
//! write-ups.

use mithra_core::classifier::{Classifier, Decision};
use mithra_core::profile::DatasetProfile;
use serde::{Deserialize, Serialize};

/// One invocation's record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Invocation index within the dataset.
    pub index: usize,
    /// The classifier's decision.
    pub rejected: bool,
    /// The oracle's ground-truth decision at the compiled threshold.
    pub oracle_rejected: bool,
    /// The invocation's measured accelerator error.
    pub error: f32,
}

impl TraceEvent {
    /// Whether the classifier disagreed with the oracle.
    pub fn is_false_decision(&self) -> bool {
        self.rejected != self.oracle_rejected
    }
}

/// A full dataset trace with summary queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationTrace {
    events: Vec<TraceEvent>,
    threshold: f32,
}

impl InvocationTrace {
    /// Records a trace by driving `classifier` over a profiled dataset.
    pub fn record(
        profile: &DatasetProfile,
        classifier: &mut dyn Classifier,
        threshold: f32,
    ) -> Self {
        let events = profile
            .dataset()
            .iter()
            .enumerate()
            .map(|(i, input)| TraceEvent {
                index: i,
                rejected: classifier.classify(i, input) == Decision::Precise,
                oracle_rejected: profile.max_error(i) > threshold,
                error: profile.max_error(i),
            })
            .collect();
        Self { events, threshold }
    }

    /// The recorded events in invocation order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The threshold the oracle column was computed against.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Number of recorded invocations.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Indices of all false decisions, for drill-down.
    pub fn false_decision_indices(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| e.is_false_decision())
            .map(|e| e.index)
            .collect()
    }

    /// Mean accelerator error of invocations the classifier accepted —
    /// the residual error actually flowing into the output.
    pub fn mean_accepted_error(&self) -> f64 {
        let accepted: Vec<f64> = self
            .events
            .iter()
            .filter(|e| !e.rejected)
            .map(|e| f64::from(e.error))
            .collect();
        if accepted.is_empty() {
            0.0
        } else {
            accepted.iter().sum::<f64>() / accepted.len() as f64
        }
    }

    /// Mean accelerator error of invocations the classifier rejected — a
    /// working classifier rejects the high-error population, so this
    /// should exceed [`mean_accepted_error`](Self::mean_accepted_error).
    pub fn mean_rejected_error(&self) -> f64 {
        let rejected: Vec<f64> = self
            .events
            .iter()
            .filter(|e| e.rejected)
            .map(|e| f64::from(e.error))
            .collect();
        if rejected.is_empty() {
            0.0
        } else {
            rejected.iter().sum::<f64>() / rejected.len() as f64
        }
    }

    /// Longest run of consecutive accelerator invocations — relevant to
    /// the pipelining analysis in [`crate::overlap`] (overlap only pays
    /// off across consecutive accepted invocations).
    pub fn longest_accept_run(&self) -> usize {
        let mut best = 0;
        let mut current = 0;
        for e in &self.events {
            if e.rejected {
                current = 0;
            } else {
                current += 1;
                best = best.max(current);
            }
        }
        best
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let rejected = self.events.iter().filter(|e| e.rejected).count();
        let false_dec = self.false_decision_indices().len();
        format!(
            "{} invocations, {} rejected ({:.1}%), {} false decisions, \
             accepted err {:.4} vs rejected err {:.4}",
            self.len(),
            rejected,
            rejected as f64 / self.len().max(1) as f64 * 100.0,
            false_dec,
            self.mean_accepted_error(),
            self.mean_rejected_error()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::DatasetScale;
    use mithra_axbench::suite;
    use mithra_core::oracle::OracleClassifier;
    use mithra_core::pipeline::{compile, CompileConfig};
    use std::sync::Arc;

    fn setup() -> (mithra_core::pipeline::Compiled, DatasetProfile) {
        let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
        let compiled = compile(bench, &CompileConfig::smoke()).unwrap();
        let ds = compiled.function.dataset(777_000, DatasetScale::Smoke);
        let profile = DatasetProfile::collect(&compiled.function, ds);
        (compiled, profile)
    }

    #[test]
    fn oracle_trace_has_no_false_decisions() {
        let (compiled, profile) = setup();
        let mut oracle = OracleClassifier::for_profile(&profile, compiled.threshold.threshold);
        let trace = InvocationTrace::record(&profile, &mut oracle, compiled.threshold.threshold);
        assert!(trace.false_decision_indices().is_empty());
        assert_eq!(trace.len(), profile.invocation_count());
    }

    #[test]
    fn working_classifier_separates_error_populations() {
        let (compiled, profile) = setup();
        let mut oracle = OracleClassifier::for_profile(&profile, compiled.threshold.threshold);
        let trace = InvocationTrace::record(&profile, &mut oracle, compiled.threshold.threshold);
        if trace.events().iter().any(|e| e.rejected) && trace.events().iter().any(|e| !e.rejected) {
            assert!(trace.mean_rejected_error() > trace.mean_accepted_error());
        }
    }

    #[test]
    fn accept_runs_and_summary() {
        let (compiled, profile) = setup();
        let mut table = compiled.table.clone();
        let trace = InvocationTrace::record(&profile, &mut table, compiled.threshold.threshold);
        assert!(trace.longest_accept_run() <= trace.len());
        let s = trace.summary();
        assert!(s.contains("invocations"));
        assert!(!trace.is_empty());
        assert_eq!(trace.threshold(), compiled.threshold.threshold);
    }

    #[test]
    fn trace_serializes() {
        let (compiled, profile) = setup();
        let mut table = compiled.table.clone();
        let trace = InvocationTrace::record(&profile, &mut table, compiled.threshold.threshold);
        let json = serde_json::to_string(&trace).unwrap();
        let back: InvocationTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
