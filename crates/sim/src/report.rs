//! Aggregation of per-dataset runs into the paper's reported statistics,
//! plus the compile-cost accounting harnesses report alongside them.

use crate::error::SimError;
use crate::system::RunResult;
use mithra_core::session::SessionReport;
use mithra_stats::descriptive::{geomean, mean};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregated metrics over many datasets of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSummary {
    /// Mean speedup over the datasets.
    pub speedup: f64,
    /// Mean energy reduction.
    pub energy_reduction: f64,
    /// Mean accelerator invocation rate.
    pub invocation_rate: f64,
    /// Mean quality loss.
    pub quality_loss: f64,
    /// Mean energy-delay-product improvement.
    pub edp_improvement: f64,
    /// Mean false-positive rate.
    pub false_positive_rate: f64,
    /// Mean false-negative rate.
    pub false_negative_rate: f64,
    /// Fraction of datasets whose quality loss met `quality_target`.
    pub success_fraction: f64,
}

impl BenchmarkSummary {
    /// Aggregates per-dataset runs; `quality_target` defines success.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty — a harness always simulates at least
    /// one dataset.
    pub fn from_runs(runs: &[RunResult], quality_target: f64) -> Self {
        Self::try_from_runs(runs, quality_target).expect("cannot summarize zero runs")
    }

    /// Fallible form of [`BenchmarkSummary::from_runs`] for sweep
    /// harnesses whose run lists are data-dependent.
    ///
    /// # Errors
    ///
    /// [`SimError::EmptyRuns`] if `runs` is empty.
    pub fn try_from_runs(runs: &[RunResult], quality_target: f64) -> Result<Self, SimError> {
        if runs.is_empty() {
            return Err(SimError::EmptyRuns);
        }
        let collect = |f: fn(&RunResult) -> f64| -> Vec<f64> { runs.iter().map(f).collect() };
        let successes = runs
            .iter()
            .filter(|r| r.quality_loss <= quality_target)
            .count();
        Ok(Self {
            speedup: mean(&collect(RunResult::speedup)).expect("non-empty"),
            energy_reduction: mean(&collect(RunResult::energy_reduction)).expect("non-empty"),
            invocation_rate: mean(&collect(RunResult::invocation_rate)).expect("non-empty"),
            quality_loss: mean(&collect(|r| r.quality_loss)).expect("non-empty"),
            edp_improvement: mean(&collect(RunResult::edp_improvement)).expect("non-empty"),
            false_positive_rate: mean(&collect(RunResult::false_positive_rate)).expect("non-empty"),
            false_negative_rate: mean(&collect(RunResult::false_negative_rate)).expect("non-empty"),
            success_fraction: successes as f64 / runs.len() as f64,
        })
    }
}

/// Geometric means across benchmarks — how Figure 6 reports the suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteSummary {
    /// Geomean speedup across benchmarks.
    pub speedup: f64,
    /// Geomean energy reduction.
    pub energy_reduction: f64,
    /// Arithmetic-mean invocation rate (a rate, not a ratio).
    pub invocation_rate: f64,
    /// Geomean EDP improvement.
    pub edp_improvement: f64,
    /// Mean false-positive rate.
    pub false_positive_rate: f64,
    /// Mean false-negative rate.
    pub false_negative_rate: f64,
}

impl SuiteSummary {
    /// Aggregates per-benchmark summaries.
    ///
    /// # Panics
    ///
    /// Panics if `benchmarks` is empty.
    pub fn from_benchmarks(benchmarks: &[BenchmarkSummary]) -> Self {
        assert!(!benchmarks.is_empty(), "cannot summarize zero benchmarks");
        let collect =
            |f: fn(&BenchmarkSummary) -> f64| -> Vec<f64> { benchmarks.iter().map(f).collect() };
        Self {
            speedup: geomean(&collect(|b| b.speedup)).expect("positive speedups"),
            energy_reduction: geomean(&collect(|b| b.energy_reduction))
                .expect("positive reductions"),
            invocation_rate: mean(&collect(|b| b.invocation_rate)).expect("non-empty"),
            edp_improvement: geomean(&collect(|b| b.edp_improvement))
                .expect("positive improvements"),
            false_positive_rate: mean(&collect(|b| b.false_positive_rate)).expect("non-empty"),
            false_negative_rate: mean(&collect(|b| b.false_negative_rate)).expect("non-empty"),
        }
    }
}

/// Compile-time cost of producing one benchmark's artifacts, folded from
/// the staged pipeline's per-stage instrumentation. This is what harnesses
/// print next to runtime results so a reader can tell recomputed artifacts
/// from cache hits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileCost {
    /// The benchmark compiled.
    pub benchmark: String,
    /// Total wall-clock seconds across all stages.
    pub wall_seconds: f64,
    /// Total function invocations performed (0 when everything hit the
    /// cache).
    pub invocations: u64,
    /// Stages answered from the artifact cache.
    pub cached_stages: usize,
    /// Stages recorded in the session.
    pub total_stages: usize,
}

impl CompileCost {
    /// Folds a compile session's stage reports into one cost record.
    pub fn from_session(report: &SessionReport) -> Self {
        Self {
            benchmark: report.benchmark.clone(),
            wall_seconds: report.total_wall().as_secs_f64(),
            invocations: report.total_invocations(),
            cached_stages: report.stages.iter().filter(|s| s.is_cache_hit()).count(),
            total_stages: report.stages.len(),
        }
    }
}

impl fmt::Display for CompileCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compile cost [{}]: {:.2}s, {} invocations, {}/{} stages cached",
            self.benchmark,
            self.wall_seconds,
            self.invocations,
            self.cached_stages,
            self.total_stages
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithra_core::session::{CacheOutcome, Stage, StageReport};
    use std::time::Duration;

    fn run(speedup_factor: f64, quality: f64) -> RunResult {
        RunResult {
            baseline_cycles: 1000.0 * speedup_factor,
            accelerated_cycles: 1000.0,
            baseline_energy_nj: 2000.0 * speedup_factor,
            accelerated_energy_nj: 2000.0,
            quality_loss: quality,
            invoked: 80,
            total: 100,
            false_positives: 10,
            false_negatives: 5,
        }
    }

    #[test]
    fn benchmark_summary_aggregates() {
        let runs = [run(2.0, 0.03), run(4.0, 0.08)];
        let s = BenchmarkSummary::from_runs(&runs, 0.05);
        assert_eq!(s.speedup, 3.0);
        assert_eq!(s.invocation_rate, 0.8);
        assert_eq!(s.success_fraction, 0.5);
        assert!((s.false_positive_rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn suite_summary_uses_geomean() {
        let a = BenchmarkSummary::from_runs(&[run(2.0, 0.01)], 0.05);
        let b = BenchmarkSummary::from_runs(&[run(8.0, 0.01)], 0.05);
        let suite = SuiteSummary::from_benchmarks(&[a, b]);
        assert!((suite.speedup - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_runs_panic() {
        let _ = BenchmarkSummary::from_runs(&[], 0.05);
    }

    #[test]
    fn try_from_runs_surfaces_empty_as_error() {
        assert!(matches!(
            BenchmarkSummary::try_from_runs(&[], 0.05),
            Err(SimError::EmptyRuns)
        ));
        let ok = BenchmarkSummary::try_from_runs(&[run(2.0, 0.03)], 0.05).unwrap();
        assert_eq!(ok, BenchmarkSummary::from_runs(&[run(2.0, 0.03)], 0.05));
    }

    #[test]
    fn compile_cost_folds_stage_reports() {
        let session = SessionReport {
            benchmark: "sobel".into(),
            stages: vec![
                StageReport {
                    stage: Stage::NpuTraining,
                    wall: Duration::from_millis(1500),
                    invocations: 0,
                    cache: CacheOutcome::Hit,
                    cache_hits: 1,
                    cache_misses: 0,
                },
                StageReport {
                    stage: Stage::Profiling,
                    wall: Duration::from_millis(500),
                    invocations: 4096,
                    cache: CacheOutcome::Miss,
                    cache_hits: 0,
                    cache_misses: 1,
                },
            ],
        };
        let cost = CompileCost::from_session(&session);
        assert_eq!(cost.benchmark, "sobel");
        assert!((cost.wall_seconds - 2.0).abs() < 1e-9);
        assert_eq!(cost.invocations, 4096);
        assert_eq!(cost.cached_stages, 1);
        assert_eq!(cost.total_stages, 2);
        let line = cost.to_string();
        assert!(line.contains("sobel"), "{line}");
        assert!(line.contains("1/2 stages cached"), "{line}");
    }
}
