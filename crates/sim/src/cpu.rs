//! The core-side cycle model: ISA extension costs and invocation timing.
//!
//! The NPU interface adds enqueue/dequeue instructions and MITHRA adds one
//! special branch (paper §IV-D) "inserted after the instructions that send
//! the inputs to the accelerator"; its overhead "is modeled in our
//! evaluations". This module captures those per-invocation costs.

use serde::{Deserialize, Serialize};

/// Cycle costs of the accelerator/classifier ISA interface on the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IsaCosts {
    /// Core cycles per element enqueued to the input FIFO.
    pub enqueue_per_element: u64,
    /// Core cycles per element dequeued from the output FIFO.
    pub dequeue_per_element: u64,
    /// Cycles of the special quality-control branch instruction.
    pub branch: u64,
    /// One-time cycles per 64-byte line to decompress the table-classifier
    /// configuration when the program is loaded (BDI decompression is
    /// vector add/compare work).
    pub table_decompress_per_line: u64,
    /// Core stall cycles when an accelerator FIFO refuses an operation
    /// (input queue full / output queue empty) and the core must wait for
    /// the queue to drain — the recoverable cost of
    /// [`mithra_npu::NpuError::Fifo`] under fault injection.
    pub fifo_stall: u64,
}

impl IsaCosts {
    /// The evaluation defaults: single-cycle queue operations, a 2-cycle
    /// branch (dispatch + possible redirect), 2-cycle-per-line
    /// decompression, a 64-cycle FIFO stall penalty.
    pub fn paper_default() -> Self {
        Self {
            enqueue_per_element: 1,
            dequeue_per_element: 1,
            branch: 2,
            table_decompress_per_line: 2,
            fifo_stall: 64,
        }
    }

    /// Core-busy cycles for one accelerated invocation: stream inputs,
    /// take the branch decision, stream outputs back.
    pub fn accelerated_invocation_core_cycles(&self, inputs: usize, outputs: usize) -> u64 {
        inputs as u64 * self.enqueue_per_element
            + self.branch
            + outputs as u64 * self.dequeue_per_element
    }

    /// Core-busy cycles wasted when the classifier redirects to the
    /// precise path: the inputs were already being enqueued when the
    /// branch resolved.
    pub fn rejected_invocation_core_cycles(&self, inputs: usize) -> u64 {
        inputs as u64 * self.enqueue_per_element + self.branch
    }
}

impl Default for IsaCosts {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accelerated_invocation_counts_streams_and_branch() {
        let c = IsaCosts::paper_default();
        assert_eq!(c.accelerated_invocation_core_cycles(6, 1), 6 + 2 + 1);
    }

    #[test]
    fn rejection_still_pays_enqueue_and_branch() {
        let c = IsaCosts::paper_default();
        assert_eq!(c.rejected_invocation_core_cycles(9), 9 + 2);
    }
}
