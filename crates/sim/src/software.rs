//! Software-only classifier cost model.
//!
//! The paper motivates the hardware co-design by measuring what the
//! classifiers cost when run as plain software on the core: "the software
//! implementation of the table-based and neural classifiers slow the
//! average execution time by 2.9× and 9.6×, respectively" (§V-B). This
//! module models those software implementations' per-invocation core
//! cycles so the experiment can be regenerated.

use mithra_npu::topology::Topology;

/// Core cycles for a software MISR-hash table lookup: per element and per
/// table the core executes a handful of ALU ops (rotate, XOR, mask), then
/// a load and compare per table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareClassifierCosts {
    /// ALU operations per (element × table) of software hashing.
    pub ops_per_element_table: u64,
    /// Cycles per table for the load + test + branch.
    pub lookup_cycles_per_table: u64,
    /// Cycles per multiply-accumulate of a software MLP evaluation
    /// (fused multiply-add plus loads).
    pub cycles_per_mac: u64,
    /// Cycles per activation function evaluation in software.
    pub cycles_per_activation: u64,
}

impl SoftwareClassifierCosts {
    /// Defaults for a Nehalem-class core.
    pub fn paper_default() -> Self {
        Self {
            ops_per_element_table: 4,
            lookup_cycles_per_table: 3,
            cycles_per_mac: 2,
            cycles_per_activation: 12,
        }
    }

    /// Per-invocation core cycles of the software table classifier.
    pub fn table_cycles(&self, input_dim: usize, tables: usize) -> u64 {
        (input_dim * tables) as u64 * self.ops_per_element_table
            + tables as u64 * self.lookup_cycles_per_table
    }

    /// Per-invocation core cycles of the software neural classifier.
    pub fn neural_cycles(&self, topology: &Topology) -> u64 {
        topology.macs_per_invocation() as u64 * self.cycles_per_mac
            + topology.neuron_count() as u64 * self.cycles_per_activation
    }
}

impl Default for SoftwareClassifierCosts {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_neural_costs_more_than_software_table() {
        let c = SoftwareClassifierCosts::paper_default();
        let table = c.table_cycles(18, 8);
        let neural = c.neural_cycles(&Topology::new(&[18, 32, 2]).unwrap());
        assert!(neural > table, "{neural} vs {table}");
    }

    #[test]
    fn table_cost_scales_with_inputs_and_tables() {
        let c = SoftwareClassifierCosts::paper_default();
        assert!(c.table_cycles(64, 8) > c.table_cycles(2, 8));
        assert!(c.table_cycles(9, 8) > c.table_cycles(9, 1));
    }

    #[test]
    fn software_costs_dwarf_hardware_decision() {
        // Hardware table decision: ~4 cycles. Software: dozens to
        // hundreds — the co-design motivation.
        let c = SoftwareClassifierCosts::paper_default();
        assert!(c.table_cycles(9, 8) > 10 * 4);
    }
}
