//! The combined system: core + NPU + classifier, per-dataset.
//!
//! For every invocation of a profiled dataset the simulator asks the
//! classifier for a decision, charges the corresponding cycles and energy,
//! and finally scores the mixed output's quality. The baseline is the
//! benchmark running entirely on the precise core.
//!
//! The per-invocation cost arithmetic lives in [`InvocationModel`]: every
//! charge an invocation can incur (classifier decision, accelerated or
//! precise execution, FIFO stall, shadow quality sample) is a constant of
//! the compiled artifact, so the model precomputes them once and both the
//! sequential loop here and the batched serving runtime (`mithra-serve`)
//! draw from the *same* constants — which is what makes sharded serving
//! provably output-identical to [`simulate`].
//!
//! [`run`] is the full-featured entry point: it additionally threads a
//! per-invocation FIFO fault stream and an optional quality watchdog
//! ([`mithra_core::watchdog`]) through the loop, charging the cycle and
//! energy cost of every guard action (shadow quality samples, throttled
//! admission, precise fallback). [`simulate`] is the hook-free wrapper the
//! clean experiments use; with [`RunHooks::none`] the two are numerically
//! identical.

use crate::cpu::IsaCosts;
use crate::energy::EnergyModel;
use crate::error::SimError;
use crate::fault::FifoEvent;
use mithra_axbench::benchmark::WorkloadProfile;
use mithra_core::classifier::{Classifier, ClassifierOverhead, Decision};
use mithra_core::pipeline::Compiled;
use mithra_core::profile::{DatasetProfile, Route};
use mithra_core::watchdog::QualityWatchdog;
use mithra_npu::cost::NpuCostModel;
use std::num::NonZeroUsize;

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimOptions {
    /// ISA cost configuration.
    pub isa: IsaCosts,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Online-update sampling period for the table design (0 disables;
    /// the paper samples "at sporadic intervals").
    pub online_update_period: usize,
}

/// A cycle + energy charge, the unit of cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Charge {
    /// Core-visible wall cycles.
    pub cycles: f64,
    /// Energy in nanojoules.
    pub energy: f64,
}

impl Charge {
    /// Accumulates another charge into this one.
    pub fn add(&mut self, other: Charge) {
        self.cycles += other.cycles;
        self.energy += other.energy;
    }
}

/// Precomputed per-invocation cost constants for one (compiled artifact,
/// classifier design, options) combination.
///
/// Every component cost the runtime loop charges — the classifier
/// decision, the accelerated path, the precise path, a FIFO stall, the
/// two shadow-sample flavours — is invariant across invocations, so this
/// type computes each one exactly once, replicating the expression
/// structure of the original sequential loop so that accumulated totals
/// stay **bit-identical**. `mithra-serve`'s sharded workers charge
/// invocations through the same model, which is what pins batched serving
/// to [`simulate`]'s output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationModel {
    threshold: f32,
    workload: WorkloadProfile,
    core_active_nj_per_cycle: f64,
    startup_cycles: f64,
    decision: Charge,
    approx: Charge,
    precise: Charge,
    stall: Charge,
    shadow_precise: Charge,
    shadow_approx: Charge,
}

impl InvocationModel {
    /// Builds the model for a compiled benchmark under one classifier
    /// design (identified by its cost footprint) and one set of options.
    pub fn new(compiled: &Compiled, overhead: &ClassifierOverhead, options: &SimOptions) -> Self {
        let bench = compiled.function.benchmark();
        let workload = bench.profile();
        let npu_cost_model = NpuCostModel::new();
        let accel_cost = npu_cost_model.invocation(&bench.npu_topology());
        let classifier_npu_cost = overhead
            .npu_topology
            .as_ref()
            .map(|t| npu_cost_model.invocation(t));

        // Classifier decision (both paths pay it). The classifier network,
        // if any, runs on the NPU before the decision: its latency is on
        // the critical path.
        let mut decision_cycles = overhead.decision_cycles as f64;
        if let Some(c) = &classifier_npu_cost {
            decision_cycles += c.cycles as f64;
        }
        let decision = Charge {
            cycles: decision_cycles,
            energy: options
                .energy
                .classifier_decision_nj(overhead, &npu_cost_model),
        };

        // Accelerated path: the accelerator latency dominates; core
        // streaming overlaps with PE compute except for the dequeue tail.
        let core_busy = options
            .isa
            .accelerated_invocation_core_cycles(bench.input_dim(), bench.output_dim())
            as f64;
        let approx = Charge {
            cycles: accel_cost.cycles as f64 + options.isa.branch as f64,
            energy: options.energy.npu_invocation_nj(&accel_cost)
                + core_busy * options.energy.core_active_nj_per_cycle
                + (accel_cost.cycles as f64 - core_busy).max(0.0)
                    * options.energy.core_idle_nj_per_cycle,
        };

        // Precise path: the kernel plus the redirect the classifier's
        // reject decision costs.
        let redirect = options
            .isa
            .rejected_invocation_core_cycles(bench.input_dim());
        let precise = Charge {
            cycles: (workload.kernel_cycles + redirect) as f64,
            energy: (workload.kernel_cycles + redirect) as f64
                * options.energy.core_active_nj_per_cycle,
        };

        // A FIFO stall: the core idles until the queue drains.
        let stall = Charge {
            cycles: options.isa.fifo_stall as f64,
            energy: options.isa.fifo_stall as f64 * options.energy.core_idle_nj_per_cycle,
        };

        // Shadow quality samples: the accelerator ran, shadow-run the
        // precise kernel — or the precise path ran, shadow-run the
        // accelerator.
        let shadow_precise = Charge {
            cycles: workload.kernel_cycles as f64,
            energy: workload.kernel_cycles as f64 * options.energy.core_active_nj_per_cycle,
        };
        let shadow_approx = Charge {
            cycles: options
                .isa
                .accelerated_invocation_core_cycles(bench.input_dim(), bench.output_dim())
                as f64,
            energy: options.energy.npu_invocation_nj(&accel_cost),
        };

        // One-time table decompression at program load.
        let startup_cycles = if overhead.table_bit_reads > 0 {
            let table_lines = (overhead.table_bit_reads * 512).div_ceil(512); // ~1 line per table
            (table_lines * options.isa.table_decompress_per_line) as f64
        } else {
            0.0
        };

        Self {
            threshold: compiled.threshold.threshold,
            workload,
            core_active_nj_per_cycle: options.energy.core_active_nj_per_cycle,
            startup_cycles,
            decision,
            approx,
            precise,
            stall,
            shadow_precise,
            shadow_approx,
        }
    }

    /// The certified threshold the model was built against.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The all-precise baseline for `n` invocations.
    pub fn baseline(&self, n: usize) -> Charge {
        let cycles = self.workload.baseline_cycles(n as u64);
        Charge {
            cycles,
            energy: cycles * self.core_active_nj_per_cycle,
        }
    }

    /// The invocation-independent starting charge of an accelerated run:
    /// the non-kernel application portion plus one-time classifier-table
    /// decompression at program load.
    pub fn startup(&self, n: usize) -> Charge {
        let non_kernel = self.workload.non_kernel_cycles(n as u64);
        let mut cycles = non_kernel;
        cycles += self.startup_cycles;
        Charge {
            cycles,
            energy: non_kernel * self.core_active_nj_per_cycle,
        }
    }

    /// The full charge of one invocation: classifier decision, the
    /// executed path, an optional FIFO stall, and an optional shadow
    /// quality sample (whose flavour depends on which path ran).
    pub fn charge(&self, decision: Decision, event: FifoEvent, shadow: bool) -> Charge {
        let mut c = self.decision;
        match decision {
            Decision::Approximate => {
                c.add(self.approx);
                if event == FifoEvent::Stall {
                    c.add(self.stall);
                }
            }
            Decision::Precise => c.add(self.precise),
        }
        if shadow {
            match decision {
                Decision::Approximate => c.add(self.shadow_precise),
                Decision::Precise => c.add(self.shadow_approx),
            }
        }
        c
    }
}

/// A quality watchdog armed with its sampling period — the single,
/// canonical "watchdog enabled" representation.
///
/// A period of zero used to be a second spelling of "disabled" that still
/// let the watchdog gate admission; [`WatchdogHook::new`] normalizes it to
/// `None`, so a disabled watchdog is exactly the absence of this value and
/// no half-armed state exists.
#[derive(Debug)]
pub struct WatchdogHook<'a> {
    dog: &'a mut QualityWatchdog,
    period: NonZeroUsize,
}

impl<'a> WatchdogHook<'a> {
    /// Arms `dog` to sample every `period`-th approximate decision.
    /// Returns `None` for `period == 0` — the canonical disabled form.
    pub fn new(dog: &'a mut QualityWatchdog, period: usize) -> Option<Self> {
        NonZeroUsize::new(period).map(|period| Self { dog, period })
    }

    /// The sampling period (always ≥ 1).
    pub fn period(&self) -> usize {
        self.period.get()
    }
}

/// Runtime extensions threaded through [`run`]: injected FIFO events and
/// an optional quality watchdog.
///
/// The hook-free value ([`RunHooks::none`]) makes [`run`] numerically
/// identical to [`simulate`] — the production path pays nothing.
#[derive(Debug)]
pub struct RunHooks<'a> {
    /// Per-invocation FIFO events (empty = no FIFO faults; shorter
    /// streams imply [`FifoEvent::None`] beyond their end).
    pub fifo_events: &'a [FifoEvent],
    /// Quality watchdog gating accelerator admission, armed with its
    /// sampling period. `None` is the only disabled state.
    pub watchdog: Option<WatchdogHook<'a>>,
}

impl<'a> RunHooks<'a> {
    /// No hooks: the clean production configuration.
    pub fn none() -> Self {
        RunHooks {
            fifo_events: &[],
            watchdog: None,
        }
    }

    /// Hooks carrying only a FIFO event stream.
    pub fn with_fifo_events(fifo_events: &'a [FifoEvent]) -> Self {
        RunHooks {
            fifo_events,
            watchdog: None,
        }
    }

    /// Arms the watchdog to sample every `period`-th approximate decision.
    /// `period == 0` normalizes to no watchdog at all (see
    /// [`WatchdogHook::new`]).
    pub fn with_watchdog(mut self, dog: &'a mut QualityWatchdog, period: usize) -> Self {
        self.watchdog = WatchdogHook::new(dog, period);
        self
    }
}

/// The result of simulating one dataset under one classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Wall cycles of the all-precise baseline.
    pub baseline_cycles: f64,
    /// Wall cycles of the accelerated, quality-controlled run.
    pub accelerated_cycles: f64,
    /// Energy (nJ) of the baseline.
    pub baseline_energy_nj: f64,
    /// Energy (nJ) of the accelerated run.
    pub accelerated_energy_nj: f64,
    /// Final-output quality loss of the accelerated run.
    pub quality_loss: f64,
    /// Invocations delegated to the accelerator.
    pub invoked: usize,
    /// Total invocations.
    pub total: usize,
    /// Classifier rejected, oracle would have approximated.
    pub false_positives: usize,
    /// Classifier approximated, oracle would have rejected.
    pub false_negatives: usize,
}

impl RunResult {
    /// Application speedup over the all-precise baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles / self.accelerated_cycles
    }

    /// Energy reduction factor over the baseline.
    pub fn energy_reduction(&self) -> f64 {
        self.baseline_energy_nj / self.accelerated_energy_nj
    }

    /// Fraction of invocations delegated to the accelerator.
    pub fn invocation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.invoked as f64 / self.total as f64
        }
    }

    /// Energy-delay-product improvement factor over the baseline.
    pub fn edp_improvement(&self) -> f64 {
        (self.baseline_cycles * self.baseline_energy_nj)
            / (self.accelerated_cycles * self.accelerated_energy_nj)
    }

    /// False positives as a fraction of all invocations.
    pub fn false_positive_rate(&self) -> f64 {
        self.false_positives as f64 / self.total.max(1) as f64
    }

    /// False negatives as a fraction of all invocations.
    pub fn false_negative_rate(&self) -> f64 {
        self.false_negatives as f64 / self.total.max(1) as f64
    }
}

/// Simulates one dataset under `classifier`, with the compiled artifacts
/// providing the accelerator, threshold and timing profile.
///
/// The hook-free production path: equivalent to [`run`] with
/// [`RunHooks::none`].
pub fn simulate(
    compiled: &Compiled,
    profile: &DatasetProfile,
    classifier: &mut dyn Classifier,
    options: &SimOptions,
) -> RunResult {
    run(compiled, profile, classifier, options, RunHooks::none())
        .expect("hook-free simulation cannot fail")
}

/// Simulates one dataset under `classifier` with runtime hooks: injected
/// FIFO faults and an optional quality watchdog.
///
/// Per invocation the loop (1) asks the classifier for its raw decision,
/// (2) lets the watchdog gate admission (throttling or full precise
/// fallback), (3) charges the executed path's cycles and energy including
/// FIFO stalls, and (4) sporadically samples the true accelerator error
/// for the watchdog, charging the shadow execution that producing that
/// sample costs. Quality is scored from the per-invocation [`Route`]s, so
/// a dropped FIFO output degrades quality via the stale value the
/// consumer actually read.
///
/// # Errors
///
/// Propagates watchdog statistics failures and routed-replay scoring
/// failures as [`SimError`]. With [`RunHooks::none`] the call cannot
/// fail on profiles a clean [`simulate`] accepts.
pub fn run(
    compiled: &Compiled,
    profile: &DatasetProfile,
    classifier: &mut dyn Classifier,
    options: &SimOptions,
    hooks: RunHooks<'_>,
) -> Result<RunResult, SimError> {
    let function = &compiled.function;
    let model = InvocationModel::new(compiled, &classifier.overhead(), options);
    let threshold = model.threshold();

    let n = profile.invocation_count();
    let oracle_rejects = profile.oracle_rejects(threshold);

    // Baseline: the whole application on the precise core.
    let baseline = model.baseline(n);

    // Non-kernel portion plus one-time table decompression at load.
    let startup = model.startup(n);
    let mut cycles = startup.cycles;
    let mut energy = startup.energy;

    let (mut watchdog, watchdog_period) = match hooks.watchdog {
        Some(hook) => {
            let period = hook.period();
            (Some(hook.dog), period)
        }
        None => (None, 0),
    };

    let mut routes: Vec<Route> = Vec::with_capacity(n);
    let mut invoked = 0usize;
    let (mut false_positives, mut false_negatives) = (0usize, 0usize);
    // The last invocation whose accelerator output actually reached the
    // output FIFO — what a Drop leaves for the consumer to read.
    let mut last_good = 0usize;

    for (i, input) in profile.dataset().iter().enumerate() {
        let raw = classifier.classify(i, input);
        // The watchdog gates admission: in degraded states some (or all)
        // approximate decisions are overridden to the precise path.
        let decision = match watchdog.as_deref_mut() {
            Some(w) => w.admit(raw),
            None => raw,
        };

        let mut event = FifoEvent::None;
        match decision {
            Decision::Approximate => {
                invoked += 1;
                if oracle_rejects[i] {
                    false_negatives += 1;
                }
                event = hooks.fifo_events.get(i).copied().unwrap_or(FifoEvent::None);
                match event {
                    FifoEvent::None | FifoEvent::Stall => {
                        last_good = i;
                        routes.push(Route::Approx);
                    }
                    FifoEvent::Drop => {
                        // The result never reached the output FIFO; the
                        // consumer dequeues the stale last-good output.
                        routes.push(Route::ApproxFrom(last_good));
                    }
                }
            }
            Decision::Precise => {
                if !oracle_rejects[i] {
                    false_positives += 1;
                }
                routes.push(Route::Precise);
            }
        }

        // Sporadic watchdog quality sampling: compare accelerator and
        // precise outputs for this invocation and charge the shadow
        // execution that produces the missing half of the pair.
        let shadow = watchdog.is_some()
            && watchdog_period > 0
            && raw == Decision::Approximate
            && i % watchdog_period == 0;
        if shadow {
            let violation = profile.max_error(i) > threshold;
            if let Some(w) = watchdog.as_deref_mut() {
                w.record(violation)?;
            }
        }

        let inv = model.charge(decision, event, shadow);
        cycles += inv.cycles;
        energy += inv.energy;

        if options.online_update_period > 0 && i % options.online_update_period == 0 {
            classifier.observe(i, input, profile.max_error(i) > threshold);
        }
    }

    // Quality of the mixed output stream. With clean routes this is
    // numerically identical to `DatasetProfile::replay_with`.
    let replay = profile.try_replay_routed(function, &routes)?;

    Ok(RunResult {
        baseline_cycles: baseline.cycles,
        accelerated_cycles: cycles,
        baseline_energy_nj: baseline.energy,
        accelerated_energy_nj: energy,
        quality_loss: replay.quality_loss,
        invoked,
        total: n,
        false_positives,
        false_negatives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::DatasetScale;
    use mithra_axbench::suite;
    use mithra_core::pipeline::{compile, CompileConfig};
    use mithra_core::random::RandomFilter;
    use mithra_core::watchdog::{GuardState, WatchdogConfig};
    use std::sync::Arc;

    fn compiled_for(name: &str) -> Compiled {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        compile(bench, &CompileConfig::smoke()).unwrap()
    }

    fn fresh_profile(compiled: &Compiled, seed: u64) -> DatasetProfile {
        let ds = compiled.function.dataset(seed, DatasetScale::Smoke);
        DatasetProfile::collect(&compiled.function, ds)
    }

    #[test]
    fn oracle_dominates_realistic_designs() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 777);
        let opts = SimOptions::default();

        let mut oracle = compiled.oracle_for(&profile);
        let oracle_run = simulate(&compiled, &profile, &mut oracle, &opts);

        let mut table = compiled.table.clone();
        let table_run = simulate(&compiled, &profile, &mut table, &opts);

        assert!(oracle_run.speedup() >= table_run.speedup() * 0.999);
        assert!(oracle_run.invocation_rate() >= table_run.invocation_rate() - 1e-9);
        assert_eq!(oracle_run.false_positives, 0);
        assert_eq!(oracle_run.false_negatives, 0);
    }

    #[test]
    fn speedup_exceeds_one_for_accelerated_runs() {
        let compiled = compiled_for("inversek2j");
        let profile = fresh_profile(&compiled, 888);
        let mut oracle = compiled.oracle_for(&profile);
        let run = simulate(&compiled, &profile, &mut oracle, &SimOptions::default());
        assert!(run.speedup() > 1.0, "speedup {}", run.speedup());
        assert!(
            run.energy_reduction() > 1.0,
            "energy {}",
            run.energy_reduction()
        );
        assert!(run.edp_improvement() > run.speedup());
    }

    #[test]
    fn never_approximating_matches_baseline_closely() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 999);
        let mut never = RandomFilter::new(0.0, 1);
        let run = simulate(&compiled, &profile, &mut never, &SimOptions::default());
        assert_eq!(run.quality_loss, 0.0);
        assert_eq!(run.invocation_rate(), 0.0);
        // Only the redirect overhead separates it from the baseline.
        assert!(run.speedup() < 1.0);
        assert!(run.speedup() > 0.8, "speedup {}", run.speedup());
    }

    #[test]
    fn false_decision_accounting_is_consistent() {
        let compiled = compiled_for("blackscholes");
        let profile = fresh_profile(&compiled, 123);
        let mut table = compiled.table.clone();
        let run = simulate(&compiled, &profile, &mut table, &SimOptions::default());
        assert!(run.false_positives + run.false_negatives <= run.total);
        assert!(run.false_positive_rate() <= 1.0);
        // FP + correct rejections = total rejections.
        let rejections = run.total - run.invoked;
        assert!(run.false_positives <= rejections);
    }

    #[test]
    fn full_invocation_gives_max_speedup() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 55);
        let opts = SimOptions::default();
        let mut always = RandomFilter::new(1.0, 2);
        let mut half = RandomFilter::new(0.5, 2);
        let full = simulate(&compiled, &profile, &mut always, &opts);
        let partial = simulate(&compiled, &profile, &mut half, &opts);
        assert!(full.speedup() > partial.speedup());
        assert!(full.energy_reduction() > partial.energy_reduction());
    }

    #[test]
    fn hook_free_run_matches_simulate_exactly() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 777);
        let opts = SimOptions::default();
        let mut a = compiled.table.clone();
        let mut b = compiled.table.clone();
        let plain = simulate(&compiled, &profile, &mut a, &opts);
        let hooked = run(&compiled, &profile, &mut b, &opts, RunHooks::none()).unwrap();
        assert_eq!(plain, hooked);
    }

    #[test]
    fn zero_period_watchdog_is_canonically_disabled() {
        // The two historical spellings of "watchdog off" — no watchdog at
        // all, and a watchdog with sampling period 0 — must be the same
        // configuration: identical results AND an untouched watchdog (the
        // old representation still let a period-0 watchdog gate admission).
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 4242);
        let opts = SimOptions::default();

        let mut a = compiled.table.clone();
        let plain = simulate(&compiled, &profile, &mut a, &opts);

        let mut dog = QualityWatchdog::new(WatchdogConfig::default());
        // Pre-degrade the watchdog: with the old semantics this state
        // would gate admission even at period 0.
        for _ in 0..50 {
            dog.record(true).unwrap();
        }
        let state_before = dog.state();
        let samples_before = dog.report().samples;

        let mut b = compiled.table.clone();
        let hooks = RunHooks::none().with_watchdog(&mut dog, 0);
        assert!(hooks.watchdog.is_none(), "period 0 must normalize to None");
        let spelled = run(&compiled, &profile, &mut b, &opts, hooks).unwrap();

        assert_eq!(plain, spelled);
        assert_eq!(dog.state(), state_before, "disabled watchdog was driven");
        assert_eq!(dog.report().samples, samples_before);
    }

    #[test]
    fn invocation_model_charges_match_run_components() {
        let compiled = compiled_for("sobel");
        let model = InvocationModel::new(
            &compiled,
            &compiled.table.clone().overhead(),
            &SimOptions::default(),
        );
        let approx = model.charge(Decision::Approximate, FifoEvent::None, false);
        let precise = model.charge(Decision::Precise, FifoEvent::None, false);
        let stalled = model.charge(Decision::Approximate, FifoEvent::Stall, false);
        let shadowed = model.charge(Decision::Approximate, FifoEvent::None, true);
        assert!(precise.cycles > approx.cycles, "kernel dwarfs the NPU");
        assert!(stalled.cycles > approx.cycles);
        assert!(shadowed.cycles > approx.cycles);
        assert!(model.baseline(100).cycles > 0.0);
        assert!(model.startup(100).cycles > 0.0);
    }

    #[test]
    fn fifo_stalls_cost_cycles_without_hurting_quality() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 31);
        let opts = SimOptions::default();
        let n = profile.invocation_count();
        let stalls = vec![FifoEvent::Stall; n];
        let mut a = compiled.oracle_for(&profile);
        let mut b = compiled.oracle_for(&profile);
        let clean = simulate(&compiled, &profile, &mut a, &opts);
        let stalled = run(
            &compiled,
            &profile,
            &mut b,
            &opts,
            RunHooks::with_fifo_events(&stalls),
        )
        .unwrap();
        assert!(stalled.accelerated_cycles > clean.accelerated_cycles);
        assert_eq!(stalled.quality_loss, clean.quality_loss);
        assert_eq!(stalled.invoked, clean.invoked);
    }

    #[test]
    fn fifo_drops_degrade_quality() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 32);
        let opts = SimOptions::default();
        let n = profile.invocation_count();
        // Drop 3 of every 4 outputs: most reads are stale.
        let events: Vec<FifoEvent> = (0..n)
            .map(|i| {
                if i % 4 == 0 {
                    FifoEvent::None
                } else {
                    FifoEvent::Drop
                }
            })
            .collect();
        let mut a = RandomFilter::new(1.0, 3);
        let mut b = RandomFilter::new(1.0, 3);
        let clean = simulate(&compiled, &profile, &mut a, &opts);
        let dropped = run(
            &compiled,
            &profile,
            &mut b,
            &opts,
            RunHooks::with_fifo_events(&events),
        )
        .unwrap();
        assert!(
            dropped.quality_loss > clean.quality_loss,
            "dropped {} vs clean {}",
            dropped.quality_loss,
            clean.quality_loss
        );
    }

    #[test]
    fn watchdog_fallback_restores_quality_under_heavy_faults() {
        let compiled = compiled_for("inversek2j");
        let ds = compiled.function.dataset(64, DatasetScale::Smoke);
        let armed = FaultPlan {
            npu_weight_bit_rate: 0.02,
            ..FaultPlan::disarmed()
        }
        .arm(&compiled, &ds)
        .unwrap();
        let opts = SimOptions::default();

        let mut unguarded_cls = armed.classifier.clone();
        let unguarded = run(
            &compiled,
            &armed.profile,
            &mut unguarded_cls,
            &opts,
            RunHooks::none(),
        )
        .unwrap();

        let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
        let mut guarded_cls = armed.classifier.clone();
        let guarded = run(
            &compiled,
            &armed.profile,
            &mut guarded_cls,
            &opts,
            RunHooks::none().with_watchdog(&mut watchdog, 2),
        )
        .unwrap();

        let report = watchdog.report();
        assert!(
            report.breaches > 0,
            "watchdog never fired under heavy faults: {report:?}"
        );
        assert!(
            guarded.quality_loss < unguarded.quality_loss,
            "guarded {} vs unguarded {}",
            guarded.quality_loss,
            unguarded.quality_loss
        );
        assert!(guarded.invoked < unguarded.invoked);
    }

    #[test]
    fn watchdog_stays_quiet_on_clean_runs() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 65);
        let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
        let mut cls = compiled.oracle_for(&profile);
        let guarded = run(
            &compiled,
            &profile,
            &mut cls,
            &SimOptions::default(),
            RunHooks::none().with_watchdog(&mut watchdog, 4),
        )
        .unwrap();
        let report = watchdog.report();
        assert_eq!(report.breaches, 0, "{report:?}");
        assert_eq!(report.state, GuardState::Monitoring);
        // Sampling costs cycles but admission is never gated.
        let mut plain_cls = compiled.oracle_for(&profile);
        let plain = simulate(&compiled, &profile, &mut plain_cls, &SimOptions::default());
        assert_eq!(guarded.invoked, plain.invoked);
        assert_eq!(guarded.quality_loss, plain.quality_loss);
        assert!(guarded.accelerated_cycles > plain.accelerated_cycles);
    }
}
