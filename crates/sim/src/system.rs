//! The combined system: core + NPU + classifier, per-dataset.
//!
//! For every invocation of a profiled dataset the simulator asks the
//! classifier for a decision, charges the corresponding cycles and energy,
//! and finally scores the mixed output's quality. The baseline is the
//! benchmark running entirely on the precise core.
//!
//! The per-invocation cost arithmetic lives in [`InvocationModel`]: every
//! charge an invocation can incur (classifier decision, accelerated or
//! precise execution, FIFO stall, shadow quality sample) is a constant of
//! the compiled artifact, so the model precomputes them once and both the
//! sequential loop here and the batched serving runtime (`mithra-serve`)
//! draw from the *same* constants — which is what makes sharded serving
//! provably output-identical to [`simulate`].
//!
//! [`run`] is the full-featured entry point: it additionally threads a
//! per-invocation FIFO fault stream and an optional quality watchdog
//! ([`mithra_core::watchdog`]) through the loop, charging the cycle and
//! energy cost of every guard action (shadow quality samples, throttled
//! admission, precise fallback). [`simulate`] is the hook-free wrapper the
//! clean experiments use; with [`RunHooks::none`] the two are numerically
//! identical.

use crate::cpu::IsaCosts;
use crate::energy::EnergyModel;
use crate::error::SimError;
use crate::fault::{DriftSchedule, FifoEvent};
use mithra_axbench::benchmark::WorkloadProfile;
use mithra_axbench::dataset::DatasetScale;
use mithra_core::classifier::{Classifier, ClassifierOverhead, Decision};
use mithra_core::pipeline::Compiled;
use mithra_core::profile::{DatasetProfile, Route};
use mithra_core::recert::{RecertConfig, RecertEngine, RecertPhase, RecertReport};
use mithra_core::route::{oracle_route, RouteChoice, RouteClassifier, RoutedCompiled};
use mithra_core::threshold::QualitySpec;
use mithra_core::watchdog::{GuardState, QualityWatchdog, WatchdogConfig, WatchdogReport};
use mithra_npu::cost::NpuCostModel;
use std::num::NonZeroUsize;

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimOptions {
    /// ISA cost configuration.
    pub isa: IsaCosts,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Online-update sampling period for the table design (0 disables;
    /// the paper samples "at sporadic intervals").
    pub online_update_period: usize,
}

/// A cycle + energy charge, the unit of cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Charge {
    /// Core-visible wall cycles.
    pub cycles: f64,
    /// Energy in nanojoules.
    pub energy: f64,
}

impl Charge {
    /// Accumulates another charge into this one.
    pub fn add(&mut self, other: Charge) {
        self.cycles += other.cycles;
        self.energy += other.energy;
    }
}

/// Precomputed per-invocation cost constants for one (compiled artifact,
/// classifier design, options) combination.
///
/// Every component cost the runtime loop charges — the classifier
/// decision, the accelerated path, the precise path, a FIFO stall, the
/// two shadow-sample flavours — is invariant across invocations, so this
/// type computes each one exactly once, replicating the expression
/// structure of the original sequential loop so that accumulated totals
/// stay **bit-identical**. `mithra-serve`'s sharded workers charge
/// invocations through the same model, which is what pins batched serving
/// to [`simulate`]'s output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationModel {
    threshold: f32,
    workload: WorkloadProfile,
    core_active_nj_per_cycle: f64,
    startup_cycles: f64,
    decision: Charge,
    approx: Charge,
    precise: Charge,
    stall: Charge,
    shadow_precise: Charge,
    shadow_approx: Charge,
}

impl InvocationModel {
    /// Builds the model for a compiled benchmark under one classifier
    /// design (identified by its cost footprint) and one set of options.
    pub fn new(compiled: &Compiled, overhead: &ClassifierOverhead, options: &SimOptions) -> Self {
        let topology = compiled.function.benchmark().npu_topology();
        Self::for_function(
            &compiled.function,
            &topology,
            compiled.threshold.threshold,
            overhead,
            options,
        )
    }

    /// [`InvocationModel::new`] for an explicit accelerator: the function
    /// being accelerated, the NPU topology whose per-invocation cost the
    /// approximate path is charged, and the threshold in force. This is
    /// how a routed system prices each pool member — every member carries
    /// its own topology and therefore its own FIFO/compute footprint.
    /// With the benchmark's default topology and the compiled threshold
    /// this is exactly [`new`](Self::new), expression for expression.
    pub fn for_function(
        function: &mithra_core::function::AcceleratedFunction,
        accel_topology: &mithra_npu::topology::Topology,
        threshold: f32,
        overhead: &ClassifierOverhead,
        options: &SimOptions,
    ) -> Self {
        let bench = function.benchmark();
        let workload = bench.profile();
        let npu_cost_model = NpuCostModel::new();
        let accel_cost = npu_cost_model.invocation(accel_topology);
        let classifier_npu_cost = overhead
            .npu_topology
            .as_ref()
            .map(|t| npu_cost_model.invocation(t));

        // Classifier decision (both paths pay it). The classifier network,
        // if any, runs on the NPU before the decision: its latency is on
        // the critical path.
        let mut decision_cycles = overhead.decision_cycles as f64;
        if let Some(c) = &classifier_npu_cost {
            decision_cycles += c.cycles as f64;
        }
        let decision = Charge {
            cycles: decision_cycles,
            energy: options
                .energy
                .classifier_decision_nj(overhead, &npu_cost_model),
        };

        // Accelerated path: the accelerator latency dominates; core
        // streaming overlaps with PE compute except for the dequeue tail.
        let core_busy = options
            .isa
            .accelerated_invocation_core_cycles(bench.input_dim(), bench.output_dim())
            as f64;
        let approx = Charge {
            cycles: accel_cost.cycles as f64 + options.isa.branch as f64,
            energy: options.energy.npu_invocation_nj(&accel_cost)
                + core_busy * options.energy.core_active_nj_per_cycle
                + (accel_cost.cycles as f64 - core_busy).max(0.0)
                    * options.energy.core_idle_nj_per_cycle,
        };

        // Precise path: the kernel plus the redirect the classifier's
        // reject decision costs.
        let redirect = options
            .isa
            .rejected_invocation_core_cycles(bench.input_dim());
        let precise = Charge {
            cycles: (workload.kernel_cycles + redirect) as f64,
            energy: (workload.kernel_cycles + redirect) as f64
                * options.energy.core_active_nj_per_cycle,
        };

        // A FIFO stall: the core idles until the queue drains.
        let stall = Charge {
            cycles: options.isa.fifo_stall as f64,
            energy: options.isa.fifo_stall as f64 * options.energy.core_idle_nj_per_cycle,
        };

        // Shadow quality samples: the accelerator ran, shadow-run the
        // precise kernel — or the precise path ran, shadow-run the
        // accelerator.
        let shadow_precise = Charge {
            cycles: workload.kernel_cycles as f64,
            energy: workload.kernel_cycles as f64 * options.energy.core_active_nj_per_cycle,
        };
        let shadow_approx = Charge {
            cycles: options
                .isa
                .accelerated_invocation_core_cycles(bench.input_dim(), bench.output_dim())
                as f64,
            energy: options.energy.npu_invocation_nj(&accel_cost),
        };

        // One-time table decompression at program load.
        let startup_cycles = if overhead.table_bit_reads > 0 {
            let table_lines = (overhead.table_bit_reads * 512).div_ceil(512); // ~1 line per table
            (table_lines * options.isa.table_decompress_per_line) as f64
        } else {
            0.0
        };

        Self {
            threshold,
            workload,
            core_active_nj_per_cycle: options.energy.core_active_nj_per_cycle,
            startup_cycles,
            decision,
            approx,
            precise,
            stall,
            shadow_precise,
            shadow_approx,
        }
    }

    /// The certified threshold the model was built against.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// The all-precise baseline for `n` invocations.
    pub fn baseline(&self, n: usize) -> Charge {
        let cycles = self.workload.baseline_cycles(n as u64);
        Charge {
            cycles,
            energy: cycles * self.core_active_nj_per_cycle,
        }
    }

    /// The invocation-independent starting charge of an accelerated run:
    /// the non-kernel application portion plus one-time classifier-table
    /// decompression at program load.
    pub fn startup(&self, n: usize) -> Charge {
        let non_kernel = self.workload.non_kernel_cycles(n as u64);
        let mut cycles = non_kernel;
        cycles += self.startup_cycles;
        Charge {
            cycles,
            energy: non_kernel * self.core_active_nj_per_cycle,
        }
    }

    /// The full charge of one invocation: classifier decision, the
    /// executed path, an optional FIFO stall, and an optional shadow
    /// quality sample (whose flavour depends on which path ran).
    pub fn charge(&self, decision: Decision, event: FifoEvent, shadow: bool) -> Charge {
        let mut c = self.decision;
        match decision {
            Decision::Approximate => {
                c.add(self.approx);
                if event == FifoEvent::Stall {
                    c.add(self.stall);
                }
            }
            Decision::Precise => c.add(self.precise),
        }
        if shadow {
            match decision {
                Decision::Approximate => c.add(self.shadow_precise),
                Decision::Precise => c.add(self.shadow_approx),
            }
        }
        c
    }
}

/// Per-route cost constants of a routed system: one [`InvocationModel`]
/// per pool member — each priced on its **own** NPU topology and charged
/// only the router stages consulted before its decision settled — plus a
/// precise-fallback model charged every stage.
///
/// For a pool of one, member 0's model and the precise model coincide
/// with the binary [`InvocationModel`] of the same artifacts, so every
/// charge is bit-identical to the binary simulator's.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedInvocationModel {
    members: Vec<InvocationModel>,
    precise: InvocationModel,
}

impl RoutedInvocationModel {
    /// Builds the per-route models for one routed compile product.
    pub fn new(routed: &RoutedCompiled, options: &SimOptions) -> Self {
        let threshold = routed.threshold.threshold;
        let members = (0..routed.pool.len())
            .map(|m| {
                InvocationModel::for_function(
                    routed.pool.member(m),
                    &routed.pool.topologies()[m],
                    threshold,
                    &routed.router.overhead_for(RouteChoice::Member(m)),
                    options,
                )
            })
            .collect();
        let precise = InvocationModel::for_function(
            routed.pool.accurate(),
            routed
                .pool
                .topologies()
                .last()
                .expect("pools are non-empty"),
            threshold,
            &routed.router.overhead_for(RouteChoice::Precise),
            options,
        );
        Self { members, precise }
    }

    /// The certified routed threshold the models were built against.
    pub fn threshold(&self) -> f32 {
        self.precise.threshold()
    }

    /// The per-member models, cheapest first.
    pub fn member_models(&self) -> &[InvocationModel] {
        &self.members
    }

    /// The precise-fallback model (used for baseline/startup accounting —
    /// its overhead covers every router stage's tables).
    pub fn precise_model(&self) -> &InvocationModel {
        &self.precise
    }

    /// The all-precise baseline for `n` invocations.
    pub fn baseline(&self, n: usize) -> Charge {
        self.precise.baseline(n)
    }

    /// The invocation-independent starting charge: non-kernel application
    /// cycles plus one-time decompression of **every** router stage's
    /// tables.
    pub fn startup(&self, n: usize) -> Charge {
        self.precise.startup(n)
    }

    /// The full charge of one routed invocation: the consulted router
    /// stages, then the chosen member's accelerated path (with its own
    /// NPU footprint) or the precise path.
    pub fn charge_route(&self, route: RouteChoice, event: FifoEvent, shadow: bool) -> Charge {
        match route {
            RouteChoice::Member(m) => self.members[m].charge(Decision::Approximate, event, shadow),
            RouteChoice::Precise => self.precise.charge(Decision::Precise, event, shadow),
        }
    }
}

/// A quality watchdog armed with its sampling period — the single,
/// canonical "watchdog enabled" representation.
///
/// A period of zero used to be a second spelling of "disabled" that still
/// let the watchdog gate admission; [`WatchdogHook::new`] normalizes it to
/// `None`, so a disabled watchdog is exactly the absence of this value and
/// no half-armed state exists.
#[derive(Debug)]
pub struct WatchdogHook<'a> {
    dog: &'a mut QualityWatchdog,
    period: NonZeroUsize,
}

impl<'a> WatchdogHook<'a> {
    /// Arms `dog` to sample every `period`-th approximate decision.
    /// Returns `None` for `period == 0` — the canonical disabled form.
    pub fn new(dog: &'a mut QualityWatchdog, period: usize) -> Option<Self> {
        NonZeroUsize::new(period).map(|period| Self { dog, period })
    }

    /// The sampling period (always ≥ 1).
    pub fn period(&self) -> usize {
        self.period.get()
    }
}

/// Runtime extensions threaded through [`run`]: injected FIFO events and
/// an optional quality watchdog.
///
/// The hook-free value ([`RunHooks::none`]) makes [`run`] numerically
/// identical to [`simulate`] — the production path pays nothing.
#[derive(Debug)]
pub struct RunHooks<'a> {
    /// Per-invocation FIFO events (empty = no FIFO faults; shorter
    /// streams imply [`FifoEvent::None`] beyond their end).
    pub fifo_events: &'a [FifoEvent],
    /// Quality watchdog gating accelerator admission, armed with its
    /// sampling period. `None` is the only disabled state.
    pub watchdog: Option<WatchdogHook<'a>>,
}

impl<'a> RunHooks<'a> {
    /// No hooks: the clean production configuration.
    pub fn none() -> Self {
        RunHooks {
            fifo_events: &[],
            watchdog: None,
        }
    }

    /// Hooks carrying only a FIFO event stream.
    pub fn with_fifo_events(fifo_events: &'a [FifoEvent]) -> Self {
        RunHooks {
            fifo_events,
            watchdog: None,
        }
    }

    /// Arms the watchdog to sample every `period`-th approximate decision.
    /// `period == 0` normalizes to no watchdog at all (see
    /// [`WatchdogHook::new`]).
    pub fn with_watchdog(mut self, dog: &'a mut QualityWatchdog, period: usize) -> Self {
        self.watchdog = WatchdogHook::new(dog, period);
        self
    }
}

/// The result of simulating one dataset under one classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Wall cycles of the all-precise baseline.
    pub baseline_cycles: f64,
    /// Wall cycles of the accelerated, quality-controlled run.
    pub accelerated_cycles: f64,
    /// Energy (nJ) of the baseline.
    pub baseline_energy_nj: f64,
    /// Energy (nJ) of the accelerated run.
    pub accelerated_energy_nj: f64,
    /// Final-output quality loss of the accelerated run.
    pub quality_loss: f64,
    /// Invocations delegated to the accelerator.
    pub invoked: usize,
    /// Total invocations.
    pub total: usize,
    /// Classifier rejected, oracle would have approximated.
    pub false_positives: usize,
    /// Classifier approximated, oracle would have rejected.
    pub false_negatives: usize,
}

impl RunResult {
    /// Application speedup over the all-precise baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles / self.accelerated_cycles
    }

    /// Energy reduction factor over the baseline.
    pub fn energy_reduction(&self) -> f64 {
        self.baseline_energy_nj / self.accelerated_energy_nj
    }

    /// Fraction of invocations delegated to the accelerator.
    pub fn invocation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.invoked as f64 / self.total as f64
        }
    }

    /// Energy-delay-product improvement factor over the baseline.
    pub fn edp_improvement(&self) -> f64 {
        (self.baseline_cycles * self.baseline_energy_nj)
            / (self.accelerated_cycles * self.accelerated_energy_nj)
    }

    /// False positives as a fraction of all invocations.
    pub fn false_positive_rate(&self) -> f64 {
        self.false_positives as f64 / self.total.max(1) as f64
    }

    /// False negatives as a fraction of all invocations.
    pub fn false_negative_rate(&self) -> f64 {
        self.false_negatives as f64 / self.total.max(1) as f64
    }
}

/// Simulates one dataset under `classifier`, with the compiled artifacts
/// providing the accelerator, threshold and timing profile.
///
/// The hook-free production path: equivalent to [`run`] with
/// [`RunHooks::none`].
pub fn simulate(
    compiled: &Compiled,
    profile: &DatasetProfile,
    classifier: &mut dyn Classifier,
    options: &SimOptions,
) -> RunResult {
    run(compiled, profile, classifier, options, RunHooks::none())
        .expect("hook-free simulation cannot fail")
}

/// Simulates one dataset under `classifier` with runtime hooks: injected
/// FIFO faults and an optional quality watchdog.
///
/// Per invocation the loop (1) asks the classifier for its raw decision,
/// (2) lets the watchdog gate admission (throttling or full precise
/// fallback), (3) charges the executed path's cycles and energy including
/// FIFO stalls, and (4) sporadically samples the true accelerator error
/// for the watchdog, charging the shadow execution that producing that
/// sample costs. Quality is scored from the per-invocation [`Route`]s, so
/// a dropped FIFO output degrades quality via the stale value the
/// consumer actually read.
///
/// # Errors
///
/// Propagates watchdog statistics failures and routed-replay scoring
/// failures as [`SimError`]. With [`RunHooks::none`] the call cannot
/// fail on profiles a clean [`simulate`] accepts.
pub fn run(
    compiled: &Compiled,
    profile: &DatasetProfile,
    classifier: &mut dyn Classifier,
    options: &SimOptions,
    hooks: RunHooks<'_>,
) -> Result<RunResult, SimError> {
    let function = &compiled.function;
    let model = InvocationModel::new(compiled, &classifier.overhead(), options);
    let threshold = model.threshold();

    let n = profile.invocation_count();
    let oracle_rejects = profile.oracle_rejects(threshold);

    // Baseline: the whole application on the precise core.
    let baseline = model.baseline(n);

    // Non-kernel portion plus one-time table decompression at load.
    let startup = model.startup(n);
    let mut cycles = startup.cycles;
    let mut energy = startup.energy;

    let (mut watchdog, watchdog_period) = match hooks.watchdog {
        Some(hook) => {
            let period = hook.period();
            (Some(hook.dog), period)
        }
        None => (None, 0),
    };

    let mut routes: Vec<Route> = Vec::with_capacity(n);
    let mut invoked = 0usize;
    let (mut false_positives, mut false_negatives) = (0usize, 0usize);
    // The last invocation whose accelerator output actually reached the
    // output FIFO — what a Drop leaves for the consumer to read.
    let mut last_good = 0usize;

    for (i, input) in profile.dataset().iter().enumerate() {
        let raw = classifier.classify(i, input);
        // The watchdog gates admission: in degraded states some (or all)
        // approximate decisions are overridden to the precise path.
        let decision = match watchdog.as_deref_mut() {
            Some(w) => w.admit(raw),
            None => raw,
        };

        let mut event = FifoEvent::None;
        match decision {
            Decision::Approximate => {
                invoked += 1;
                if oracle_rejects[i] {
                    false_negatives += 1;
                }
                event = hooks.fifo_events.get(i).copied().unwrap_or(FifoEvent::None);
                match event {
                    FifoEvent::None | FifoEvent::Stall => {
                        last_good = i;
                        routes.push(Route::Approx);
                    }
                    FifoEvent::Drop => {
                        // The result never reached the output FIFO; the
                        // consumer dequeues the stale last-good output.
                        routes.push(Route::ApproxFrom(last_good));
                    }
                }
            }
            Decision::Precise => {
                if !oracle_rejects[i] {
                    false_positives += 1;
                }
                routes.push(Route::Precise);
            }
        }

        // Sporadic watchdog quality sampling: compare accelerator and
        // precise outputs for this invocation and charge the shadow
        // execution that produces the missing half of the pair.
        let shadow = watchdog.is_some()
            && watchdog_period > 0
            && raw == Decision::Approximate
            && i % watchdog_period == 0;
        if shadow {
            let violation = profile.max_error(i) > threshold;
            if let Some(w) = watchdog.as_deref_mut() {
                w.record(violation)?;
            }
        }

        let inv = model.charge(decision, event, shadow);
        cycles += inv.cycles;
        energy += inv.energy;

        if options.online_update_period > 0 && i % options.online_update_period == 0 {
            classifier.observe(i, input, profile.max_error(i) > threshold);
        }
    }

    // Quality of the mixed output stream. With clean routes this is
    // numerically identical to `DatasetProfile::replay_with`.
    let replay = profile.try_replay_routed(function, &routes)?;

    Ok(RunResult {
        baseline_cycles: baseline.cycles,
        accelerated_cycles: cycles,
        baseline_energy_nj: baseline.energy,
        accelerated_energy_nj: energy,
        quality_loss: replay.quality_loss,
        invoked,
        total: n,
        false_positives,
        false_negatives,
    })
}

/// The result of simulating one dataset through a routed system: the
/// familiar [`RunResult`] plus per-member accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedRunResult {
    /// Aggregate timings, energy, quality and false-decision counts.
    /// `invoked` counts invocations served by *any* pool member.
    pub run: RunResult,
    /// Invocations served per pool member, cheapest first.
    pub member_invocations: Vec<usize>,
    /// The serving member whose worst per-invocation error was largest —
    /// the member a dataset-level quality violation is attributed to
    /// (0 when nothing was approximated).
    pub worst_member: usize,
}

/// Simulates one dataset through a routed system: per invocation the
/// deployed [`RouteClassifier`] picks a pool member (or the precise
/// fallback), the invocation is charged that route's cost — consulted
/// router stages plus the member's own NPU footprint — and quality is
/// scored from the mixed output stream of the members that actually
/// served.
///
/// `member_profiles[m]` must be pool member `m`'s profile of the **same**
/// dataset. False decisions are judged against the routing oracle: a
/// false positive runs precise although some member's error was within
/// the threshold; a false negative is served by a member whose error
/// exceeded it.
///
/// For a pool of one this is [`run`] with [`RunHooks::none`], bit for
/// bit: same decisions (the single router stage is the binary table),
/// same charges, same replay. Online classifier updates are not threaded
/// through routed runs; `options.online_update_period` is ignored.
///
/// # Errors
///
/// Propagates routed-replay scoring failures (mismatched member
/// profiles) as [`SimError`].
pub fn run_routed(
    routed: &RoutedCompiled,
    member_profiles: &[&DatasetProfile],
    router: &mut RouteClassifier,
    options: &SimOptions,
) -> Result<RoutedRunResult, SimError> {
    let model = RoutedInvocationModel::new(routed, options);
    let threshold = model.threshold();

    let base = member_profiles.first().ok_or_else(|| {
        SimError::from(mithra_core::MithraError::InsufficientData {
            stage: "routed simulation",
            available: 0,
            needed: 1,
        })
    })?;
    let n = base.invocation_count();

    let baseline = model.baseline(n);
    let startup = model.startup(n);
    let mut cycles = startup.cycles;
    let mut energy = startup.energy;

    let mut choices: Vec<RouteChoice> = Vec::with_capacity(n);
    let mut member_invocations = vec![0usize; routed.pool.len()];
    let mut invoked = 0usize;
    let (mut false_positives, mut false_negatives) = (0usize, 0usize);

    for (i, input) in base.dataset().iter().enumerate() {
        let route = router.classify_route(i, input);
        let oracle = oracle_route(member_profiles, i, threshold);
        match route {
            RouteChoice::Member(m) => {
                invoked += 1;
                member_invocations[m] += 1;
                if member_profiles[m].max_error(i) > threshold {
                    false_negatives += 1;
                }
            }
            RouteChoice::Precise => {
                if !oracle.is_precise() {
                    false_positives += 1;
                }
            }
        }
        choices.push(route);

        let inv = model.charge_route(route, FifoEvent::None, false);
        cycles += inv.cycles;
        energy += inv.energy;
    }

    let replay = routed
        .pool
        .replay_routed_choices(member_profiles, &choices)?;

    Ok(RoutedRunResult {
        run: RunResult {
            baseline_cycles: baseline.cycles,
            accelerated_cycles: cycles,
            baseline_energy_nj: baseline.energy,
            accelerated_energy_nj: energy,
            quality_loss: replay.quality_loss,
            invoked,
            total: n,
            false_positives,
            false_negatives,
        },
        member_invocations,
        worst_member: replay.worst_member,
    })
}

/// Configuration of a closed-loop serving session: the per-run options,
/// the quality contract being defended, the watchdog tuning guarding it,
/// and the re-certifier allowed to replace the operating point when the
/// watchdog gives up on the old one.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Per-dataset simulation options.
    pub options: SimOptions,
    /// The quality contract `(q, beta, S)` every certified pair defends.
    pub spec: QualitySpec,
    /// Watchdog tuning for epoch 0 (swaps install re-calibrated tunings).
    pub watchdog: WatchdogConfig,
    /// Watchdog shadow-sampling period (0 disables the watchdog — and
    /// with it the re-certifier, which has no trigger without a guard).
    pub watchdog_period: usize,
    /// Online re-certification tuning; [`RecertConfig::off`] makes the
    /// session's dataset loop identical to a sequence of plain [`run`]
    /// calls sharing one watchdog.
    pub recert: RecertConfig,
    /// Scale of the per-seed datasets.
    pub scale: DatasetScale,
}

/// One hot-swap performed by the in-loop re-certifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwapRecord {
    /// Dataset index after which the swap took effect.
    pub at_dataset: usize,
    /// Epoch the swap installed (first swap installs epoch 1).
    pub epoch: u64,
    /// The re-certified threshold.
    pub threshold: f32,
    /// Sequential-test trials the certificate consumed.
    pub certify_trials: u64,
    /// Selection attempts the engine spent up to this swap.
    pub attempts: u64,
}

/// One dataset's slice of a session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionDataset {
    /// The dataset's simulation result under the epoch's artifacts.
    pub run: RunResult,
    /// Epoch whose artifacts served this dataset.
    pub epoch: u64,
    /// Whether the schedule drifted this dataset's inputs.
    pub drifted: bool,
    /// Watchdog rung after the dataset completed.
    pub guard_state: GuardState,
    /// Re-certifier phase after the dataset completed.
    pub recert_phase: RecertPhase,
}

/// The operating point in force when a session ended — what a serving
/// deployment would be running (and what post-session conformance
/// validation must therefore judge).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPointRecord {
    /// Epoch of the artifacts (0 = the compile-time certificate).
    pub epoch: u64,
    /// Live accelerator-error threshold.
    pub threshold: f32,
    /// Live deployed classifier.
    pub classifier: mithra_core::table::TableClassifier,
}

/// The result of a closed-loop session over a dataset sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// Per-dataset outcomes, in serving order.
    pub datasets: Vec<SessionDataset>,
    /// The operating point serving when the session ended.
    pub final_point: OperatingPointRecord,
    /// The persistent watchdog's lifetime report (counters, residence and
    /// the transition log span every epoch).
    pub watchdog: WatchdogReport,
    /// The re-certifier's lifetime report.
    pub recert: RecertReport,
    /// Every cycle and nanojoule the re-certifier consumed: shadow
    /// accelerator executions that built calibration profiles while the
    /// session served precisely, plus the classifier-table upload each
    /// swap charges.
    pub recert_charge: Charge,
    /// The hot-swaps performed, in order.
    pub swaps: Vec<SwapRecord>,
}

impl SessionResult {
    /// Mean speedup over the session's datasets.
    pub fn mean_speedup(&self) -> f64 {
        if self.datasets.is_empty() {
            return 0.0;
        }
        self.datasets.iter().map(|d| d.run.speedup()).sum::<f64>() / self.datasets.len() as f64
    }

    /// Datasets whose quality loss stayed within `q`.
    pub fn quality_passes(&self, max_quality_loss: f64) -> usize {
        self.datasets
            .iter()
            .filter(|d| d.run.quality_loss <= max_quality_loss)
            .count()
    }
}

/// Runs a closed-loop serving session: one persistent watchdog and one
/// re-certification engine across a sequence of datasets whose inputs
/// move under `schedule`.
///
/// This is the **reference loop** the sharded serving runtime
/// (`mithra-serve`) must reproduce bit for bit. Per dataset it (1) draws
/// the seed's dataset at the session scale and applies the schedule's
/// drift, (2) profiles it against the *current epoch's* artifacts and
/// simulates it under the shared watchdog via [`run`], and (3) whenever
/// the watchdog **visited** [`GuardState::Fallback`] during the dataset,
/// feeds the profile to the [`RecertEngine`] — charging the shadow
/// accelerator execution every profiled invocation costs (the precise
/// halves are free: a fallback session computes them to serve). Visited,
/// not merely ended in: a guard flapping around its calibrated limit —
/// Fallback, a clean-looking recovery window, Probing, a fresh breach —
/// is a certificate that stopped describing the traffic just as surely as
/// one parked in fallback, and large datasets can walk the whole cycle
/// between two end-of-dataset checks. When the engine certifies a new
/// operating point, the loop installs it — new threshold, new classifier,
/// re-calibrated watchdog tuning — charges the classifier-table upload,
/// and forces the watchdog back to [`GuardState::Monitoring`]; the next
/// dataset is served by the new epoch. If the watchdog recovers *on its
/// own* (the drift reverted and the old pair is healthy again), any
/// in-flight collection or certification is aborted: its window described
/// a distribution that no longer serves traffic.
///
/// With [`RecertConfig::off`] the loop never consults the engine and a
/// session is numerically identical to calling [`run`] per dataset with
/// the same shared watchdog.
///
/// # Errors
///
/// Propagates core-layer failures from profiling, simulation, selection
/// and certification as [`SimError`].
pub fn run_session(
    compiled: &Compiled,
    seeds: &[u64],
    schedule: &DriftSchedule,
    config: &SessionConfig,
) -> Result<SessionResult, SimError> {
    let mut serving =
        compiled.with_operating_point(compiled.threshold.threshold, compiled.table.clone());
    let mut dog = QualityWatchdog::new(config.watchdog);
    let mut engine = RecertEngine::new(config.spec, config.recert)?;

    let mut datasets = Vec::with_capacity(seeds.len());
    let mut swaps = Vec::new();
    let mut recert_charge = Charge::default();

    for (t, &seed) in seeds.iter().enumerate() {
        let drift = schedule.drift_at(t);
        let ds = serving.function.dataset(seed, config.scale);
        let ds = match &drift {
            Some(spec) => ds.drifted(spec),
            None => ds,
        };
        let profile = DatasetProfile::collect(&serving.function, ds);

        let fallback_before = dog.report().time_in.fallback;
        let mut classifier = serving.table.clone();
        let hooks = RunHooks::none().with_watchdog(&mut dog, config.watchdog_period);
        let result = run(&serving, &profile, &mut classifier, &config.options, hooks)?;
        let epoch = engine.epoch();
        // A dataset large enough to hold several watchdog windows can walk
        // Fallback → Probing → Monitoring between two of these checks, so
        // "is the guard degraded" must ask where the dog has *been*, not
        // just where it stands.
        let visited_fallback =
            dog.state() == GuardState::Fallback || dog.report().time_in.fallback > fallback_before;

        if engine.is_enabled() {
            if visited_fallback {
                // Building a calibration profile while serving precisely:
                // the precise outputs are the served outputs, but every
                // invocation's accelerator half is a shadow execution.
                let model = InvocationModel::new(&serving, &classifier.overhead(), &config.options);
                let with_shadow = model.charge(Decision::Precise, FifoEvent::None, true);
                let without = model.charge(Decision::Precise, FifoEvent::None, false);
                let shadow = Charge {
                    cycles: with_shadow.cycles - without.cycles,
                    energy: with_shadow.energy - without.energy,
                };
                for _ in 0..profile.invocation_count() {
                    recert_charge.add(shadow);
                }

                if let Some(outcome) = engine.observe(&serving.function, profile)? {
                    // Hot swap: new pair, re-calibrated guard, and the
                    // one-time upload of the new classifier's tables.
                    serving = serving.with_operating_point(outcome.threshold, outcome.classifier);
                    let model = InvocationModel::new(
                        &serving,
                        &serving.table.clone().overhead(),
                        &config.options,
                    );
                    recert_charge.add(model.startup(0));
                    dog.reconfigure(outcome.watchdog);
                    dog.force_state(GuardState::Monitoring);
                    swaps.push(SwapRecord {
                        at_dataset: t,
                        epoch: outcome.epoch,
                        threshold: outcome.threshold,
                        certify_trials: outcome.certify_trials,
                        attempts: outcome.attempts,
                    });
                }
            }
            // One health checkpoint per dataset: a sustained return to
            // Monitoring aborts in-flight work (the engine owns the
            // hysteresis — a flapping ladder near its limit produces
            // short false recoveries that must not drop the window). A
            // dataset that visited fallback is never healthy, whatever
            // rung the dog happens to stand on at its end.
            engine.note_health(dog.state() == GuardState::Monitoring && !visited_fallback);
        }

        datasets.push(SessionDataset {
            run: result,
            epoch,
            drifted: drift.is_some(),
            guard_state: dog.state(),
            recert_phase: engine.phase(),
        });
    }

    Ok(SessionResult {
        datasets,
        final_point: OperatingPointRecord {
            epoch: engine.epoch(),
            threshold: serving.threshold.threshold,
            classifier: serving.table.clone(),
        },
        watchdog: dog.report(),
        recert: engine.report(),
        recert_charge,
        swaps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::DatasetScale;
    use mithra_axbench::suite;
    use mithra_core::pipeline::{compile, CompileConfig};
    use mithra_core::random::RandomFilter;
    use mithra_core::watchdog::{GuardState, WatchdogConfig};
    use std::sync::Arc;

    fn compiled_for(name: &str) -> Compiled {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        compile(bench, &CompileConfig::smoke()).unwrap()
    }

    fn fresh_profile(compiled: &Compiled, seed: u64) -> DatasetProfile {
        let ds = compiled.function.dataset(seed, DatasetScale::Smoke);
        DatasetProfile::collect(&compiled.function, ds)
    }

    fn session_config(compiled: &Compiled, spec: QualitySpec) -> SessionConfig {
        let mut recert = RecertConfig::paper_default();
        recert.select_after = 18;
        recert.train_samples = 1_500;
        recert.select_iterations = 8;
        recert.max_certify_trials = 80;
        // The production setup: the watchdog limit is calibrated against
        // the clean certified behaviour, so clean serving sits below it
        // and the drift scenarios push past it.
        let watchdog = mithra_core::watchdog::calibrate(
            &mut compiled.table.clone(),
            &compiled.profiles,
            compiled.threshold.threshold,
            spec.confidence,
        )
        .unwrap();
        SessionConfig {
            options: SimOptions::default(),
            spec,
            watchdog,
            watchdog_period: 2,
            recert,
            scale: DatasetScale::Smoke,
        }
    }

    #[test]
    fn recert_off_session_is_bit_identical_to_plain_runs() {
        // RecertConfig::off() must leave the dataset loop exactly as it
        // was before this subsystem existed: a sequence of plain run()
        // calls sharing one watchdog, charge for charge.
        let compiled = compiled_for("sobel");
        let spec = QualitySpec::paper_default(0.1).unwrap();
        let mut config = session_config(&compiled, spec);
        config.recert = RecertConfig::off();
        let drift = mithra_axbench::dataset::DriftSpec {
            scale: 1.25,
            offset: 0.15,
            noise_std: 0.0,
            seed: 41,
        };
        let schedule = DriftSchedule::Step { at: 2, drift };
        let seeds: Vec<u64> = (0..6).map(|i| 5_000_000 + i).collect();

        let session = run_session(&compiled, &seeds, &schedule, &config).unwrap();

        let mut dog = QualityWatchdog::new(config.watchdog);
        for (t, (&seed, got)) in seeds.iter().zip(&session.datasets).enumerate() {
            let ds = compiled.function.dataset(seed, config.scale);
            let ds = match schedule.drift_at(t) {
                Some(spec) => ds.drifted(&spec),
                None => ds,
            };
            let profile = DatasetProfile::collect(&compiled.function, ds);
            let mut cls = compiled.table.clone();
            let want = run(
                &compiled,
                &profile,
                &mut cls,
                &config.options,
                RunHooks::none().with_watchdog(&mut dog, config.watchdog_period),
            )
            .unwrap();
            assert_eq!(got.run, want, "dataset {t} diverged with recert off");
            assert_eq!(got.epoch, 0);
        }
        assert_eq!(session.watchdog, dog.report());
        assert_eq!(session.recert, RecertReport::default());
        assert_eq!(session.recert_charge, Charge::default());
        assert!(session.swaps.is_empty());
    }

    #[test]
    fn session_recovers_from_step_drift_by_hot_swapping() {
        // The tentpole scenario: sustained drift degrades the certified
        // pair, the watchdog walks down to Fallback, the re-certifier
        // collects, certifies and swaps, and serving resumes accelerated
        // under the new epoch.
        let compiled = compiled_for("sobel");
        // S = 0.7 rather than the paper's 0.9: under this drift the best
        // retrainable candidates pass ~85-90% of datasets, and an honest
        // always-valid test needs hundreds of trials to separate that from
        // S = 0.8+. A lighter S lets the e-process conclude within a
        // session-sized budget; the full-scale figw sweep keeps the paper
        // spec and simply runs much longer sessions.
        let spec = QualitySpec::new(0.1, 0.9, 0.7).unwrap();
        let config = session_config(&compiled, spec);
        let drift = mithra_axbench::dataset::DriftSpec {
            scale: 1.25,
            offset: 0.15,
            noise_std: 0.0,
            seed: 41,
        };
        let schedule = DriftSchedule::Step { at: 1, drift };
        let seeds: Vec<u64> = (0..220).map(|i| 5_100_000 + i).collect();

        let session = run_session(&compiled, &seeds, &schedule, &config).unwrap();

        assert!(
            !session.swaps.is_empty(),
            "no hot swap happened: watchdog {:?} recert {:?}",
            session.watchdog,
            session.recert
        );
        let swap = session.swaps[0];
        assert_eq!(swap.epoch, 1);
        assert!(swap.certify_trials > 0);
        assert!(
            session.recert_charge.cycles > 0.0,
            "recert was never charged"
        );

        // Fallback was visited before the swap and serving resumed after.
        assert!(session.watchdog.time_in.fallback > 0);
        let post: Vec<_> = session.datasets.iter().filter(|d| d.epoch > 0).collect();
        assert!(!post.is_empty(), "no dataset served under the new epoch");
        let post_rate =
            post.iter().map(|d| d.run.invocation_rate()).sum::<f64>() / post.len() as f64;
        assert!(
            post_rate > 0.02,
            "post-swap serving is not accelerated: rate {post_rate}"
        );
        // The re-certified pair defends q on most post-swap datasets.
        let passes = post
            .iter()
            .filter(|d| d.run.quality_loss <= spec.max_quality_loss)
            .count();
        assert!(
            passes * 10 >= post.len() * 7,
            "only {passes}/{} post-swap datasets met q",
            post.len()
        );
    }

    #[test]
    fn session_aborts_recert_when_transient_drift_reverts() {
        // Drift-then-revert: the watchdog recovers on its own once the
        // distribution returns, and the in-flight calibration window —
        // which describes the transient distribution — must be dropped,
        // not certified.
        let compiled = compiled_for("sobel");
        let spec = QualitySpec::new(0.1, 0.9, 0.8).unwrap();
        let mut config = session_config(&compiled, spec);
        // A long collection phase so the transient reverts mid-flight.
        config.recert.select_after = 40;
        let drift = mithra_axbench::dataset::DriftSpec {
            scale: 1.25,
            offset: 0.15,
            noise_std: 0.0,
            seed: 41,
        };
        let schedule = DriftSchedule::Transient {
            at: 1,
            until: 8,
            drift,
        };
        let seeds: Vec<u64> = (0..40).map(|i| 5_200_000 + i).collect();

        let session = run_session(&compiled, &seeds, &schedule, &config).unwrap();

        assert!(session.swaps.is_empty(), "swapped on a transient");
        assert_eq!(session.recert.swaps, 0);
        let last = session.datasets.last().unwrap();
        assert_eq!(last.epoch, 0, "epoch must not advance");
        assert_eq!(
            last.recert_phase,
            RecertPhase::Idle,
            "in-flight recert must abort on self-recovery"
        );
        assert_eq!(
            last.guard_state,
            GuardState::Monitoring,
            "watchdog must self-recover after the revert: {:?}",
            session.watchdog
        );
        assert!(session.watchdog.recoveries > 0);
    }

    #[test]
    fn oracle_dominates_realistic_designs() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 777);
        let opts = SimOptions::default();

        let mut oracle = compiled.oracle_for(&profile);
        let oracle_run = simulate(&compiled, &profile, &mut oracle, &opts);

        let mut table = compiled.table.clone();
        let table_run = simulate(&compiled, &profile, &mut table, &opts);

        assert!(oracle_run.speedup() >= table_run.speedup() * 0.999);
        assert!(oracle_run.invocation_rate() >= table_run.invocation_rate() - 1e-9);
        assert_eq!(oracle_run.false_positives, 0);
        assert_eq!(oracle_run.false_negatives, 0);
    }

    #[test]
    fn speedup_exceeds_one_for_accelerated_runs() {
        let compiled = compiled_for("inversek2j");
        let profile = fresh_profile(&compiled, 888);
        let mut oracle = compiled.oracle_for(&profile);
        let run = simulate(&compiled, &profile, &mut oracle, &SimOptions::default());
        assert!(run.speedup() > 1.0, "speedup {}", run.speedup());
        assert!(
            run.energy_reduction() > 1.0,
            "energy {}",
            run.energy_reduction()
        );
        assert!(run.edp_improvement() > run.speedup());
    }

    #[test]
    fn never_approximating_matches_baseline_closely() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 999);
        let mut never = RandomFilter::new(0.0, 1);
        let run = simulate(&compiled, &profile, &mut never, &SimOptions::default());
        assert_eq!(run.quality_loss, 0.0);
        assert_eq!(run.invocation_rate(), 0.0);
        // Only the redirect overhead separates it from the baseline.
        assert!(run.speedup() < 1.0);
        assert!(run.speedup() > 0.8, "speedup {}", run.speedup());
    }

    #[test]
    fn false_decision_accounting_is_consistent() {
        let compiled = compiled_for("blackscholes");
        let profile = fresh_profile(&compiled, 123);
        let mut table = compiled.table.clone();
        let run = simulate(&compiled, &profile, &mut table, &SimOptions::default());
        assert!(run.false_positives + run.false_negatives <= run.total);
        assert!(run.false_positive_rate() <= 1.0);
        // FP + correct rejections = total rejections.
        let rejections = run.total - run.invoked;
        assert!(run.false_positives <= rejections);
    }

    #[test]
    fn full_invocation_gives_max_speedup() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 55);
        let opts = SimOptions::default();
        let mut always = RandomFilter::new(1.0, 2);
        let mut half = RandomFilter::new(0.5, 2);
        let full = simulate(&compiled, &profile, &mut always, &opts);
        let partial = simulate(&compiled, &profile, &mut half, &opts);
        assert!(full.speedup() > partial.speedup());
        assert!(full.energy_reduction() > partial.energy_reduction());
    }

    #[test]
    fn hook_free_run_matches_simulate_exactly() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 777);
        let opts = SimOptions::default();
        let mut a = compiled.table.clone();
        let mut b = compiled.table.clone();
        let plain = simulate(&compiled, &profile, &mut a, &opts);
        let hooked = run(&compiled, &profile, &mut b, &opts, RunHooks::none()).unwrap();
        assert_eq!(plain, hooked);
    }

    #[test]
    fn zero_period_watchdog_is_canonically_disabled() {
        // The two historical spellings of "watchdog off" — no watchdog at
        // all, and a watchdog with sampling period 0 — must be the same
        // configuration: identical results AND an untouched watchdog (the
        // old representation still let a period-0 watchdog gate admission).
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 4242);
        let opts = SimOptions::default();

        let mut a = compiled.table.clone();
        let plain = simulate(&compiled, &profile, &mut a, &opts);

        let mut dog = QualityWatchdog::new(WatchdogConfig::default());
        // Pre-degrade the watchdog: with the old semantics this state
        // would gate admission even at period 0.
        for _ in 0..50 {
            dog.record(true).unwrap();
        }
        let state_before = dog.state();
        let samples_before = dog.report().samples;

        let mut b = compiled.table.clone();
        let hooks = RunHooks::none().with_watchdog(&mut dog, 0);
        assert!(hooks.watchdog.is_none(), "period 0 must normalize to None");
        let spelled = run(&compiled, &profile, &mut b, &opts, hooks).unwrap();

        assert_eq!(plain, spelled);
        assert_eq!(dog.state(), state_before, "disabled watchdog was driven");
        assert_eq!(dog.report().samples, samples_before);
    }

    #[test]
    fn invocation_model_charges_match_run_components() {
        let compiled = compiled_for("sobel");
        let model = InvocationModel::new(
            &compiled,
            &compiled.table.clone().overhead(),
            &SimOptions::default(),
        );
        let approx = model.charge(Decision::Approximate, FifoEvent::None, false);
        let precise = model.charge(Decision::Precise, FifoEvent::None, false);
        let stalled = model.charge(Decision::Approximate, FifoEvent::Stall, false);
        let shadowed = model.charge(Decision::Approximate, FifoEvent::None, true);
        assert!(precise.cycles > approx.cycles, "kernel dwarfs the NPU");
        assert!(stalled.cycles > approx.cycles);
        assert!(shadowed.cycles > approx.cycles);
        assert!(model.baseline(100).cycles > 0.0);
        assert!(model.startup(100).cycles > 0.0);
    }

    fn routed_for(name: &str, pool_size: usize) -> mithra_core::route::RoutedCompiled {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        let spec = mithra_core::route::PoolSpec::sized(&bench.npu_topology(), pool_size);
        mithra_core::pipeline::compile_routed(bench, &CompileConfig::smoke(), &spec).unwrap()
    }

    #[test]
    fn cheap_route_is_charged_fewer_npu_cycles_than_accurate_route() {
        // Satellite regression: per-route costing must price each pool
        // member on its own topology, not the primary function's.
        let routed = routed_for("sobel", 3);
        assert!(
            routed.pool.len() >= 2,
            "tiers collapsed: {:?}",
            routed.pool.topologies()
        );
        let model = RoutedInvocationModel::new(&routed, &SimOptions::default());
        let cheap = model.charge_route(RouteChoice::Member(0), FifoEvent::None, false);
        let accurate = model.charge_route(
            RouteChoice::Member(routed.pool.len() - 1),
            FifoEvent::None,
            false,
        );
        assert!(
            cheap.cycles < accurate.cycles,
            "cheap {} vs accurate {} cycles",
            cheap.cycles,
            accurate.cycles
        );
        assert!(
            cheap.energy < accurate.energy,
            "cheap {} vs accurate {} nJ",
            cheap.energy,
            accurate.energy
        );
        // The precise fallback consults every router stage: its decision
        // overhead is the largest.
        let precise = model.charge_route(RouteChoice::Precise, FifoEvent::None, false);
        assert!(precise.cycles > accurate.cycles);
    }

    #[test]
    fn routed_pool_of_one_run_matches_binary_run_bit_for_bit() {
        let compiled = compiled_for("sobel");
        let bench = Arc::clone(compiled.function.benchmark());
        let spec = mithra_core::route::PoolSpec::single(bench.npu_topology());
        let routed =
            mithra_core::pipeline::compile_routed(bench, &CompileConfig::smoke(), &spec).unwrap();

        let profile = fresh_profile(&compiled, 777);
        let opts = SimOptions::default();
        let mut table = compiled.table.clone();
        let binary = simulate(&compiled, &profile, &mut table, &opts);

        let mut router = routed.router.clone();
        let member_profiles = [&profile];
        let mixed = run_routed(&routed, &member_profiles, &mut router, &opts).unwrap();

        assert_eq!(binary, mixed.run);
        assert_eq!(mixed.member_invocations[0], binary.invoked);
    }

    #[test]
    fn routed_run_accounts_members_consistently() {
        let routed = routed_for("inversek2j", 3);
        let accurate = routed.pool.accurate();
        let ds = accurate.dataset(909, DatasetScale::Smoke);
        let member_profiles: Vec<DatasetProfile> = routed
            .pool
            .members()
            .iter()
            .map(|m| DatasetProfile::collect(m, ds.clone()))
            .collect();
        let refs: Vec<&DatasetProfile> = member_profiles.iter().collect();
        let mut router = routed.router.clone();
        let result = run_routed(&routed, &refs, &mut router, &SimOptions::default()).unwrap();
        assert_eq!(
            result.member_invocations.iter().sum::<usize>(),
            result.run.invoked
        );
        assert!(result.run.invoked <= result.run.total);
        assert!(result.run.speedup() > 0.0);
    }

    #[test]
    fn fifo_stalls_cost_cycles_without_hurting_quality() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 31);
        let opts = SimOptions::default();
        let n = profile.invocation_count();
        let stalls = vec![FifoEvent::Stall; n];
        let mut a = compiled.oracle_for(&profile);
        let mut b = compiled.oracle_for(&profile);
        let clean = simulate(&compiled, &profile, &mut a, &opts);
        let stalled = run(
            &compiled,
            &profile,
            &mut b,
            &opts,
            RunHooks::with_fifo_events(&stalls),
        )
        .unwrap();
        assert!(stalled.accelerated_cycles > clean.accelerated_cycles);
        assert_eq!(stalled.quality_loss, clean.quality_loss);
        assert_eq!(stalled.invoked, clean.invoked);
    }

    #[test]
    fn fifo_drops_degrade_quality() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 32);
        let opts = SimOptions::default();
        let n = profile.invocation_count();
        // Drop 3 of every 4 outputs: most reads are stale.
        let events: Vec<FifoEvent> = (0..n)
            .map(|i| {
                if i % 4 == 0 {
                    FifoEvent::None
                } else {
                    FifoEvent::Drop
                }
            })
            .collect();
        let mut a = RandomFilter::new(1.0, 3);
        let mut b = RandomFilter::new(1.0, 3);
        let clean = simulate(&compiled, &profile, &mut a, &opts);
        let dropped = run(
            &compiled,
            &profile,
            &mut b,
            &opts,
            RunHooks::with_fifo_events(&events),
        )
        .unwrap();
        assert!(
            dropped.quality_loss > clean.quality_loss,
            "dropped {} vs clean {}",
            dropped.quality_loss,
            clean.quality_loss
        );
    }

    #[test]
    fn watchdog_fallback_restores_quality_under_heavy_faults() {
        let compiled = compiled_for("inversek2j");
        let ds = compiled.function.dataset(64, DatasetScale::Smoke);
        let armed = FaultPlan {
            npu_weight_bit_rate: 0.02,
            ..FaultPlan::disarmed()
        }
        .arm(&compiled, &ds)
        .unwrap();
        let opts = SimOptions::default();

        let mut unguarded_cls = armed.classifier.clone();
        let unguarded = run(
            &compiled,
            &armed.profile,
            &mut unguarded_cls,
            &opts,
            RunHooks::none(),
        )
        .unwrap();

        let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
        let mut guarded_cls = armed.classifier.clone();
        let guarded = run(
            &compiled,
            &armed.profile,
            &mut guarded_cls,
            &opts,
            RunHooks::none().with_watchdog(&mut watchdog, 2),
        )
        .unwrap();

        let report = watchdog.report();
        assert!(
            report.breaches > 0,
            "watchdog never fired under heavy faults: {report:?}"
        );
        assert!(
            guarded.quality_loss < unguarded.quality_loss,
            "guarded {} vs unguarded {}",
            guarded.quality_loss,
            unguarded.quality_loss
        );
        assert!(guarded.invoked < unguarded.invoked);
    }

    #[test]
    fn watchdog_stays_quiet_on_clean_runs() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 65);
        let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
        let mut cls = compiled.oracle_for(&profile);
        let guarded = run(
            &compiled,
            &profile,
            &mut cls,
            &SimOptions::default(),
            RunHooks::none().with_watchdog(&mut watchdog, 4),
        )
        .unwrap();
        let report = watchdog.report();
        assert_eq!(report.breaches, 0, "{report:?}");
        assert_eq!(report.state, GuardState::Monitoring);
        // Sampling costs cycles but admission is never gated.
        let mut plain_cls = compiled.oracle_for(&profile);
        let plain = simulate(&compiled, &profile, &mut plain_cls, &SimOptions::default());
        assert_eq!(guarded.invoked, plain.invoked);
        assert_eq!(guarded.quality_loss, plain.quality_loss);
        assert!(guarded.accelerated_cycles > plain.accelerated_cycles);
    }
}
