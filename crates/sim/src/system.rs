//! The combined system: core + NPU + classifier, per-dataset.
//!
//! For every invocation of a profiled dataset the simulator asks the
//! classifier for a decision, charges the corresponding cycles and energy,
//! and finally scores the mixed output's quality. The baseline is the
//! benchmark running entirely on the precise core.
//!
//! [`run`] is the full-featured entry point: it additionally threads a
//! per-invocation FIFO fault stream and an optional quality watchdog
//! ([`mithra_core::watchdog`]) through the loop, charging the cycle and
//! energy cost of every guard action (shadow quality samples, throttled
//! admission, precise fallback). [`simulate`] is the hook-free wrapper the
//! clean experiments use; with [`RunHooks::none`] the two are numerically
//! identical.

use crate::cpu::IsaCosts;
use crate::energy::EnergyModel;
use crate::error::SimError;
use crate::fault::FifoEvent;
use mithra_core::classifier::{Classifier, Decision};
use mithra_core::pipeline::Compiled;
use mithra_core::profile::{DatasetProfile, Route};
use mithra_core::watchdog::QualityWatchdog;
use mithra_npu::cost::NpuCostModel;

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimOptions {
    /// ISA cost configuration.
    pub isa: IsaCosts,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Online-update sampling period for the table design (0 disables;
    /// the paper samples "at sporadic intervals").
    pub online_update_period: usize,
}

/// Runtime extensions threaded through [`run`]: injected FIFO events and
/// an optional quality watchdog with its sampling period.
///
/// The hook-free value ([`RunHooks::none`]) makes [`run`] numerically
/// identical to [`simulate`] — the production path pays nothing.
#[derive(Debug)]
pub struct RunHooks<'a> {
    /// Per-invocation FIFO events (empty = no FIFO faults; shorter
    /// streams imply [`FifoEvent::None`] beyond their end).
    pub fifo_events: &'a [FifoEvent],
    /// Quality watchdog gating accelerator admission.
    pub watchdog: Option<&'a mut QualityWatchdog>,
    /// Sample every `watchdog_period`-th approximate decision for the
    /// watchdog's violation estimate (0 disables sampling).
    pub watchdog_period: usize,
}

impl RunHooks<'_> {
    /// No hooks: the clean production configuration.
    pub fn none() -> Self {
        RunHooks {
            fifo_events: &[],
            watchdog: None,
            watchdog_period: 0,
        }
    }
}

/// The result of simulating one dataset under one classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Wall cycles of the all-precise baseline.
    pub baseline_cycles: f64,
    /// Wall cycles of the accelerated, quality-controlled run.
    pub accelerated_cycles: f64,
    /// Energy (nJ) of the baseline.
    pub baseline_energy_nj: f64,
    /// Energy (nJ) of the accelerated run.
    pub accelerated_energy_nj: f64,
    /// Final-output quality loss of the accelerated run.
    pub quality_loss: f64,
    /// Invocations delegated to the accelerator.
    pub invoked: usize,
    /// Total invocations.
    pub total: usize,
    /// Classifier rejected, oracle would have approximated.
    pub false_positives: usize,
    /// Classifier approximated, oracle would have rejected.
    pub false_negatives: usize,
}

impl RunResult {
    /// Application speedup over the all-precise baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles / self.accelerated_cycles
    }

    /// Energy reduction factor over the baseline.
    pub fn energy_reduction(&self) -> f64 {
        self.baseline_energy_nj / self.accelerated_energy_nj
    }

    /// Fraction of invocations delegated to the accelerator.
    pub fn invocation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.invoked as f64 / self.total as f64
        }
    }

    /// Energy-delay-product improvement factor over the baseline.
    pub fn edp_improvement(&self) -> f64 {
        (self.baseline_cycles * self.baseline_energy_nj)
            / (self.accelerated_cycles * self.accelerated_energy_nj)
    }

    /// False positives as a fraction of all invocations.
    pub fn false_positive_rate(&self) -> f64 {
        self.false_positives as f64 / self.total.max(1) as f64
    }

    /// False negatives as a fraction of all invocations.
    pub fn false_negative_rate(&self) -> f64 {
        self.false_negatives as f64 / self.total.max(1) as f64
    }
}

/// Simulates one dataset under `classifier`, with the compiled artifacts
/// providing the accelerator, threshold and timing profile.
///
/// The hook-free production path: equivalent to [`run`] with
/// [`RunHooks::none`].
pub fn simulate(
    compiled: &Compiled,
    profile: &DatasetProfile,
    classifier: &mut dyn Classifier,
    options: &SimOptions,
) -> RunResult {
    run(compiled, profile, classifier, options, RunHooks::none())
        .expect("hook-free simulation cannot fail")
}

/// Simulates one dataset under `classifier` with runtime hooks: injected
/// FIFO faults and an optional quality watchdog.
///
/// Per invocation the loop (1) asks the classifier for its raw decision,
/// (2) lets the watchdog gate admission (throttling or full precise
/// fallback), (3) charges the executed path's cycles and energy including
/// FIFO stalls, and (4) sporadically samples the true accelerator error
/// for the watchdog, charging the shadow execution that producing that
/// sample costs. Quality is scored from the per-invocation [`Route`]s, so
/// a dropped FIFO output degrades quality via the stale value the
/// consumer actually read.
///
/// # Errors
///
/// Propagates watchdog statistics failures and routed-replay scoring
/// failures as [`SimError`]. With [`RunHooks::none`] the call cannot
/// fail on profiles a clean [`simulate`] accepts.
pub fn run(
    compiled: &Compiled,
    profile: &DatasetProfile,
    classifier: &mut dyn Classifier,
    options: &SimOptions,
    mut hooks: RunHooks<'_>,
) -> Result<RunResult, SimError> {
    let function = &compiled.function;
    let bench = function.benchmark();
    let workload = bench.profile();
    let npu_cost_model = NpuCostModel::new();
    let accel_cost = npu_cost_model.invocation(&bench.npu_topology());
    let overhead = classifier.overhead();
    let classifier_npu_cost = overhead
        .npu_topology
        .as_ref()
        .map(|t| npu_cost_model.invocation(t));
    let threshold = compiled.threshold.threshold;

    let n = profile.invocation_count();
    let oracle_rejects = profile.oracle_rejects(threshold);

    // Baseline: the whole application on the precise core.
    let baseline_cycles = workload.baseline_cycles(n as u64);
    let baseline_energy = baseline_cycles * options.energy.core_active_nj_per_cycle;

    // Non-kernel portion runs identically in both systems.
    let non_kernel_cycles = workload.non_kernel_cycles(n as u64);
    let mut cycles = non_kernel_cycles;
    let mut energy = non_kernel_cycles * options.energy.core_active_nj_per_cycle;

    // One-time table decompression at program load.
    if overhead.table_bit_reads > 0 {
        let table_lines = (overhead.table_bit_reads * 512).div_ceil(512); // ~1 line per table
        cycles += (table_lines * options.isa.table_decompress_per_line) as f64;
    }

    let mut routes: Vec<Route> = Vec::with_capacity(n);
    let mut invoked = 0usize;
    let (mut false_positives, mut false_negatives) = (0usize, 0usize);
    // The last invocation whose accelerator output actually reached the
    // output FIFO — what a Drop leaves for the consumer to read.
    let mut last_good = 0usize;

    for (i, input) in profile.dataset().iter().enumerate() {
        let raw = classifier.classify(i, input);
        // The watchdog gates admission: in degraded states some (or all)
        // approximate decisions are overridden to the precise path.
        let decision = match hooks.watchdog.as_deref_mut() {
            Some(w) => w.admit(raw),
            None => raw,
        };

        // Classifier decision cost (both paths pay it).
        let mut inv_cycles = overhead.decision_cycles as f64;
        let mut inv_energy = options
            .energy
            .classifier_decision_nj(&overhead, &npu_cost_model);
        if let Some(c) = &classifier_npu_cost {
            // The classifier network runs on the NPU before the decision:
            // its latency is on the critical path.
            inv_cycles += c.cycles as f64;
        }

        match decision {
            Decision::Approximate => {
                invoked += 1;
                if oracle_rejects[i] {
                    false_negatives += 1;
                }
                let core_busy = options
                    .isa
                    .accelerated_invocation_core_cycles(bench.input_dim(), bench.output_dim())
                    as f64;
                // The accelerator latency dominates; core streaming
                // overlaps with PE compute except for the dequeue tail.
                inv_cycles += accel_cost.cycles as f64 + options.isa.branch as f64;
                inv_energy += options.energy.npu_invocation_nj(&accel_cost)
                    + core_busy * options.energy.core_active_nj_per_cycle
                    + (accel_cost.cycles as f64 - core_busy).max(0.0)
                        * options.energy.core_idle_nj_per_cycle;

                let event = hooks.fifo_events.get(i).copied().unwrap_or(FifoEvent::None);
                match event {
                    FifoEvent::None => {
                        last_good = i;
                        routes.push(Route::Approx);
                    }
                    FifoEvent::Stall => {
                        // The core waits for the queue to drain, then the
                        // invocation completes normally.
                        inv_cycles += options.isa.fifo_stall as f64;
                        inv_energy +=
                            options.isa.fifo_stall as f64 * options.energy.core_idle_nj_per_cycle;
                        last_good = i;
                        routes.push(Route::Approx);
                    }
                    FifoEvent::Drop => {
                        // The result never reached the output FIFO; the
                        // consumer dequeues the stale last-good output.
                        routes.push(Route::ApproxFrom(last_good));
                    }
                }
            }
            Decision::Precise => {
                if !oracle_rejects[i] {
                    false_positives += 1;
                }
                let redirect = options
                    .isa
                    .rejected_invocation_core_cycles(bench.input_dim());
                inv_cycles += (workload.kernel_cycles + redirect) as f64;
                inv_energy += (workload.kernel_cycles + redirect) as f64
                    * options.energy.core_active_nj_per_cycle;
                routes.push(Route::Precise);
            }
        }

        // Sporadic watchdog quality sampling: compare accelerator and
        // precise outputs for this invocation and charge the shadow
        // execution that produces the missing half of the pair.
        if hooks.watchdog.is_some()
            && hooks.watchdog_period > 0
            && raw == Decision::Approximate
            && i % hooks.watchdog_period == 0
        {
            if decision == Decision::Approximate {
                // The accelerator ran; shadow-run the precise kernel.
                inv_cycles += workload.kernel_cycles as f64;
                inv_energy +=
                    workload.kernel_cycles as f64 * options.energy.core_active_nj_per_cycle;
            } else {
                // The precise path ran; shadow-run the accelerator.
                inv_cycles += options
                    .isa
                    .accelerated_invocation_core_cycles(bench.input_dim(), bench.output_dim())
                    as f64;
                inv_energy += options.energy.npu_invocation_nj(&accel_cost);
            }
            let violation = profile.max_error(i) > threshold;
            if let Some(w) = hooks.watchdog.as_deref_mut() {
                w.record(violation)?;
            }
        }

        cycles += inv_cycles;
        energy += inv_energy;

        if options.online_update_period > 0 && i % options.online_update_period == 0 {
            classifier.observe(i, input, profile.max_error(i) > threshold);
        }
    }

    // Quality of the mixed output stream. With clean routes this is
    // numerically identical to `DatasetProfile::replay_with`.
    let replay = profile.try_replay_routed(function, &routes)?;

    Ok(RunResult {
        baseline_cycles,
        accelerated_cycles: cycles,
        baseline_energy_nj: baseline_energy,
        accelerated_energy_nj: energy,
        quality_loss: replay.quality_loss,
        invoked,
        total: n,
        false_positives,
        false_negatives,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use mithra_axbench::benchmark::Benchmark;
    use mithra_axbench::dataset::DatasetScale;
    use mithra_axbench::suite;
    use mithra_core::pipeline::{compile, CompileConfig};
    use mithra_core::random::RandomFilter;
    use mithra_core::watchdog::{GuardState, WatchdogConfig};
    use std::sync::Arc;

    fn compiled_for(name: &str) -> Compiled {
        let bench: Arc<dyn Benchmark> = suite::by_name(name).unwrap().into();
        compile(bench, &CompileConfig::smoke()).unwrap()
    }

    fn fresh_profile(compiled: &Compiled, seed: u64) -> DatasetProfile {
        let ds = compiled.function.dataset(seed, DatasetScale::Smoke);
        DatasetProfile::collect(&compiled.function, ds)
    }

    #[test]
    fn oracle_dominates_realistic_designs() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 777);
        let opts = SimOptions::default();

        let mut oracle = compiled.oracle_for(&profile);
        let oracle_run = simulate(&compiled, &profile, &mut oracle, &opts);

        let mut table = compiled.table.clone();
        let table_run = simulate(&compiled, &profile, &mut table, &opts);

        assert!(oracle_run.speedup() >= table_run.speedup() * 0.999);
        assert!(oracle_run.invocation_rate() >= table_run.invocation_rate() - 1e-9);
        assert_eq!(oracle_run.false_positives, 0);
        assert_eq!(oracle_run.false_negatives, 0);
    }

    #[test]
    fn speedup_exceeds_one_for_accelerated_runs() {
        let compiled = compiled_for("inversek2j");
        let profile = fresh_profile(&compiled, 888);
        let mut oracle = compiled.oracle_for(&profile);
        let run = simulate(&compiled, &profile, &mut oracle, &SimOptions::default());
        assert!(run.speedup() > 1.0, "speedup {}", run.speedup());
        assert!(
            run.energy_reduction() > 1.0,
            "energy {}",
            run.energy_reduction()
        );
        assert!(run.edp_improvement() > run.speedup());
    }

    #[test]
    fn never_approximating_matches_baseline_closely() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 999);
        let mut never = RandomFilter::new(0.0, 1);
        let run = simulate(&compiled, &profile, &mut never, &SimOptions::default());
        assert_eq!(run.quality_loss, 0.0);
        assert_eq!(run.invocation_rate(), 0.0);
        // Only the redirect overhead separates it from the baseline.
        assert!(run.speedup() < 1.0);
        assert!(run.speedup() > 0.8, "speedup {}", run.speedup());
    }

    #[test]
    fn false_decision_accounting_is_consistent() {
        let compiled = compiled_for("blackscholes");
        let profile = fresh_profile(&compiled, 123);
        let mut table = compiled.table.clone();
        let run = simulate(&compiled, &profile, &mut table, &SimOptions::default());
        assert!(run.false_positives + run.false_negatives <= run.total);
        assert!(run.false_positive_rate() <= 1.0);
        // FP + correct rejections = total rejections.
        let rejections = run.total - run.invoked;
        assert!(run.false_positives <= rejections);
    }

    #[test]
    fn full_invocation_gives_max_speedup() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 55);
        let opts = SimOptions::default();
        let mut always = RandomFilter::new(1.0, 2);
        let mut half = RandomFilter::new(0.5, 2);
        let full = simulate(&compiled, &profile, &mut always, &opts);
        let partial = simulate(&compiled, &profile, &mut half, &opts);
        assert!(full.speedup() > partial.speedup());
        assert!(full.energy_reduction() > partial.energy_reduction());
    }

    #[test]
    fn hook_free_run_matches_simulate_exactly() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 777);
        let opts = SimOptions::default();
        let mut a = compiled.table.clone();
        let mut b = compiled.table.clone();
        let plain = simulate(&compiled, &profile, &mut a, &opts);
        let hooked = run(&compiled, &profile, &mut b, &opts, RunHooks::none()).unwrap();
        assert_eq!(plain, hooked);
    }

    #[test]
    fn fifo_stalls_cost_cycles_without_hurting_quality() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 31);
        let opts = SimOptions::default();
        let n = profile.invocation_count();
        let stalls = vec![FifoEvent::Stall; n];
        let mut a = compiled.oracle_for(&profile);
        let mut b = compiled.oracle_for(&profile);
        let clean = simulate(&compiled, &profile, &mut a, &opts);
        let stalled = run(
            &compiled,
            &profile,
            &mut b,
            &opts,
            RunHooks {
                fifo_events: &stalls,
                watchdog: None,
                watchdog_period: 0,
            },
        )
        .unwrap();
        assert!(stalled.accelerated_cycles > clean.accelerated_cycles);
        assert_eq!(stalled.quality_loss, clean.quality_loss);
        assert_eq!(stalled.invoked, clean.invoked);
    }

    #[test]
    fn fifo_drops_degrade_quality() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 32);
        let opts = SimOptions::default();
        let n = profile.invocation_count();
        // Drop 3 of every 4 outputs: most reads are stale.
        let events: Vec<FifoEvent> = (0..n)
            .map(|i| {
                if i % 4 == 0 {
                    FifoEvent::None
                } else {
                    FifoEvent::Drop
                }
            })
            .collect();
        let mut a = RandomFilter::new(1.0, 3);
        let mut b = RandomFilter::new(1.0, 3);
        let clean = simulate(&compiled, &profile, &mut a, &opts);
        let dropped = run(
            &compiled,
            &profile,
            &mut b,
            &opts,
            RunHooks {
                fifo_events: &events,
                watchdog: None,
                watchdog_period: 0,
            },
        )
        .unwrap();
        assert!(
            dropped.quality_loss > clean.quality_loss,
            "dropped {} vs clean {}",
            dropped.quality_loss,
            clean.quality_loss
        );
    }

    #[test]
    fn watchdog_fallback_restores_quality_under_heavy_faults() {
        let compiled = compiled_for("inversek2j");
        let ds = compiled.function.dataset(64, DatasetScale::Smoke);
        let armed = FaultPlan {
            npu_weight_bit_rate: 0.02,
            ..FaultPlan::disarmed()
        }
        .arm(&compiled, &ds)
        .unwrap();
        let opts = SimOptions::default();

        let mut unguarded_cls = armed.classifier.clone();
        let unguarded = run(
            &compiled,
            &armed.profile,
            &mut unguarded_cls,
            &opts,
            RunHooks::none(),
        )
        .unwrap();

        let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
        let mut guarded_cls = armed.classifier.clone();
        let guarded = run(
            &compiled,
            &armed.profile,
            &mut guarded_cls,
            &opts,
            RunHooks {
                fifo_events: &[],
                watchdog: Some(&mut watchdog),
                watchdog_period: 2,
            },
        )
        .unwrap();

        let report = watchdog.report();
        assert!(
            report.breaches > 0,
            "watchdog never fired under heavy faults: {report:?}"
        );
        assert!(
            guarded.quality_loss < unguarded.quality_loss,
            "guarded {} vs unguarded {}",
            guarded.quality_loss,
            unguarded.quality_loss
        );
        assert!(guarded.invoked < unguarded.invoked);
    }

    #[test]
    fn watchdog_stays_quiet_on_clean_runs() {
        let compiled = compiled_for("sobel");
        let profile = fresh_profile(&compiled, 65);
        let mut watchdog = QualityWatchdog::new(WatchdogConfig::default());
        let mut cls = compiled.oracle_for(&profile);
        let guarded = run(
            &compiled,
            &profile,
            &mut cls,
            &SimOptions::default(),
            RunHooks {
                fifo_events: &[],
                watchdog: Some(&mut watchdog),
                watchdog_period: 4,
            },
        )
        .unwrap();
        let report = watchdog.report();
        assert_eq!(report.breaches, 0, "{report:?}");
        assert_eq!(report.state, GuardState::Monitoring);
        // Sampling costs cycles but admission is never gated.
        let mut plain_cls = compiled.oracle_for(&profile);
        let plain = simulate(&compiled, &profile, &mut plain_cls, &SimOptions::default());
        assert_eq!(guarded.invoked, plain.invoked);
        assert_eq!(guarded.quality_loss, plain.quality_loss);
        assert!(guarded.accelerated_cycles > plain.accelerated_cycles);
    }
}
