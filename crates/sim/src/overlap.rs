//! Pipelined invocation throughput.
//!
//! The default timing model charges each accelerated invocation its full
//! latency (enqueue → PE compute → dequeue) — correct when the program
//! consumes each result before producing the next input. Streaming
//! kernels (sobel over an image, jpeg over blocks) instead enqueue the
//! next invocation while the accelerator computes the current one; the
//! FIFOs decouple the two sides. This module models that steady state:
//! the initiation interval is the slower of the core side and the NPU
//! side, and the input queue must be deep enough to cover the rate
//! mismatch jitter.

use crate::cpu::IsaCosts;
use mithra_npu::cost::NpuCostModel;
use mithra_npu::topology::Topology;

/// Steady-state throughput analysis of back-to-back accelerated
/// invocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapModel {
    /// ISA costs of the core side.
    pub isa: IsaCosts,
    /// Depth of the input FIFO (elements).
    pub input_fifo_depth: usize,
}

/// The result of an overlap analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapAnalysis {
    /// Cycles between consecutive invocation completions at steady state.
    pub initiation_interval: f64,
    /// Full latency of a single isolated invocation.
    pub single_latency: f64,
    /// Throughput gain of pipelining over serialized invocations.
    pub overlap_speedup: f64,
    /// Whether the input FIFO can hold a whole in-flight input vector
    /// (if not, the core stalls mid-enqueue and overlap degrades).
    pub fifo_sufficient: bool,
}

impl OverlapModel {
    /// The NPU interface defaults: 128-element input FIFO.
    pub fn npu_default() -> Self {
        Self {
            isa: IsaCosts::paper_default(),
            input_fifo_depth: 128,
        }
    }

    /// Analyzes steady-state overlap for a network topology.
    pub fn analyze(&self, topology: &Topology) -> OverlapAnalysis {
        let cost = NpuCostModel::new().invocation(topology);
        let core_side = self
            .isa
            .accelerated_invocation_core_cycles(topology.inputs(), topology.outputs())
            as f64;
        let npu_side = cost.cycles as f64;
        let single_latency = core_side + npu_side;
        // The FIFO must buffer at least one full input vector beyond the
        // one being consumed for the producer/consumer to decouple.
        let fifo_sufficient = self.input_fifo_depth >= 2 * topology.inputs();
        let initiation_interval = if fifo_sufficient {
            core_side.max(npu_side)
        } else {
            single_latency
        };
        OverlapAnalysis {
            initiation_interval,
            single_latency,
            overlap_speedup: single_latency / initiation_interval,
            fifo_sufficient,
        }
    }
}

impl Default for OverlapModel {
    fn default() -> Self {
        Self::npu_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_never_slower_than_serial() {
        let model = OverlapModel::npu_default();
        for shape in ["6->8->8->1", "2->8->2", "18->32->8->2", "9->8->1"] {
            let t: Topology = shape.parse().unwrap();
            let a = model.analyze(&t);
            assert!(a.overlap_speedup >= 1.0, "{shape}: {a:?}");
            assert!(a.initiation_interval <= a.single_latency);
        }
    }

    #[test]
    fn compute_bound_kernels_hide_core_time() {
        // jmeint's 18->32->8->2 network computes far longer than the core
        // streams: the initiation interval is the NPU side.
        let model = OverlapModel::npu_default();
        let t: Topology = "18->32->8->2".parse().unwrap();
        let a = model.analyze(&t);
        let npu_cycles = NpuCostModel::new().invocation(&t).cycles as f64;
        assert_eq!(a.initiation_interval, npu_cycles);
        assert!(a.fifo_sufficient);
    }

    #[test]
    fn shallow_fifo_serializes() {
        let model = OverlapModel {
            input_fifo_depth: 16, // cannot double-buffer 64 inputs
            ..OverlapModel::npu_default()
        };
        let t: Topology = "64->16->64".parse().unwrap();
        let a = model.analyze(&t);
        assert!(!a.fifo_sufficient);
        assert_eq!(a.overlap_speedup, 1.0);
    }

    #[test]
    fn default_fifo_covers_every_paper_topology() {
        let model = OverlapModel::npu_default();
        for shape in [
            "6->8->8->1",
            "1->4->4->2",
            "2->8->2",
            "18->32->8->2",
            "64->16->64",
            "9->8->1",
        ] {
            let t: Topology = shape.parse().unwrap();
            assert!(model.analyze(&t).fifo_sufficient, "{shape}");
        }
    }
}
