//! Property-based tests on the NPU substrate.

use mithra_npu::config::{decode, encode};
use mithra_npu::cost::NpuCostModel;
use mithra_npu::mlp::{Activation, Mlp};
use mithra_npu::pe::PeArray;
use mithra_npu::topology::Topology;
use mithra_npu::train::Normalizer;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop::collection::vec(1usize..12, 2..5).prop_map(|v| Topology::new(&v).unwrap())
}

proptest! {
    #[test]
    fn topology_display_parses_back(t in arb_topology()) {
        let s = t.to_string();
        let parsed: Topology = s.parse().unwrap();
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn parameter_counts_are_consistent(t in arb_topology()) {
        prop_assert_eq!(t.parameter_count(), t.weight_count() + t.bias_count());
        prop_assert_eq!(t.macs_per_invocation(), t.weight_count());
        prop_assert!(t.neuron_count() >= t.outputs());
    }

    #[test]
    fn forward_pass_is_deterministic(
        t in arb_topology(),
        seed in any::<u32>(),
    ) {
        let weights: Vec<f32> = (0..t.weight_count())
            .map(|i| ((i as u32).wrapping_mul(seed) % 1000) as f32 / 1000.0 - 0.5)
            .collect();
        let biases: Vec<f32> = (0..t.bias_count())
            .map(|i| ((i as u32).wrapping_add(seed) % 100) as f32 / 100.0 - 0.5)
            .collect();
        let mlp = Mlp::from_parameters(t.clone(), &weights, &biases, Activation::Linear).unwrap();
        let input = vec![0.5f32; t.inputs()];
        prop_assert_eq!(mlp.run(&input).unwrap(), mlp.run(&input).unwrap());
    }

    #[test]
    fn config_stream_round_trips_any_topology(
        t in arb_topology(),
        scale in 0.01f32..2.0,
    ) {
        let weights: Vec<f32> = (0..t.weight_count())
            .map(|i| (i as f32 * 0.713).sin() * scale)
            .collect();
        let biases: Vec<f32> = (0..t.bias_count())
            .map(|i| (i as f32 * 0.319).cos() * scale)
            .collect();
        let mlp = Mlp::from_parameters(t.clone(), &weights, &biases, Activation::Sigmoid).unwrap();
        let restored = decode(&encode(&mlp)).unwrap();
        prop_assert_eq!(restored.topology(), &t);
        let input = vec![0.3f32; t.inputs()];
        let a = mlp.run(&input).unwrap();
        let b = restored.run(&input).unwrap();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    #[test]
    fn stepped_execution_matches_analytical_cycles(t in arb_topology(), seed in any::<u32>()) {
        use mithra_npu::simulator::CycleSimulator;
        let weights: Vec<f32> = (0..t.weight_count())
            .map(|i| (((i as u32).wrapping_mul(seed | 1) % 200) as f32 / 200.0) - 0.5)
            .collect();
        let biases = vec![0.1f32; t.bias_count()];
        let mlp = Mlp::from_parameters(t.clone(), &weights, &biases, Activation::Sigmoid).unwrap();
        let input = vec![0.4f32; t.inputs()];
        let (out, trace) = CycleSimulator::new().execute(&mlp, &input).unwrap();
        prop_assert_eq!(out, mlp.run(&input).unwrap());
        prop_assert_eq!(
            trace.total_cycles(),
            PeArray::npu_default().invocation_cycles(&t)
        );
    }

    #[test]
    fn pe_cycles_monotone_in_network_size(t in arb_topology(), extra in 1usize..8) {
        let pe = PeArray::npu_default();
        let mut bigger: Vec<usize> = t.layers().to_vec();
        let mid = bigger.len() / 2;
        bigger[mid] += extra;
        let t_big = Topology::new(&bigger).unwrap();
        prop_assert!(pe.invocation_cycles(&t_big) >= pe.invocation_cycles(&t));
    }

    #[test]
    fn cost_model_counts_match_topology(t in arb_topology()) {
        let cost = NpuCostModel::new().invocation(&t);
        prop_assert_eq!(cost.macs as usize, t.weight_count());
        prop_assert_eq!(cost.inputs_streamed as usize, t.inputs());
        prop_assert_eq!(cost.outputs_streamed as usize, t.outputs());
        prop_assert!(cost.cycles > 0);
    }

    #[test]
    fn normalizer_round_trips_within_range(
        samples in prop::collection::vec(
            prop::collection::vec(-1e4f32..1e4, 3..=3),
            2..30
        ),
    ) {
        let norm = Normalizer::fit(&samples, 0.0, 1.0);
        for s in &samples {
            let back = norm.inverse(&norm.forward(s));
            for (a, b) in back.iter().zip(s) {
                // Constant dimensions collapse to the min; others round trip.
                prop_assert!((a - b).abs() < 1e-1 || (a - b).abs() / b.abs().max(1.0) < 1e-3);
            }
        }
    }

    #[test]
    fn normalizer_forward_stays_in_target_interval(
        samples in prop::collection::vec(
            prop::collection::vec(-100.0f32..100.0, 2..=2),
            2..20
        ),
        probe_idx in 0usize..20,
    ) {
        let norm = Normalizer::fit(&samples, 0.1, 0.9);
        let probe = &samples[probe_idx % samples.len()];
        for v in norm.forward(probe) {
            prop_assert!((0.1 - 1e-4..=0.9 + 1e-4).contains(&v));
        }
    }
}
