//! Bit-exactness of the optimized training kernels.
//!
//! The trainer's hot loops use preallocated scratch buffers, transposed
//! weight mirrors for the backward pass, and 4-wide interleaved
//! accumulator chains. None of that may change a single bit of the
//! result: this suite retains the textbook row-major formulation as a
//! naive reference — allocating forward trace, strided backward pass,
//! no interleaving — and asserts `Trainer::train` matches it exactly
//! across random topologies, seeds, batch sizes and training sets.
//!
//! Every accumulator chain in the optimized kernels performs the same
//! floating-point operations in the same order as the reference; only
//! memory layout and instruction-level parallelism differ. If a future
//! change reorders an accumulation, these tests fail on the first
//! differing weight.

use mithra_npu::kernel::{KernelBackend, LANES};
use mithra_npu::mlp::{Activation, BatchScratch, ForwardScratch, Mlp};
use mithra_npu::topology::Topology;
use mithra_npu::train::Trainer;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The textbook forward pass: one fresh buffer per layer, accumulation
/// in ascending input order starting from the bias.
fn naive_forward(
    shape: &[usize],
    weights: &[f32],
    biases: &[f32],
    out_act: Activation,
    input: &[f32],
) -> Vec<Vec<f32>> {
    let mut activations = vec![input.to_vec()];
    let mut w_off = 0;
    let mut b_off = 0;
    for l in 0..shape.len() - 1 {
        let fan_in = shape[l];
        let fan_out = shape[l + 1];
        let act = if l + 2 == shape.len() {
            out_act
        } else {
            Activation::Sigmoid
        };
        let x = activations.last().unwrap().clone();
        let mut out = Vec::with_capacity(fan_out);
        for n in 0..fan_out {
            let mut acc = biases[b_off + n];
            for (i, &xi) in x.iter().enumerate() {
                acc += weights[w_off + n * fan_in + i] * xi;
            }
            out.push(act.apply(acc));
        }
        activations.push(out);
        w_off += fan_in * fan_out;
        b_off += fan_out;
    }
    activations
}

/// The retained reference trainer: identical RNG consumption (Xavier
/// init, then one shuffle per epoch) and identical arithmetic order to
/// `Trainer::train`, expressed in the allocation-heavy row-major style
/// the optimized kernels replaced.
#[allow(clippy::too_many_arguments)]
fn naive_train(
    topology: &Topology,
    samples: &[(Vec<f32>, Vec<f32>)],
    epochs: usize,
    learning_rate: f32,
    momentum: f32,
    batch_size: usize,
    seed: u64,
    out_act: Activation,
) -> (Vec<f32>, Vec<f32>) {
    let shape = topology.layers();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weights = Vec::with_capacity(topology.weight_count());
    for l in 0..shape.len() - 1 {
        let bound = (6.0 / (shape[l] + shape[l + 1]) as f32).sqrt();
        for _ in 0..shape[l] * shape[l + 1] {
            weights.push(rng.gen_range(-bound..bound));
        }
    }
    let mut biases = vec![0.0f32; topology.bias_count()];
    let mut w_vel = vec![0.0f32; weights.len()];
    let mut b_vel = vec![0.0f32; biases.len()];

    // Flat offsets of each layer's weight/bias block.
    let mut w_offs = vec![0usize];
    let mut b_offs = vec![0usize];
    for l in 0..shape.len() - 1 {
        w_offs.push(w_offs[l] + shape[l] * shape[l + 1]);
        b_offs.push(b_offs[l] + shape[l + 1]);
    }

    let mut order: Vec<usize> = (0..samples.len()).collect();
    for _epoch in 0..epochs {
        order.shuffle(&mut rng);
        for batch in order.chunks(batch_size) {
            let mut w_grad = vec![0.0f32; weights.len()];
            let mut b_grad = vec![0.0f32; biases.len()];
            for &idx in batch {
                let (x, target) = &samples[idx];
                let acts = naive_forward(shape, &weights, &biases, out_act, x);

                let n_layers = shape.len() - 1;
                let mut deltas: Vec<Vec<f32>> = vec![Vec::new(); n_layers];
                let output = &acts[n_layers];
                deltas[n_layers - 1] = output
                    .iter()
                    .zip(target)
                    .map(|(&o, &t)| (o - t) * out_act.derivative_from_output(o))
                    .collect();

                for l in (0..n_layers).rev() {
                    let fan_in = shape[l];
                    let input = &acts[l];
                    let delta_l = deltas[l].clone();
                    for (n, &d) in delta_l.iter().enumerate() {
                        b_grad[b_offs[l] + n] += d;
                        for (i, &xi) in input.iter().enumerate() {
                            w_grad[w_offs[l] + n * fan_in + i] += d * xi;
                        }
                    }
                    if l > 0 {
                        // Strided row-major propagation: for each lower
                        // neuron i, walk column i of the weight matrix in
                        // ascending upper-neuron order.
                        let mut prev = Vec::with_capacity(fan_in);
                        for i in 0..fan_in {
                            let mut acc = 0.0f32;
                            for (n, &d) in delta_l.iter().enumerate() {
                                acc += d * weights[w_offs[l] + n * fan_in + i];
                            }
                            prev.push(acc * Activation::Sigmoid.derivative_from_output(input[i]));
                        }
                        deltas[l - 1] = prev;
                    }
                }
            }

            let scale = learning_rate / batch.len() as f32;
            for l in 0..shape.len() - 1 {
                let fan_in = shape[l];
                let fan_out = shape[l + 1];
                for n in 0..fan_out {
                    for i in 0..fan_in {
                        let k = w_offs[l] + n * fan_in + i;
                        w_vel[k] = momentum * w_vel[k] - scale * w_grad[k];
                        weights[k] += w_vel[k];
                    }
                    let k = b_offs[l] + n;
                    b_vel[k] = momentum * b_vel[k] - scale * b_grad[k];
                    biases[k] += b_vel[k];
                }
            }
        }
    }
    (weights, biases)
}

/// A small random topology: 2–4 layers, 1–7 neurons each. Widths above 4
/// exercise the quad interleave's main path plus its scalar remainder.
fn topologies() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=7, 2..=4)
}

fn training_sets(
    inputs: usize,
    outputs: usize,
) -> impl Strategy<Value = Vec<(Vec<f32>, Vec<f32>)>> {
    prop::collection::vec(
        (
            prop::collection::vec(-1.0f32..1.0, inputs..=inputs),
            prop::collection::vec(0.0f32..1.0, outputs..=outputs),
        ),
        3..24,
    )
}

proptest! {
    /// `Mlp::run` (the scratch-buffer forward with 4-wide interleaved
    /// accumulators) is bit-identical to the naive per-layer forward.
    #[test]
    fn forward_matches_naive_reference(
        shape in topologies(),
        seed in any::<u64>(),
    ) {
        let topology = Topology::new(&shape).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f32> =
            (0..topology.weight_count()).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        let biases: Vec<f32> =
            (0..topology.bias_count()).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        for out_act in [Activation::Linear, Activation::Sigmoid] {
            let mlp =
                Mlp::from_parameters(topology.clone(), &weights, &biases, out_act).unwrap();
            for _ in 0..4 {
                let input: Vec<f32> =
                    (0..topology.inputs()).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let got = mlp.run(&input).unwrap();
                let want = naive_forward(&shape, &weights, &biases, out_act, &input);
                prop_assert_eq!(&got, want.last().unwrap());
            }
        }
    }

    /// `Trainer::train` (scratch buffers, transposed backward mirrors,
    /// interleaved chains) produces bit-identical parameters to the
    /// retained textbook implementation.
    #[test]
    fn training_matches_naive_reference(
        shape in topologies(),
        seed in any::<u64>(),
        batch_size in 1usize..=8,
        epochs in 1usize..=5,
        lr in 0.05f32..0.5,
        with_momentum in any::<bool>(),
        sigmoid_out in any::<bool>(),
    ) {
        let topology = Topology::new(&shape).unwrap();
        let momentum = if with_momentum { 0.9f32 } else { 0.0 };
        let out_act = if sigmoid_out { Activation::Sigmoid } else { Activation::Linear };
        let mut data_rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
        let n = 3 + (seed % 21) as usize;
        let samples: Vec<(Vec<f32>, Vec<f32>)> = (0..n)
            .map(|_| {
                (
                    (0..topology.inputs()).map(|_| data_rng.gen_range(-1.0f32..1.0)).collect(),
                    (0..topology.outputs()).map(|_| data_rng.gen_range(0.0f32..1.0)).collect(),
                )
            })
            .collect();

        let mlp = Trainer::new(topology.clone())
            .epochs(epochs)
            .learning_rate(lr)
            .momentum(momentum)
            .batch_size(batch_size)
            .seed(seed)
            .output_activation(out_act)
            .train(&samples)
            .unwrap();
        let (got_w, got_b) = mlp.to_parameters();

        let (want_w, want_b) = naive_train(
            &topology, &samples, epochs, lr, momentum, batch_size, seed, out_act,
        );
        prop_assert_eq!(got_w, want_w);
        prop_assert_eq!(got_b, want_b);
    }

    /// Random inputs through a *trained* network: the parity holds for
    /// realistic (non-uniform) weights too, and larger sets exercise
    /// every batch-remainder path.
    #[test]
    fn trained_network_forward_parity(
        samples in training_sets(3, 2),
        seed in any::<u64>(),
    ) {
        let topology = Topology::new(&[3, 5, 2]).unwrap();
        let mlp = Trainer::new(topology.clone())
            .epochs(3)
            .seed(seed)
            .train(&samples)
            .unwrap();
        let (w, b) = mlp.to_parameters();
        for (x, _) in samples.iter().take(8) {
            let got = mlp.run(x).unwrap();
            let want = naive_forward(&[3, 5, 2], &w, &b, Activation::Linear, x);
            prop_assert_eq!(&got, want.last().unwrap());
        }
    }
}

// ---------------------------------------------------------------------
// Scalar ↔ SIMD parity. The SIMD backend is *not* bit-exact against the
// scalar reference (fused multiply-adds round once, the vectorized
// sigmoid uses a polynomial exp), so these tests pin a tolerance instead
// — and `forward_tolerance_has_teeth` proves the tolerance is tight
// enough to catch a real defect, not a rubber stamp.
// ---------------------------------------------------------------------

/// Unit-scaled tolerance for one forward pass: the polynomial exp is
/// accurate to ~1e-6 relative and fused accumulation differs from the
/// scalar chain by a few ulps per dot product.
const FORWARD_TOL: f32 = 1e-4;

/// Largest |a-b| / max(|b|, 1) over a pair of output vectors.
fn max_unit_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs() / y.abs().max(1.0))
        .fold(0.0, f32::max)
}

/// A random network over widths that straddle the tile width: the range
/// covers width-1 layers (one active lane) and widths below, at, and
/// above `LANES`, so pad-lane handling is exercised on every boundary.
fn simd_topologies() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=2 * LANES + 1, 2..=4)
}

fn random_mlp(shape: &[usize], seed: u64, out_act: Activation) -> Mlp {
    let topology = Topology::new(shape).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f32> = (0..topology.weight_count())
        .map(|_| rng.gen_range(-2.0f32..2.0))
        .collect();
    let biases: Vec<f32> = (0..topology.bias_count())
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    Mlp::from_parameters(topology, &weights, &biases, out_act).unwrap()
}

proptest! {
    /// One SIMD forward pass tracks the scalar reference within
    /// [`FORWARD_TOL`] on every topology shape — including width-1 and
    /// non-multiple-of-`LANES` layers, where pad lanes must not leak.
    #[test]
    fn simd_forward_matches_scalar_within_tolerance(
        shape in simd_topologies(),
        seed in any::<u64>(),
    ) {
        if !KernelBackend::simd_available() {
            return Ok(());
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51D);
        for out_act in [Activation::Linear, Activation::Sigmoid] {
            let mlp = random_mlp(&shape, seed, out_act);
            let mut scalar_scratch = ForwardScratch::new();
            let mut simd_scratch = ForwardScratch::new();
            for _ in 0..4 {
                let input: Vec<f32> = (0..shape[0]).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let want = mlp
                    .forward_into_with(KernelBackend::Scalar, &input, &mut scalar_scratch)
                    .unwrap()
                    .to_vec();
                let got = mlp
                    .forward_into_with(KernelBackend::Simd, &input, &mut simd_scratch)
                    .unwrap()
                    .to_vec();
                prop_assert!(
                    max_unit_diff(&got, &want) <= FORWARD_TOL,
                    "divergence {} beyond tolerance (shape {:?})",
                    max_unit_diff(&got, &want),
                    shape,
                );
            }
        }
    }

    /// The batched entry point is bit-identical to the per-invocation
    /// entry point of the *same* backend, for batch counts on and off
    /// the tile boundary. This is the contract that lets the profiler
    /// and the serve engine batch without changing any result.
    #[test]
    fn batched_forward_is_bit_identical_per_backend(
        shape in simd_topologies(),
        count in 1usize..=2 * LANES + 3,
        seed in any::<u64>(),
    ) {
        let mlp = random_mlp(&shape, seed, Activation::Linear);
        let in_dim = shape[0];
        let out_dim = *shape.last().unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
        let inputs: Vec<f32> = (0..count * in_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut backends = vec![KernelBackend::Scalar];
        if KernelBackend::simd_available() {
            backends.push(KernelBackend::Simd);
        }
        for backend in backends {
            let mut batch_scratch = BatchScratch::new();
            let mut outputs = Vec::new();
            mlp.forward_batch_into_with(backend, &inputs, count, &mut outputs, &mut batch_scratch)
                .unwrap();
            prop_assert_eq!(outputs.len(), count * out_dim);
            let mut fwd = ForwardScratch::new();
            for s in 0..count {
                let want = mlp
                    .forward_into_with(backend, &inputs[s * in_dim..(s + 1) * in_dim], &mut fwd)
                    .unwrap();
                prop_assert_eq!(
                    &outputs[s * out_dim..(s + 1) * out_dim],
                    want,
                    "backend {:?}, sample {}/{}",
                    backend,
                    s,
                    count
                );
            }
        }
    }
}

/// The tolerance check must reject a genuinely broken kernel: perturbing
/// one output by 100× the tolerance trips `max_unit_diff`. Guards
/// against the parity suite degenerating into a rubber stamp if the
/// tolerance is ever loosened carelessly.
#[test]
fn forward_tolerance_has_teeth() {
    let mlp = random_mlp(&[5, 9, 3], 7, Activation::Sigmoid);
    let mut scratch = ForwardScratch::new();
    let input = [0.3f32, -0.7, 0.1, 0.9, -0.2];
    let out = mlp
        .forward_into_with(KernelBackend::Scalar, &input, &mut scratch)
        .unwrap()
        .to_vec();
    let mut mutated = out.clone();
    mutated[1] += 100.0 * FORWARD_TOL;
    assert!(max_unit_diff(&mutated, &out) > FORWARD_TOL);
    // And an in-tolerance wiggle still passes, so the threshold is a
    // band, not an equality check in disguise.
    let mut close = out.clone();
    close[1] += 0.1 * FORWARD_TOL;
    assert!(max_unit_diff(&close, &out) <= FORWARD_TOL);
}

/// SIMD training converges on every benchmark topology: same data, same
/// seed, both backends reach a comparable loss, and their trained
/// networks agree within a (looser) tolerance — epochs compound the
/// per-step rounding difference, so this band is wider than the
/// single-pass one.
#[test]
fn simd_training_tracks_scalar_on_benchmark_topologies() {
    if !KernelBackend::simd_available() {
        eprintln!("skipping: host cannot run the simd backend");
        return;
    }
    // The six benchmark topologies of the axbench suite.
    let suite: &[&[usize]] = &[
        &[6, 8, 3, 1],   // blackscholes
        &[2, 8, 2],      // inversek2j
        &[18, 32, 8, 2], // jmeint
        &[64, 16, 64],   // jpeg
        &[9, 8, 1],      // sobel
        &[1, 4, 4, 2],   // fft
    ];
    for shape in suite {
        let topology = Topology::new(shape).unwrap();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let samples: Vec<(Vec<f32>, Vec<f32>)> = (0..64)
            .map(|_| {
                (
                    (0..topology.inputs())
                        .map(|_| rng.gen_range(-1.0f32..1.0))
                        .collect(),
                    (0..topology.outputs())
                        .map(|_| rng.gen_range(0.0f32..1.0))
                        .collect(),
                )
            })
            .collect();
        let train = |backend: KernelBackend| {
            Trainer::new(topology.clone())
                .epochs(20)
                .seed(42)
                .batch_size(10)
                .kernel(backend)
                .train(&samples)
                .unwrap()
        };
        let scalar = train(KernelBackend::Scalar);
        let simd = train(KernelBackend::Simd);
        let mut worst = 0.0f32;
        for (x, _) in &samples {
            let a = scalar.run(x).unwrap();
            let b = simd.run(x).unwrap();
            worst = worst.max(max_unit_diff(&b, &a));
        }
        assert!(
            worst <= 5e-2,
            "topology {shape:?}: trained networks diverge by {worst}"
        );
    }
}
