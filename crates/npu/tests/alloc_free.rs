//! Steady-state allocation freedom of the NPU hot loops.
//!
//! The forward and training kernels are built around caller-owned
//! scratch buffers precisely so the hot loops never touch the allocator.
//! This binary installs a counting `#[global_allocator]` (per-thread
//! counters, so parallel test execution cannot cross-contaminate) and
//! pins that contract: a properly pre-sized forward pass performs zero
//! allocations on either backend, and training's allocation count is
//! independent of the epoch count — every per-epoch buffer is reused.

use mithra_npu::kernel::KernelBackend;
use mithra_npu::mlp::{Activation, BatchScratch, ForwardScratch, Mlp};
use mithra_npu::topology::Topology;
use mithra_npu::train::{TrainScratch, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    // Const-initialized: the first access from inside `alloc` must not
    // itself allocate, or the counter would recurse.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` on the calling thread.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let result = f();
    (ALLOCS.with(Cell::get) - before, result)
}

fn test_mlp(shape: &[usize]) -> Mlp {
    let topology = Topology::new(shape).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let weights: Vec<f32> = (0..topology.weight_count())
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let biases: Vec<f32> = (0..topology.bias_count())
        .map(|_| rng.gen_range(-0.5f32..0.5))
        .collect();
    Mlp::from_parameters(topology, &weights, &biases, Activation::Sigmoid).unwrap()
}

#[test]
fn forward_is_allocation_free_with_presized_scratch() {
    let mlp = test_mlp(&[9, 8, 1]);
    let input = [0.25f32; 9];
    let mut backends = vec![KernelBackend::Scalar];
    if KernelBackend::simd_available() {
        backends.push(KernelBackend::Simd);
    }
    for backend in backends {
        let mut scratch = ForwardScratch::for_topology(mlp.topology());
        let (allocs, _) = allocs_during(|| {
            for _ in 0..32 {
                mlp.forward_into_with(backend, &input, &mut scratch)
                    .unwrap();
            }
        });
        assert_eq!(allocs, 0, "forward allocated on backend {backend:?}");
    }
}

#[test]
fn batched_forward_is_allocation_free_after_warmup() {
    let mlp = test_mlp(&[6, 8, 3, 1]);
    let count = 20; // off the tile boundary: pad lanes in the last group
    let mut rng = StdRng::seed_from_u64(7);
    let inputs: Vec<f32> = (0..count * 6)
        .map(|_| rng.gen_range(-1.0f32..1.0))
        .collect();
    let mut backends = vec![KernelBackend::Scalar];
    if KernelBackend::simd_available() {
        backends.push(KernelBackend::Simd);
    }
    for backend in backends {
        let mut scratch = BatchScratch::for_topology(mlp.topology());
        let mut outputs = Vec::new();
        // One warm pass sizes the output vector; steady state reuses it.
        mlp.forward_batch_into_with(backend, &inputs, count, &mut outputs, &mut scratch)
            .unwrap();
        let (allocs, _) = allocs_during(|| {
            for _ in 0..16 {
                mlp.forward_batch_into_with(backend, &inputs, count, &mut outputs, &mut scratch)
                    .unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "batched forward allocated on backend {backend:?}"
        );
    }
}

/// Training's allocation count must not scale with epochs: everything
/// the epoch loop touches lives in [`TrainScratch`] and is reused. The
/// counts are compared exactly — one stray per-epoch `Vec` would show up
/// as a difference of at least three.
#[test]
fn training_allocations_are_epoch_independent() {
    let topology = Topology::new(&[2, 8, 2]).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let samples: Vec<(Vec<f32>, Vec<f32>)> = (0..40)
        .map(|_| {
            (
                vec![rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)],
                vec![rng.gen_range(0.0f32..1.0), rng.gen_range(0.0f32..1.0)],
            )
        })
        .collect();
    let mut backends = vec![KernelBackend::Scalar];
    if KernelBackend::simd_available() {
        backends.push(KernelBackend::Simd);
    }
    for backend in backends {
        let count_for = |epochs: usize| {
            let mut scratch = TrainScratch::for_topology(&topology);
            let (allocs, mlp) = allocs_during(|| {
                Trainer::new(topology.clone())
                    .epochs(epochs)
                    .seed(5)
                    .batch_size(10)
                    .kernel(backend)
                    .train_with_scratch(&samples, &mut scratch)
                    .unwrap()
            });
            drop(mlp);
            allocs
        };
        let one = count_for(1);
        let four = count_for(4);
        assert_eq!(
            one, four,
            "backend {backend:?}: allocation count scales with epochs ({one} vs {four})"
        );
    }
}
