//! The core↔NPU queue interface.
//!
//! The NPU "exposes three queues to the processor to communicate inputs,
//! outputs, and configurations" (paper §V-A). The ISA adds enqueue/dequeue
//! instructions that move one element per issue. MITHRA's classifiers snoop
//! the input queue: "classifiers receive the inputs as the processor
//! enqueues them in the accelerator FIFO". This module models those bounded
//! queues so the system simulator can charge per-element transport costs
//! and so tests can exercise back-pressure behaviour.

use crate::{NpuError, Result};
use std::collections::VecDeque;

/// A bounded single-producer FIFO as exposed by the accelerator interface.
///
/// # Example
///
/// ```
/// # use mithra_npu::fifo::Fifo;
/// let mut q = Fifo::new(4);
/// q.enqueue(1.0f32)?;
/// q.enqueue(2.0)?;
/// assert_eq!(q.dequeue()?, 1.0);
/// assert_eq!(q.len(), 1);
/// # Ok::<(), mithra_npu::NpuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given capacity (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            items: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of elements the queue holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity (an enqueue would stall the core).
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Enqueues one element.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::Fifo`] if the queue is full. Overflow is
    /// *recoverable*: the hardware stalls the enqueue instruction until
    /// the accelerator drains a slot, so callers model the error as stall
    /// cycles (see `IsaCosts::fifo_stall` in `mithra-sim`) and retry — the
    /// element is not consumed by a failed enqueue.
    pub fn enqueue(&mut self, value: T) -> Result<()> {
        if self.is_full() {
            return Err(NpuError::Fifo {
                operation: "enqueue",
                capacity: self.capacity,
                occupancy: self.items.len(),
            });
        }
        self.items.push_back(value);
        Ok(())
    }

    /// Dequeues the oldest element.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::Fifo`] if the queue is empty. Underflow is
    /// *recoverable*: the dequeue instruction stalls until the accelerator
    /// produces an element, so callers charge stall cycles and retry.
    pub fn dequeue(&mut self) -> Result<T> {
        self.items.pop_front().ok_or(NpuError::Fifo {
            operation: "dequeue",
            capacity: self.capacity,
            occupancy: 0,
        })
    }

    /// Removes all queued elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Number of free slots (how many elements a burst enqueue accepts).
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Burst-enqueues from a slice, stopping at capacity. Returns the
    /// number of elements accepted — the caller resumes the slice from
    /// that offset after the accelerator drains (batch refill pattern:
    /// one bounds check per burst instead of per element).
    pub fn enqueue_slice(&mut self, values: &[T]) -> usize
    where
        T: Copy,
    {
        let take = values.len().min(self.free());
        self.items.extend(&values[..take]);
        take
    }

    /// Burst-dequeues up to `max` elements into `out` (appended in queue
    /// order). Returns the number drained; draining an empty queue is not
    /// an error — it returns 0, the "nothing produced yet" poll result.
    pub fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let take = max.min(self.items.len());
        out.extend(self.items.drain(..take));
        take
    }

    /// Iterates over queued elements oldest-first without consuming them
    /// (how a snooping classifier observes the input stream).
    pub fn iter(&self) -> std::collections::vec_deque::Iter<'_, T> {
        self.items.iter()
    }
}

impl<T> Extend<T> for Fifo<T> {
    /// Extends the queue, silently stopping at capacity (matching burst
    /// enqueue behaviour where the tail stalls).
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            if self.enqueue(v).is_err() {
                break;
            }
        }
    }
}

/// The accelerator's full queue interface: input, output, and config.
#[derive(Debug, Clone)]
pub struct QueueInterface {
    /// Input operands from the core to the accelerator.
    pub input: Fifo<f32>,
    /// Results from the accelerator back to the core.
    pub output: Fifo<f32>,
    /// Configuration words (weights, topology descriptors).
    pub config: Fifo<u32>,
}

impl QueueInterface {
    /// Creates an interface with the NPU's queue depths: 128-deep data
    /// queues and a 32-deep config queue.
    pub fn new() -> Self {
        Self {
            input: Fifo::new(128),
            output: Fifo::new(128),
            config: Fifo::new(32),
        }
    }
}

impl Default for QueueInterface {
    fn default() -> Self {
        Self::new()
    }
}

impl QueueInterface {
    /// Streams a full configuration image (weights, topology descriptors)
    /// through the bounded config queue in bursts, as the core does once
    /// per context switch: fill the 32-deep queue, let the accelerator
    /// drain it, repeat. Returns the number of bursts — the unit a batched
    /// serving worker amortizes across a batch by configuring once per
    /// consecutive same-endpoint run instead of once per invocation.
    pub fn stream_config(&mut self, words: &[u32]) -> usize {
        let mut bursts = 0usize;
        let mut offset = 0usize;
        while offset < words.len() {
            offset += self.config.enqueue_slice(&words[offset..]);
            // The accelerator consumes the whole burst before the core
            // enqueues the next one.
            self.config.clear();
            bursts += 1;
        }
        bursts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = Fifo::new(8);
        for i in 0..5 {
            q.enqueue(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap(), i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_rejects_enqueue() {
        let mut q = Fifo::new(2);
        q.enqueue(1).unwrap();
        q.enqueue(2).unwrap();
        assert!(q.is_full());
        assert!(matches!(
            q.enqueue(3),
            Err(NpuError::Fifo {
                operation: "enqueue",
                capacity: 2,
                occupancy: 2,
            })
        ));
    }

    #[test]
    fn empty_queue_rejects_dequeue() {
        let mut q: Fifo<u8> = Fifo::new(2);
        assert!(matches!(
            q.dequeue(),
            Err(NpuError::Fifo {
                operation: "dequeue",
                capacity: 2,
                occupancy: 0,
            })
        ));
    }

    #[test]
    fn overflow_is_recoverable_after_drain() {
        // The stall model: a refused enqueue loses nothing; once the
        // accelerator drains a slot the retry succeeds and order holds.
        let mut q = Fifo::new(2);
        q.enqueue(10).unwrap();
        q.enqueue(20).unwrap();
        assert!(q.enqueue(30).is_err());
        assert_eq!(q.len(), 2, "failed enqueue must not consume a slot");
        assert_eq!(q.dequeue().unwrap(), 10);
        q.enqueue(30).unwrap();
        assert_eq!(q.dequeue().unwrap(), 20);
        assert_eq!(q.dequeue().unwrap(), 30);
    }

    #[test]
    fn underflow_is_recoverable_after_produce() {
        let mut q: Fifo<u8> = Fifo::new(2);
        assert!(q.dequeue().is_err());
        assert!(q.is_empty(), "failed dequeue must not corrupt state");
        q.enqueue(7).unwrap();
        assert_eq!(q.dequeue().unwrap(), 7);
    }

    #[test]
    fn zero_capacity_clamped_to_one() {
        let q: Fifo<u8> = Fifo::new(0);
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn extend_stops_at_capacity() {
        let mut q = Fifo::new(3);
        q.extend(0..100);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn snooping_iteration_does_not_consume() {
        let mut q = Fifo::new(4);
        q.extend([1.0f32, 2.0, 3.0]);
        let seen: Vec<f32> = q.iter().copied().collect();
        assert_eq!(seen, vec![1.0, 2.0, 3.0]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn interface_defaults() {
        let qi = QueueInterface::default();
        assert_eq!(qi.input.capacity(), 128);
        assert_eq!(qi.config.capacity(), 32);
    }

    #[test]
    fn enqueue_slice_fills_to_capacity_and_reports_offset() {
        let mut q = Fifo::new(4);
        q.enqueue(0).unwrap();
        let data = [1, 2, 3, 4, 5];
        assert_eq!(q.enqueue_slice(&data), 3, "only 3 slots were free");
        assert!(q.is_full());
        assert_eq!(q.dequeue().unwrap(), 0);
        // Resume from the reported offset: nothing lost, nothing repeated.
        assert_eq!(q.enqueue_slice(&data[3..]), 1);
        for want in 1..=4 {
            assert_eq!(q.dequeue().unwrap(), want);
        }
    }

    #[test]
    fn drain_into_preserves_order_and_tolerates_empty() {
        let mut q = Fifo::new(8);
        q.extend(0..5);
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(q.drain_into(&mut out, 10), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.drain_into(&mut out, 10), 0, "empty drain is a no-op");
        assert!(q.is_empty());
    }

    #[test]
    fn stream_config_bursts_cover_the_whole_image() {
        let mut qi = QueueInterface::new();
        let words: Vec<u32> = (0..100).collect();
        // 100 words through a 32-deep queue: ceil(100/32) = 4 bursts.
        assert_eq!(qi.stream_config(&words), 4);
        assert!(qi.config.is_empty());
        assert_eq!(qi.stream_config(&[]), 0);
        assert_eq!(qi.stream_config(&words[..32]), 1);
    }
}
