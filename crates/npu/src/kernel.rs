//! Runtime-dispatched kernel backends for the NPU hot loops.
//!
//! Every arithmetic path in this crate has a **scalar reference**
//! implementation whose floating-point operation order is fixed and
//! bit-reproducible ([`crate::mlp::Mlp::run_into`], the trainer's
//! `sgd_step`). That path is the default: all committed results and
//! byte-identity pins are produced by it. This module adds an opt-in
//! **SIMD** backend that relaxes the accumulation order to a
//! lane-per-sample tile layout so the compiler can keep eight samples in
//! flight per vector instruction.
//!
//! # Tile layout
//!
//! A *tile* packs [`LANES`] samples interleaved by feature:
//! `tile[i * LANES + lane]` is feature `i` of sample `lane`. Layer
//! evaluation then broadcasts one weight against eight samples per
//! fused-multiply-add, so the vector width is always filled regardless of
//! how narrow the network is (the suite's topologies go down to
//! width 1). Crucially, lane `lane`'s result depends **only** on lane
//! `lane`'s inputs — there is no cross-lane arithmetic — so a sample
//! computed in a partially filled tile is bit-identical to the same
//! sample inside a full tile. That per-lane independence is what makes
//! the batched forward bit-identical to the per-invocation SIMD forward
//! by construction (pinned in `tests/kernel_parity.rs`).
//!
//! # Dispatch policy
//!
//! The tile kernels are written once as `#[inline(always)]` generic
//! bodies using [`f32::mul_add`] (a fused single-rounding operation on
//! every path), then instantiated under
//! `#[target_feature(enable = "avx2,fma")]` on x86_64. Which
//! instantiation runs is decided once per process from
//! `is_x86_feature_detected!`; on aarch64 NEON is baseline so the
//! generic body already vectorizes. Because every instantiation executes
//! the same fused operations in the same order, the SIMD backend's
//! results are deterministic and identical across ISAs — it differs from
//! the scalar reference (different accumulation order), not between
//! machines.
//!
//! # Selection
//!
//! [`KernelBackend::resolve`] picks the backend once per entry point:
//! the `MITHRA_KERNEL` environment variable wins over the requested
//! value (so a deployment can force `MITHRA_KERNEL=scalar` without
//! touching flags), and a SIMD request on a host without AVX2+FMA
//! degrades to scalar rather than running a software-FMA slow path.

use crate::mlp::Activation;
use std::str::FromStr;
use std::sync::OnceLock;

/// Number of samples a tile packs per feature — the SIMD kernels'
/// logical vector width on every architecture.
pub const LANES: usize = 8;

/// Largest remainder-group size the batched SIMD forward routes through
/// the single-lane kernel instead of a zero-padded tile. A padded tile
/// costs a full eight lanes of work however few are live; per-sample
/// single-lane evaluation costs one lane each, so below this occupancy
/// the lane path is cheaper (and above it, amortization wins). Both
/// paths are bit-identical per sample, so the cutoff moves cost only.
pub const LANE_REMAINDER_CUTOFF: usize = 4;

/// Which arithmetic path the NPU hot loops run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum KernelBackend {
    /// The bit-reproducible reference path: fixed sequential
    /// accumulation order, identical to every committed result. Default.
    #[default]
    Scalar,
    /// Lane-per-sample tile kernels with relaxed accumulation order and
    /// a polynomial sigmoid; opt-in, pinned to the reference by
    /// tolerance-bounded parity tests.
    Simd,
}

impl KernelBackend {
    /// Whether the SIMD instantiation would actually use vector FMA
    /// hardware on this machine (AVX2+FMA on x86_64, NEON baseline on
    /// aarch64).
    pub fn simd_available() -> bool {
        simd_available()
    }

    /// Resolves the backend to run: `MITHRA_KERNEL` (if set to a valid
    /// backend name) overrides `requested`, and a SIMD selection on a
    /// host without vector FMA support falls back to [`Scalar`].
    ///
    /// [`Scalar`]: KernelBackend::Scalar
    pub fn resolve(requested: KernelBackend) -> KernelBackend {
        let choice = std::env::var("MITHRA_KERNEL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(requested);
        match choice {
            KernelBackend::Simd if simd_available() => KernelBackend::Simd,
            KernelBackend::Simd => KernelBackend::Scalar,
            KernelBackend::Scalar => KernelBackend::Scalar,
        }
    }

    /// The flag/JSON spelling of this backend.
    pub fn as_str(&self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Simd => "simd",
        }
    }
}

impl FromStr for KernelBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(KernelBackend::Scalar),
            "simd" => Ok(KernelBackend::Simd),
            other => Err(format!("unknown kernel backend '{other}' (scalar|simd)")),
        }
    }
}

impl std::fmt::Display for KernelBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// CPU feature names backing the SIMD instantiation on this host, for
/// benchmark reports (`host_simd` in BENCH JSON).
pub fn host_simd_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        if is_x86_feature_detected!("sse4.2") {
            features.push("sse4.2");
        }
        if is_x86_feature_detected!("avx") {
            features.push("avx");
        }
        if is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
        features
    }
    #[cfg(target_arch = "aarch64")]
    {
        vec!["neon"]
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Vec::new()
    }
}

fn simd_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
        }
        #[cfg(target_arch = "aarch64")]
        {
            true
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            false
        }
    })
}

// ---------------------------------------------------------------------------
// Lane-wise math helpers (always called from inside a tile kernel body).
// ---------------------------------------------------------------------------

/// Vectorizable polynomial `exp` on eight lanes (Cephes `expf` scheme):
/// range-reduce by `ln 2` with a round-to-nearest-even magic-number
/// trick, evaluate a degree-5 polynomial on the remainder, and rebuild
/// `2^k` by exponent-field construction. Max relative error is a few
/// ULPs — far inside the SIMD backend's parity tolerance.
#[inline(always)]
fn exp8(x: &mut [f32; LANES]) {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // The hi part of the Cody–Waite split must be written out in full:
    // 0.693359375 = 0x3F317000 is exact in f32 with 12 trailing zero
    // mantissa bits, so `kf * LN2_HI` is exact for |k| < 2^12.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // Exactly representable bound keeping `(k + 127) << 23` in range.
    const LIMIT: f32 = 87.0;
    // 1.5 * 2^23: adding and subtracting rounds to nearest even.
    const ROUND_MAGIC: f32 = 12_582_912.0;

    let mut k = [0.0f32; LANES];
    for l in 0..LANES {
        let v = x[l].clamp(-LIMIT, LIMIT);
        let t = v.mul_add(LOG2E, ROUND_MAGIC);
        let kf = t - ROUND_MAGIC;
        k[l] = kf;
        // Two-step Cody–Waite reduction keeps the remainder accurate.
        let r = kf.mul_add(-LN2_HI, v);
        x[l] = kf.mul_add(-LN2_LO, r);
    }
    for l in 0..LANES {
        let r = x[l];
        let mut p = 1.987_569_2e-4f32;
        p = p.mul_add(r, 1.398_199_9e-3);
        p = p.mul_add(r, 8.333_452e-3);
        p = p.mul_add(r, 4.166_579_6e-2);
        p = p.mul_add(r, 0.166_666_66);
        p = p.mul_add(r, 0.5);
        let poly = (p * r).mul_add(r, r) + 1.0;
        let scale = f32::from_bits((((k[l] as i32) + 127) << 23) as u32);
        x[l] = poly * scale;
    }
}

/// Lane-wise logistic sigmoid `1 / (1 + e^-x)` built on [`exp8`].
#[inline(always)]
fn sigmoid8(v: &mut [f32; LANES]) {
    let mut e = [0.0f32; LANES];
    for l in 0..LANES {
        e[l] = -v[l];
    }
    exp8(&mut e);
    for l in 0..LANES {
        v[l] = 1.0 / (1.0 + e[l]);
    }
}

/// Single-lane [`exp8`]: the identical operation sequence applied to one
/// value. Lanes are independent in `exp8`, so this is bit-identical to
/// any one lane of the eight-lane form — at one lane's cost.
#[inline(always)]
fn exp1(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // Same constants as `exp8`; see the comments there.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const LIMIT: f32 = 87.0;
    const ROUND_MAGIC: f32 = 12_582_912.0;

    let v = x.clamp(-LIMIT, LIMIT);
    let t = v.mul_add(LOG2E, ROUND_MAGIC);
    let kf = t - ROUND_MAGIC;
    let r0 = kf.mul_add(-LN2_HI, v);
    let r = kf.mul_add(-LN2_LO, r0);
    let mut p = 1.987_569_2e-4f32;
    p = p.mul_add(r, 1.398_199_9e-3);
    p = p.mul_add(r, 8.333_452e-3);
    p = p.mul_add(r, 4.166_579_6e-2);
    p = p.mul_add(r, 0.166_666_66);
    p = p.mul_add(r, 0.5);
    let poly = (p * r).mul_add(r, r) + 1.0;
    let scale = f32::from_bits((((kf as i32) + 127) << 23) as u32);
    poly * scale
}

/// Single-lane [`sigmoid8`] (bit-identical to any one lane of it).
#[inline(always)]
fn sigmoid1(v: f32) -> f32 {
    1.0 / (1.0 + exp1(-v))
}

// ---------------------------------------------------------------------------
// Tile kernel bodies.
// ---------------------------------------------------------------------------

/// Forward-evaluates one fully connected layer on a tile:
/// `out[n * LANES + lane] = act(b[n] + Σ_i w[n * fan_in + i] * input[i * LANES + lane])`.
#[inline(always)]
fn layer_forward_tile_body(
    weights: &[f32],
    biases: &[f32],
    fan_in: usize,
    activation: Activation,
    input: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(input.len(), fan_in * LANES);
    debug_assert_eq!(out.len(), biases.len() * LANES);
    for ((row, &b), out_tile) in weights
        .chunks_exact(fan_in)
        .zip(biases)
        .zip(out.chunks_exact_mut(LANES))
    {
        let mut acc = [b; LANES];
        for (&w, x) in row.iter().zip(input.chunks_exact(LANES)) {
            for l in 0..LANES {
                acc[l] = w.mul_add(x[l], acc[l]);
            }
        }
        if activation == Activation::Sigmoid {
            sigmoid8(&mut acc);
        }
        out_tile.copy_from_slice(&acc);
    }
}

/// Forward-evaluates one fully connected layer for a **single sample**
/// with the tile kernel's exact per-lane operation sequence:
/// `out[n] = act(b[n] + Σ_i w[n * fan_in + i] * input[i])` through the
/// same fused `mul_add` chain and polynomial sigmoid a tile lane runs.
/// Tile lanes are independent, so this is bit-identical to occupying one
/// lane of [`layer_forward_tile`] — at one lane's cost instead of eight.
/// Low-occupancy callers (single invocations, small batch remainders)
/// use it to keep the SIMD backend's arithmetic without paying for
/// seven padding lanes.
#[inline(always)]
fn layer_forward_lane_body(
    weights: &[f32],
    biases: &[f32],
    fan_in: usize,
    activation: Activation,
    input: &[f32],
    out: &mut [f32],
) {
    debug_assert_eq!(input.len(), fan_in);
    debug_assert_eq!(out.len(), biases.len());
    // Four output neurons advance together so four independent fused
    // chains are in flight (a single chain is FMA-latency-bound). Each
    // neuron still sees exactly its own `mul_add` sequence in row order,
    // so results stay bit-identical to the one-chain form — and to a
    // tile lane.
    let mut n = 0;
    while n + 4 <= biases.len() {
        let r0 = &weights[n * fan_in..(n + 1) * fan_in];
        let r1 = &weights[(n + 1) * fan_in..(n + 2) * fan_in];
        let r2 = &weights[(n + 2) * fan_in..(n + 3) * fan_in];
        let r3 = &weights[(n + 3) * fan_in..(n + 4) * fan_in];
        let (mut a0, mut a1, mut a2, mut a3) =
            (biases[n], biases[n + 1], biases[n + 2], biases[n + 3]);
        for (i, &x) in input.iter().enumerate() {
            a0 = r0[i].mul_add(x, a0);
            a1 = r1[i].mul_add(x, a1);
            a2 = r2[i].mul_add(x, a2);
            a3 = r3[i].mul_add(x, a3);
        }
        if activation == Activation::Sigmoid {
            out[n] = sigmoid1(a0);
            out[n + 1] = sigmoid1(a1);
            out[n + 2] = sigmoid1(a2);
            out[n + 3] = sigmoid1(a3);
        } else {
            out[n] = a0;
            out[n + 1] = a1;
            out[n + 2] = a2;
            out[n + 3] = a3;
        }
        n += 4;
    }
    for ((row, &b), out_val) in weights
        .chunks_exact(fan_in)
        .zip(biases)
        .zip(out.iter_mut())
        .skip(n)
    {
        let mut acc = b;
        for (&w, &x) in row.iter().zip(input) {
            acc = w.mul_add(x, acc);
        }
        *out_val = if activation == Activation::Sigmoid {
            sigmoid1(acc)
        } else {
            acc
        };
    }
}

/// Propagates error terms one layer down on a tile:
/// `prev_delta[i * LANES + lane] =
///  (Σ_n wt[i * fan_out + n] * delta[n * LANES + lane]) * act'(prev_act[i * LANES + lane])`,
/// where `wt` is the transposed (input-major) weight mirror.
#[inline(always)]
fn backprop_delta_tile_body(
    wt: &[f32],
    fan_out: usize,
    delta: &[f32],
    prev_act: &[f32],
    prev_activation: Activation,
    prev_delta: &mut [f32],
) {
    debug_assert_eq!(delta.len(), fan_out * LANES);
    debug_assert_eq!(prev_delta.len(), prev_act.len());
    for ((column, act), out_tile) in wt
        .chunks_exact(fan_out)
        .zip(prev_act.chunks_exact(LANES))
        .zip(prev_delta.chunks_exact_mut(LANES))
    {
        let mut acc = [0.0f32; LANES];
        for (&w, d) in column.iter().zip(delta.chunks_exact(LANES)) {
            for l in 0..LANES {
                acc[l] = w.mul_add(d[l], acc[l]);
            }
        }
        match prev_activation {
            Activation::Sigmoid => {
                for l in 0..LANES {
                    out_tile[l] = acc[l] * (act[l] * (1.0 - act[l]));
                }
            }
            Activation::Linear => out_tile.copy_from_slice(&acc),
        }
    }
}

/// Accumulates one tile's gradient contributions into lane-resolved
/// accumulators: `w_grad8[(n * fan_in + i) * LANES + lane] +=
/// delta[n * LANES + lane] * input[i * LANES + lane]` and
/// `b_grad8[n * LANES + lane] += delta[n * LANES + lane]`. Padding lanes
/// carry zero deltas, so they contribute exact zeros.
#[inline(always)]
fn grad_accum_tile_body(
    delta: &[f32],
    fan_in: usize,
    input: &[f32],
    w_grad8: &mut [f32],
    b_grad8: &mut [f32],
) {
    debug_assert_eq!(input.len(), fan_in * LANES);
    debug_assert_eq!(w_grad8.len(), delta.len() * fan_in);
    debug_assert_eq!(b_grad8.len(), delta.len());
    for ((d, brow), wrows) in delta
        .chunks_exact(LANES)
        .zip(b_grad8.chunks_exact_mut(LANES))
        .zip(w_grad8.chunks_exact_mut(fan_in * LANES))
    {
        for l in 0..LANES {
            brow[l] += d[l];
        }
        for (x, g) in input.chunks_exact(LANES).zip(wrows.chunks_exact_mut(LANES)) {
            for l in 0..LANES {
                g[l] = d[l].mul_add(x[l], g[l]);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Per-ISA instantiations and dispatchers. The AVX2+FMA instantiations
// execute the exact same fused operations as the generic bodies, so
// which one runs never changes results — only throughput.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn layer_forward_tile(
        weights: &[f32],
        biases: &[f32],
        fan_in: usize,
        activation: Activation,
        input: &[f32],
        out: &mut [f32],
    ) {
        layer_forward_tile_body(weights, biases, fan_in, activation, input, out);
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn layer_forward_lane(
        weights: &[f32],
        biases: &[f32],
        fan_in: usize,
        activation: Activation,
        input: &[f32],
        out: &mut [f32],
    ) {
        layer_forward_lane_body(weights, biases, fan_in, activation, input, out);
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn backprop_delta_tile(
        wt: &[f32],
        fan_out: usize,
        delta: &[f32],
        prev_act: &[f32],
        prev_activation: Activation,
        prev_delta: &mut [f32],
    ) {
        backprop_delta_tile_body(wt, fan_out, delta, prev_act, prev_activation, prev_delta);
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn grad_accum_tile(
        delta: &[f32],
        fan_in: usize,
        input: &[f32],
        w_grad8: &mut [f32],
        b_grad8: &mut [f32],
    ) {
        grad_accum_tile_body(delta, fan_in, input, w_grad8, b_grad8);
    }
}

pub(crate) fn layer_forward_tile(
    weights: &[f32],
    biases: &[f32],
    fan_in: usize,
    activation: Activation,
    input: &[f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // SAFETY: `simd_available` verified AVX2 and FMA at runtime.
        unsafe { avx2::layer_forward_tile(weights, biases, fan_in, activation, input, out) };
        return;
    }
    layer_forward_tile_body(weights, biases, fan_in, activation, input, out);
}

pub(crate) fn layer_forward_lane(
    weights: &[f32],
    biases: &[f32],
    fan_in: usize,
    activation: Activation,
    input: &[f32],
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // SAFETY: `simd_available` verified AVX2 and FMA at runtime.
        unsafe { avx2::layer_forward_lane(weights, biases, fan_in, activation, input, out) };
        return;
    }
    layer_forward_lane_body(weights, biases, fan_in, activation, input, out);
}

pub(crate) fn backprop_delta_tile(
    wt: &[f32],
    fan_out: usize,
    delta: &[f32],
    prev_act: &[f32],
    prev_activation: Activation,
    prev_delta: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // SAFETY: `simd_available` verified AVX2 and FMA at runtime.
        unsafe {
            avx2::backprop_delta_tile(wt, fan_out, delta, prev_act, prev_activation, prev_delta)
        };
        return;
    }
    backprop_delta_tile_body(wt, fan_out, delta, prev_act, prev_activation, prev_delta);
}

pub(crate) fn grad_accum_tile(
    delta: &[f32],
    fan_in: usize,
    input: &[f32],
    w_grad8: &mut [f32],
    b_grad8: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if simd_available() {
        // SAFETY: `simd_available` verified AVX2 and FMA at runtime.
        unsafe { avx2::grad_accum_tile(delta, fan_in, input, w_grad8, b_grad8) };
        return;
    }
    grad_accum_tile_body(delta, fan_in, input, w_grad8, b_grad8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_parses_and_displays() {
        assert_eq!("scalar".parse(), Ok(KernelBackend::Scalar));
        assert_eq!("simd".parse(), Ok(KernelBackend::Simd));
        assert!("avx2".parse::<KernelBackend>().is_err());
        assert_eq!(KernelBackend::Simd.to_string(), "simd");
        assert_eq!(KernelBackend::default(), KernelBackend::Scalar);
    }

    #[test]
    fn env_override_wins_over_requested() {
        // Sole test that touches MITHRA_KERNEL in this binary, so the
        // set/remove pair cannot race another reader.
        std::env::set_var("MITHRA_KERNEL", "scalar");
        assert_eq!(
            KernelBackend::resolve(KernelBackend::Simd),
            KernelBackend::Scalar
        );
        std::env::set_var("MITHRA_KERNEL", "not-a-backend");
        assert_eq!(
            KernelBackend::resolve(KernelBackend::Scalar),
            KernelBackend::Scalar
        );
        std::env::remove_var("MITHRA_KERNEL");
        let resolved = KernelBackend::resolve(KernelBackend::Simd);
        if KernelBackend::simd_available() {
            assert_eq!(resolved, KernelBackend::Simd);
        } else {
            assert_eq!(resolved, KernelBackend::Scalar);
        }
    }

    #[test]
    fn exp8_tracks_reference_exp() {
        let mut worst = 0.0f32;
        for i in -870..=870 {
            let x = i as f32 / 10.0;
            let mut tile = [x; LANES];
            exp8(&mut tile);
            let reference = x.exp();
            for &got in &tile {
                let rel = if reference == 0.0 {
                    got.abs()
                } else {
                    ((got - reference) / reference).abs()
                };
                worst = worst.max(rel);
            }
        }
        assert!(worst < 1e-6, "worst relative error {worst}");
    }

    #[test]
    fn sigmoid8_matches_scalar_sigmoid() {
        for i in -160..=160 {
            let x = i as f32 / 4.0;
            let mut tile = [x; LANES];
            sigmoid8(&mut tile);
            let reference = Activation::Sigmoid.apply(x);
            for &got in &tile {
                assert!(
                    (got - reference).abs() < 1e-6,
                    "sigmoid({x}) = {got}, reference {reference}"
                );
            }
        }
    }

    #[test]
    fn forward_tile_lanes_are_independent() {
        // One sample alone in a tile must equal the same sample packed
        // with seven arbitrary neighbours — the property the batched
        // forward's bit-identity rests on.
        let fan_in = 3;
        let weights: Vec<f32> = (0..2 * fan_in).map(|i| 0.3 - 0.1 * i as f32).collect();
        let biases = [0.2f32, -0.4];
        let sample = [0.7f32, -1.3, 0.5];

        let mut lone = vec![0.0f32; fan_in * LANES];
        for (i, &v) in sample.iter().enumerate() {
            lone[i * LANES] = v;
        }
        let mut packed = vec![0.0f32; fan_in * LANES];
        for i in 0..fan_in {
            for l in 0..LANES {
                packed[i * LANES + l] = 10.0 * l as f32 + i as f32;
            }
            packed[i * LANES] = sample[i];
        }
        let mut out_lone = vec![0.0f32; 2 * LANES];
        let mut out_packed = vec![0.0f32; 2 * LANES];
        layer_forward_tile(
            &weights,
            &biases,
            fan_in,
            Activation::Sigmoid,
            &lone,
            &mut out_lone,
        );
        layer_forward_tile(
            &weights,
            &biases,
            fan_in,
            Activation::Sigmoid,
            &packed,
            &mut out_packed,
        );
        for n in 0..2 {
            assert_eq!(
                out_lone[n * LANES].to_bits(),
                out_packed[n * LANES].to_bits()
            );
        }
    }
}
