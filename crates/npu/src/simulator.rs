//! A cycle-stepped execution engine for the PE array.
//!
//! The paper "augmented MARSSx86 with a cycle-accurate NPU simulator"
//! (§V-A). This module is that component: it steps one invocation through
//! the datapath — input streaming into the element latch, wave-scheduled
//! multiply-accumulates on the PEs, sigmoid lookups, output drain — one
//! cycle at a time, producing both the numerical result and a cycle-exact
//! trace. The analytical model in [`crate::pe`] is validated against it
//! (they must agree exactly; a test enforces this for every paper
//! topology).

use crate::fifo::Fifo;
use crate::mlp::Mlp;
use crate::pe::PeArray;
use crate::{NpuError, Result};

/// Per-layer slice of an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTrace {
    /// Cycles this layer occupied the PE array.
    pub cycles: u64,
    /// Waves the layer was scheduled in.
    pub waves: u64,
    /// MAC operations issued.
    pub macs: u64,
    /// PE-cycles that did useful MAC work (utilization numerator).
    pub busy_pe_cycles: u64,
}

/// The cycle-exact record of one invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionTrace {
    /// Cycles spent streaming inputs from the FIFO into the array.
    pub input_cycles: u64,
    /// Per-layer execution.
    pub layers: Vec<LayerTrace>,
    /// Cycles spent draining outputs back to the FIFO.
    pub output_cycles: u64,
}

impl ExecutionTrace {
    /// Total invocation cycles.
    pub fn total_cycles(&self) -> u64 {
        self.input_cycles + self.layers.iter().map(|l| l.cycles).sum::<u64>() + self.output_cycles
    }

    /// PE-array utilization over the compute phase: busy PE-cycles over
    /// available PE-cycles.
    pub fn utilization(&self, pe_count: usize) -> f64 {
        let busy: u64 = self.layers.iter().map(|l| l.busy_pe_cycles).sum();
        let available: u64 = self.layers.iter().map(|l| l.cycles).sum::<u64>() * pe_count as u64;
        if available == 0 {
            0.0
        } else {
            busy as f64 / available as f64
        }
    }
}

/// The cycle-stepped engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleSimulator {
    pe: PeArray,
}

impl CycleSimulator {
    /// An engine over the default 8-PE array.
    pub fn new() -> Self {
        Self {
            pe: PeArray::npu_default(),
        }
    }

    /// An engine over a custom PE array.
    pub fn with_pe_array(pe: PeArray) -> Self {
        Self { pe }
    }

    /// Executes one invocation: drains `input.len()` elements from a
    /// freshly filled input FIFO, steps the network, pushes outputs to
    /// the output FIFO, and returns the outputs with the trace.
    ///
    /// The numerical result is bit-identical to [`Mlp::run`] — the engine
    /// reorders nothing, it only accounts cycles.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `input` does not match
    /// the network's input layer.
    pub fn execute(&self, mlp: &Mlp, input: &[f32]) -> Result<(Vec<f32>, ExecutionTrace)> {
        let topology = mlp.topology();
        if input.len() != topology.inputs() {
            return Err(NpuError::DimensionMismatch {
                expected: topology.inputs(),
                actual: input.len(),
            });
        }

        // Input streaming: one element per stream cycle through the FIFO.
        let mut in_fifo = Fifo::new(input.len().max(1));
        for &v in input {
            in_fifo.enqueue(v)?;
        }
        let mut current: Vec<f32> = Vec::with_capacity(input.len());
        let mut input_cycles = 0u64;
        while let Ok(v) = in_fifo.dequeue() {
            current.push(v);
            input_cycles += self.pe.input_stream_cycles;
        }

        // Layer-by-layer wave execution.
        let mut layers = Vec::with_capacity(mlp.layers().len());
        let mut next: Vec<f32> = Vec::new();
        for layer_idx in 0..mlp.layers().len() {
            let (fan_in, neurons, activation) = {
                let l = &mlp.layers()[layer_idx];
                (l.fan_in, l.biases.len(), l.activation)
            };
            let mut cycles = 0u64;
            let mut busy = 0u64;
            let mut waves = 0u64;
            next.clear();
            for wave_start in (0..neurons).step_by(self.pe.pe_count) {
                waves += 1;
                let wave_neurons = (neurons - wave_start).min(self.pe.pe_count);
                // Every PE in the wave steps through fan_in MACs in
                // lockstep; the wave completes after the MACs plus the
                // sigmoid/writeback overhead.
                let mut accumulators = vec![0.0f32; wave_neurons];
                for (o, acc) in accumulators.iter_mut().enumerate() {
                    let n = wave_start + o;
                    *acc = mlp.layers()[layer_idx].biases[n];
                }
                for (step, &x) in current.iter().enumerate().take(fan_in) {
                    for (o, acc) in accumulators.iter_mut().enumerate() {
                        let n = wave_start + o;
                        let w = mlp.layers()[layer_idx].weights[n * fan_in + step];
                        *acc += w * x;
                        busy += 1;
                    }
                    cycles += self.pe.mac_cycles;
                }
                cycles += self.pe.neuron_overhead_cycles;
                for acc in accumulators {
                    next.push(activation.apply(acc));
                }
            }
            layers.push(LayerTrace {
                cycles,
                waves,
                macs: (fan_in * neurons) as u64,
                busy_pe_cycles: busy,
            });
            std::mem::swap(&mut current, &mut next);
        }

        // Output drain.
        let mut out_fifo = Fifo::new(current.len().max(1));
        let mut output_cycles = 0u64;
        for &v in &current {
            out_fifo.enqueue(v)?;
            output_cycles += self.pe.output_stream_cycles;
        }
        let mut outputs = Vec::with_capacity(current.len());
        while let Ok(v) = out_fifo.dequeue() {
            outputs.push(v);
        }

        Ok((
            outputs,
            ExecutionTrace {
                input_cycles,
                layers,
                output_cycles,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Activation;
    use crate::topology::Topology;

    fn mlp_for(shape: &str) -> Mlp {
        let t: Topology = shape.parse().unwrap();
        let weights: Vec<f32> = (0..t.weight_count())
            .map(|i| ((i * 31 % 97) as f32 / 97.0) - 0.5)
            .collect();
        let biases: Vec<f32> = (0..t.bias_count())
            .map(|i| ((i * 17 % 53) as f32 / 53.0) - 0.25)
            .collect();
        Mlp::from_parameters(t, &weights, &biases, Activation::Linear).unwrap()
    }

    const PAPER_TOPOLOGIES: [&str; 6] = [
        "6->8->8->1",
        "1->4->4->2",
        "2->8->2",
        "18->32->8->2",
        "64->16->64",
        "9->8->1",
    ];

    #[test]
    fn outputs_bit_identical_to_functional_model() {
        let sim = CycleSimulator::new();
        for shape in PAPER_TOPOLOGIES {
            let mlp = mlp_for(shape);
            let input: Vec<f32> = (0..mlp.topology().inputs())
                .map(|i| i as f32 * 0.07 - 0.5)
                .collect();
            let (stepped, _) = sim.execute(&mlp, &input).unwrap();
            let functional = mlp.run(&input).unwrap();
            assert_eq!(stepped, functional, "{shape}");
        }
    }

    #[test]
    fn cycle_counts_match_analytical_model_exactly() {
        // The headline validation: the analytical PeArray model and the
        // stepped engine agree on every paper topology.
        let sim = CycleSimulator::new();
        let pe = PeArray::npu_default();
        for shape in PAPER_TOPOLOGIES {
            let mlp = mlp_for(shape);
            let input = vec![0.1f32; mlp.topology().inputs()];
            let (_, trace) = sim.execute(&mlp, &input).unwrap();
            assert_eq!(
                trace.total_cycles(),
                pe.invocation_cycles(mlp.topology()),
                "cycle mismatch for {shape}"
            );
        }
    }

    #[test]
    fn per_layer_waves_match_schedule() {
        let sim = CycleSimulator::new();
        let mlp = mlp_for("18->32->8->2");
        let input = vec![0.0f32; 18];
        let (_, trace) = sim.execute(&mlp, &input).unwrap();
        assert_eq!(trace.layers.len(), 3);
        assert_eq!(trace.layers[0].waves, 4); // 32 neurons / 8 PEs
        assert_eq!(trace.layers[1].waves, 1);
        assert_eq!(trace.layers[2].waves, 1);
        assert_eq!(trace.layers[0].macs, 18 * 32);
    }

    #[test]
    fn utilization_full_when_waves_divide_evenly() {
        let sim = CycleSimulator::new();
        // 8 neurons on 8 PEs: every compute cycle keeps all PEs busy
        // except the per-wave overhead cycles.
        let mlp = mlp_for("6->8->8->1");
        let input = vec![0.2f32; 6];
        let (_, trace) = sim.execute(&mlp, &input).unwrap();
        let u = trace.utilization(8);
        assert!(u > 0.4 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn narrow_layers_waste_pes() {
        let sim = CycleSimulator::new();
        // A 1-neuron layer uses 1 of 8 PEs: utilization must be low.
        let mlp = mlp_for("9->8->1");
        let input = vec![0.2f32; 9];
        let (_, trace) = sim.execute(&mlp, &input).unwrap();
        let last = trace.layers.last().unwrap();
        assert!(last.busy_pe_cycles < last.cycles * 8);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let sim = CycleSimulator::new();
        let mlp = mlp_for("2->8->2");
        assert!(sim.execute(&mlp, &[1.0]).is_err());
    }
}
