//! Fixed-point datapath: what the NPU hardware actually computes.
//!
//! The hardware PEs use fixed-point multiply-accumulate units and a
//! lookup-table sigmoid rather than IEEE floating point. This module models
//! that: values are Q-format signed integers and the sigmoid is a uniform
//! 256-entry LUT with linear interpolation. Quantization is one of the
//! sources of the accelerator's approximation error, so profiling through
//! [`FixedMlp`] exposes error behaviour the f32 path would hide.

use crate::fault::FaultSite;
use crate::mlp::{Activation, Mlp};
use crate::{NpuError, Result};

/// A Q-format signed fixed-point configuration: `frac_bits` fractional bits
/// in an `i32` container (accumulation in `i64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QFormat {
    frac_bits: u32,
}

impl QFormat {
    /// Creates a Q-format with the given number of fractional bits
    /// (1..=24; the NPU uses Q16.16-like formats).
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidTopology`] (reused as the generic
    /// configuration error) if `frac_bits` is out of range.
    pub fn new(frac_bits: u32) -> Result<Self> {
        if !(1..=24).contains(&frac_bits) {
            return Err(NpuError::InvalidTopology {
                reason: "fixed-point fractional bits must be in 1..=24",
            });
        }
        Ok(Self { frac_bits })
    }

    /// Number of fractional bits.
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Quantizes an `f32` to this format (round-to-nearest, saturating).
    pub fn quantize(&self, v: f32) -> i32 {
        let scaled = f64::from(v) * (1i64 << self.frac_bits) as f64;
        scaled
            .round()
            .clamp(f64::from(i32::MIN), f64::from(i32::MAX)) as i32
    }

    /// Converts a fixed-point value back to `f32`.
    pub fn dequantize(&self, v: i32) -> f32 {
        (f64::from(v) / (1i64 << self.frac_bits) as f64) as f32
    }

    /// Multiplies two fixed-point values, keeping the format.
    fn mul(&self, a: i32, b: i32) -> i64 {
        (i64::from(a) * i64::from(b)) >> self.frac_bits
    }

    fn saturate(&self, v: i64) -> i32 {
        v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32
    }
}

/// The hardware sigmoid: a 256-entry LUT over `[-8, 8]` with linear
/// interpolation, saturating outside the covered range.
#[derive(Debug, Clone)]
pub struct SigmoidLut {
    table: Vec<f32>,
    range: f32,
}

impl SigmoidLut {
    /// Builds the LUT with `entries` samples over `[-range, range]`.
    pub fn new(entries: usize, range: f32) -> Self {
        let entries = entries.max(2);
        let table = (0..entries)
            .map(|i| {
                let x = -range + 2.0 * range * i as f32 / (entries - 1) as f32;
                1.0 / (1.0 + (-x).exp())
            })
            .collect();
        Self { table, range }
    }

    /// The default hardware configuration: 256 entries over `[-8, 8]`.
    pub fn hardware_default() -> Self {
        Self::new(256, 8.0)
    }

    /// Evaluates the LUT sigmoid at `x`.
    pub fn eval(&self, x: f32) -> f32 {
        if x <= -self.range {
            return self.table[0];
        }
        if x >= self.range {
            return self.table[self.table.len() - 1];
        }
        let pos = (x + self.range) / (2.0 * self.range) * (self.table.len() - 1) as f32;
        let idx = pos.floor() as usize;
        let frac = pos - idx as f32;
        let hi = (idx + 1).min(self.table.len() - 1);
        self.table[idx] * (1.0 - frac) + self.table[hi] * frac
    }
}

impl FaultSite for SigmoidLut {
    /// Entry `i` occupies bits `32·i .. 32·(i+1)` of its IEEE-754
    /// representation.
    fn fault_bits(&self) -> u64 {
        self.table.len() as u64 * 32
    }

    /// A flip in the exponent or sign bits can turn an entry into a huge
    /// value, an infinity or a NaN — exactly the corrupted outputs the
    /// quality metrics' NaN policy has to absorb.
    fn flip_bit(&mut self, index: u64) {
        let entry = (index / 32) as usize;
        let bit = (index % 32) as u32;
        self.table[entry] = f32::from_bits(self.table[entry].to_bits() ^ (1 << bit));
    }
}

/// A quantized MLP evaluated entirely in fixed point.
///
/// # Example
///
/// ```
/// # use mithra_npu::fixed::{FixedMlp, QFormat};
/// # use mithra_npu::mlp::{Activation, Mlp};
/// # use mithra_npu::topology::Topology;
/// let t = Topology::new(&[1, 1])?;
/// let mlp = Mlp::from_parameters(t, &[0.5], &[0.25], Activation::Linear)?;
/// let fixed = FixedMlp::quantize(&mlp, QFormat::new(16)?);
/// let out = fixed.run(&[1.0])?;
/// assert!((out[0] - 0.75).abs() < 1e-3);
/// # Ok::<(), mithra_npu::NpuError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FixedMlp {
    format: QFormat,
    lut: SigmoidLut,
    layers: Vec<FixedLayer>,
    inputs: usize,
}

#[derive(Debug, Clone)]
struct FixedLayer {
    weights: Vec<i32>,
    biases: Vec<i32>,
    fan_in: usize,
    activation: Activation,
}

/// Reusable layer buffers for allocation-free fixed-point inference
/// ([`FixedMlp::run_into`]).
#[derive(Debug, Clone, Default)]
pub struct FixedScratch {
    cur: Vec<i32>,
    next: Vec<i32>,
}

impl FixedScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch presized for `fixed`, so no buffer ever
    /// reallocates once construction returns.
    pub fn for_network(fixed: &FixedMlp) -> Self {
        let widest = fixed
            .layers
            .iter()
            .map(|l| l.biases.len())
            .chain([fixed.inputs])
            .max()
            .unwrap_or(0);
        Self {
            cur: Vec::with_capacity(widest),
            next: Vec::with_capacity(widest),
        }
    }
}

impl FixedMlp {
    /// Quantizes a trained floating-point network into this datapath.
    pub fn quantize(mlp: &Mlp, format: QFormat) -> Self {
        let layers = mlp
            .layers()
            .iter()
            .map(|l| FixedLayer {
                weights: l.weights.iter().map(|&w| format.quantize(w)).collect(),
                biases: l.biases.iter().map(|&b| format.quantize(b)).collect(),
                fan_in: l.fan_in,
                activation: l.activation,
            })
            .collect();
        Self {
            format,
            lut: SigmoidLut::hardware_default(),
            layers,
            inputs: mlp.topology().inputs(),
        }
    }

    /// The fixed-point format in use.
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Runs a forward pass in fixed point; inputs and outputs are `f32` at
    /// the interface (the FIFOs carry quantized values; conversion happens
    /// at the boundary).
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] on input length mismatch.
    pub fn run(&self, input: &[f32]) -> Result<Vec<f32>> {
        let mut out = Vec::new();
        self.run_into(input, &mut out, &mut FixedScratch::new())?;
        Ok(out)
    }

    /// [`run`](Self::run) through caller-owned buffers — the hot-path
    /// form the fault re-profiling loop uses, performing no allocation
    /// with a presized [`FixedScratch`].
    ///
    /// The accumulation interleaves four partial sums per neuron, but
    /// integer addition is associative, so — unlike the float datapath —
    /// this is bit-exact against the plain sequential sum on every
    /// backend and needs no opt-in.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] on input length mismatch.
    pub fn run_into(
        &self,
        input: &[f32],
        output: &mut Vec<f32>,
        scratch: &mut FixedScratch,
    ) -> Result<()> {
        if input.len() != self.inputs {
            return Err(NpuError::DimensionMismatch {
                expected: self.inputs,
                actual: input.len(),
            });
        }
        scratch.cur.clear();
        scratch
            .cur
            .extend(input.iter().map(|&v| self.format.quantize(v)));
        for layer in &self.layers {
            scratch.next.clear();
            for n in 0..layer.biases.len() {
                let row = &layer.weights[n * layer.fan_in..(n + 1) * layer.fan_in];
                let mut accs = [0i64, 0, 0, 0];
                let mut quads = row.chunks_exact(4);
                let mut inputs = scratch.cur.chunks_exact(4);
                for (w, x) in quads.by_ref().zip(inputs.by_ref()) {
                    for k in 0..4 {
                        accs[k] += self.format.mul(w[k], x[k]);
                    }
                }
                let mut acc = i64::from(layer.biases[n]) + accs[0] + accs[1] + accs[2] + accs[3];
                for (w, x) in quads.remainder().iter().zip(inputs.remainder()) {
                    acc += self.format.mul(*w, *x);
                }
                let acc = self.format.saturate(acc);
                let v = match layer.activation {
                    Activation::Sigmoid => self
                        .format
                        .quantize(self.lut.eval(self.format.dequantize(acc))),
                    Activation::Linear => acc,
                };
                scratch.next.push(v);
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        output.clear();
        output.extend(scratch.cur.iter().map(|&v| self.format.dequantize(v)));
        Ok(())
    }

    /// The sigmoid LUT, for fault plans corrupting its entries.
    pub fn lut_mut(&mut self) -> &mut SigmoidLut {
        &mut self.lut
    }
}

impl FaultSite for FixedMlp {
    /// Layer by layer, each layer's weight words then its bias words, 32
    /// bits per fixed-point word — the order the configuration FIFO
    /// streams them into the weight buffers.
    fn fault_bits(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (l.weights.len() + l.biases.len()) as u64 * 32)
            .sum()
    }

    fn flip_bit(&mut self, index: u64) {
        let mut word = (index / 32) as usize;
        let bit = (index % 32) as u32;
        for layer in &mut self.layers {
            if word < layer.weights.len() {
                layer.weights[word] ^= 1 << bit;
                return;
            }
            word -= layer.weights.len();
            if word < layer.biases.len() {
                layer.biases[word] ^= 1 << bit;
                return;
            }
            word -= layer.biases.len();
        }
        panic!("fault bit index out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn qformat_round_trip() {
        let q = QFormat::new(16).unwrap();
        for &v in &[0.0f32, 1.0, -1.0, std::f32::consts::PI, -127.5] {
            let back = q.dequantize(q.quantize(v));
            assert!((back - v).abs() < 1e-4, "{v} -> {back}");
        }
    }

    #[test]
    fn qformat_saturates() {
        let q = QFormat::new(16).unwrap();
        assert_eq!(q.quantize(1e9), i32::MAX);
        assert_eq!(q.quantize(-1e9), i32::MIN);
    }

    #[test]
    fn qformat_rejects_bad_widths() {
        assert!(QFormat::new(0).is_err());
        assert!(QFormat::new(30).is_err());
    }

    #[test]
    fn lut_matches_sigmoid() {
        let lut = SigmoidLut::hardware_default();
        for i in -80..=80 {
            let x = i as f32 / 10.0;
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!((lut.eval(x) - exact).abs() < 2e-3, "x = {x}");
        }
    }

    #[test]
    fn lut_saturates_outside_range() {
        let lut = SigmoidLut::hardware_default();
        assert!((lut.eval(100.0) - 1.0).abs() < 1e-3);
        assert!(lut.eval(-100.0) < 1e-3);
    }

    #[test]
    fn fixed_tracks_float_closely() {
        // A small trained-looking network: fixed-point output should be
        // within quantization distance of the float path.
        let t = Topology::new(&[2, 3, 1]).unwrap();
        let weights = [0.5, -0.25, 0.75, 0.1, -0.6, 0.33, 1.0, -1.0, 0.5];
        let biases = [0.05, -0.1, 0.2, 0.0];
        let mlp = Mlp::from_parameters(t, &weights, &biases, Activation::Linear).unwrap();
        let fixed = FixedMlp::quantize(&mlp, QFormat::new(16).unwrap());
        for &input in &[[0.3f32, 0.7f32], [1.0, -1.0], [0.0, 0.0]] {
            let f = mlp.run(&input).unwrap()[0];
            let q = fixed.run(&input).unwrap()[0];
            assert!((f - q).abs() < 5e-3, "float {f} vs fixed {q}");
        }
    }

    #[test]
    fn coarse_quantization_introduces_error() {
        let t = Topology::new(&[1, 1]).unwrap();
        let mlp = Mlp::from_parameters(t, &[0.123456], &[0.0], Activation::Linear).unwrap();
        let coarse = FixedMlp::quantize(&mlp, QFormat::new(4).unwrap());
        let fine = FixedMlp::quantize(&mlp, QFormat::new(20).unwrap());
        let exact = mlp.run(&[1.0]).unwrap()[0];
        let coarse_err = (coarse.run(&[1.0]).unwrap()[0] - exact).abs();
        let fine_err = (fine.run(&[1.0]).unwrap()[0] - exact).abs();
        assert!(coarse_err > fine_err);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let t = Topology::new(&[2, 1]).unwrap();
        let mlp = Mlp::from_parameters(t, &[1.0, 1.0], &[0.0], Activation::Linear).unwrap();
        let fixed = FixedMlp::quantize(&mlp, QFormat::new(12).unwrap());
        assert!(fixed.run(&[1.0]).is_err());
    }

    fn small_fixed() -> FixedMlp {
        let t = Topology::new(&[2, 3, 1]).unwrap();
        let weights = [0.5, -0.25, 0.75, 0.1, -0.6, 0.33, 1.0, -1.0, 0.5];
        let biases = [0.05, -0.1, 0.2, 0.0];
        let mlp = Mlp::from_parameters(t, &weights, &biases, Activation::Linear).unwrap();
        FixedMlp::quantize(&mlp, QFormat::new(16).unwrap())
    }

    #[test]
    fn fault_bits_count_all_parameter_words() {
        let fixed = small_fixed();
        // 9 weights + 4 biases, 32 bits each.
        assert_eq!(fixed.fault_bits(), 13 * 32);
    }

    #[test]
    fn weight_flip_changes_output_and_is_reversible() {
        let mut fixed = small_fixed();
        let clean = fixed.run(&[0.3, 0.7]).unwrap();
        // Bit 20 of the first weight word: an integer-part bit in Q16.
        fixed.flip_bit(20);
        let faulted = fixed.run(&[0.3, 0.7]).unwrap();
        assert_ne!(clean, faulted, "a high weight bit must move the output");
        fixed.flip_bit(20);
        let restored = fixed.run(&[0.3, 0.7]).unwrap();
        assert_eq!(clean, restored, "double flip must restore bit-exactly");
    }

    #[test]
    fn bias_region_is_addressable() {
        let mut fixed = small_fixed();
        // Last word is the output bias; flip its sign-adjacent high bit.
        let last_word_bit = fixed.fault_bits() - 32 + 24;
        let clean = fixed.run(&[0.3, 0.7]).unwrap();
        fixed.flip_bit(last_word_bit);
        assert_ne!(clean, fixed.run(&[0.3, 0.7]).unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fault_bit_panics() {
        let mut fixed = small_fixed();
        let beyond = fixed.fault_bits();
        fixed.flip_bit(beyond);
    }

    #[test]
    fn lut_flip_can_produce_nan() {
        let mut lut = SigmoidLut::hardware_default();
        // Set every exponent bit of entry 0: 0x7F80.0000 over a small
        // mantissa yields NaN or infinity.
        for bit in 23..31 {
            if lut.eval(-100.0).to_bits() >> bit & 1 == 0 {
                lut.flip_bit(bit);
            }
        }
        assert!(!lut.eval(-100.0).is_finite());
    }

    #[test]
    fn lut_flip_is_reversible() {
        let mut lut = SigmoidLut::hardware_default();
        let clean = lut.eval(0.37);
        lut.flip_bit(128 * 32 + 30); // exponent bit of a mid-table entry
        lut.flip_bit(128 * 32 + 30);
        assert_eq!(lut.eval(0.37).to_bits(), clean.to_bits());
    }
}
