//! The processing-element array schedule.
//!
//! The NPU datapath is eight PEs (paper §V-A). A layer with `n` neurons of
//! fan-in `f` is computed in waves: each wave assigns one neuron per PE,
//! and a neuron takes `f` MAC cycles plus a fixed sigmoid/writeback
//! overhead. Layers are sequential (each consumes the previous one's
//! outputs), so the invocation latency is the sum of per-layer wave costs
//! plus input/output streaming.

use crate::topology::Topology;

/// Scheduling parameters of the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeArray {
    /// Number of processing elements computing neurons in parallel.
    pub pe_count: usize,
    /// Cycles per multiply-accumulate step.
    pub mac_cycles: u64,
    /// Fixed cycles per neuron for the sigmoid LUT lookup and writeback.
    pub neuron_overhead_cycles: u64,
    /// Cycles to stream one input element into the array.
    pub input_stream_cycles: u64,
    /// Cycles to stream one output element back to the queue.
    pub output_stream_cycles: u64,
}

impl PeArray {
    /// The NPU configuration used throughout the paper: 8 PEs,
    /// single-cycle MACs, 2-cycle neuron overhead, single-cycle streaming.
    pub fn npu_default() -> Self {
        Self {
            pe_count: 8,
            mac_cycles: 1,
            neuron_overhead_cycles: 2,
            input_stream_cycles: 1,
            output_stream_cycles: 1,
        }
    }

    /// Cycles to evaluate one layer of `neurons` neurons with `fan_in`
    /// inputs each.
    pub fn layer_cycles(&self, fan_in: usize, neurons: usize) -> u64 {
        let waves = neurons.div_ceil(self.pe_count) as u64;
        waves * (fan_in as u64 * self.mac_cycles + self.neuron_overhead_cycles)
    }

    /// Total cycles for one forward pass of `topology`, including input
    /// and output streaming.
    pub fn invocation_cycles(&self, topology: &Topology) -> u64 {
        let shape = topology.layers();
        let mut cycles = shape[0] as u64 * self.input_stream_cycles;
        for w in shape.windows(2) {
            cycles += self.layer_cycles(w[0], w[1]);
        }
        cycles += topology.outputs() as u64 * self.output_stream_cycles;
        cycles
    }
}

impl Default for PeArray {
    fn default() -> Self {
        Self::npu_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_wave_layer() {
        let pe = PeArray::npu_default();
        // 8 neurons on 8 PEs: one wave of (6 MACs + 2 overhead) = 8 cycles.
        assert_eq!(pe.layer_cycles(6, 8), 8);
    }

    #[test]
    fn multi_wave_layer() {
        let pe = PeArray::npu_default();
        // 32 neurons on 8 PEs: 4 waves of (18 + 2) = 80 cycles.
        assert_eq!(pe.layer_cycles(18, 32), 80);
    }

    #[test]
    fn invocation_cycles_sum_layers_and_streaming() {
        let pe = PeArray::npu_default();
        let t = Topology::new(&[2, 8, 2]).unwrap();
        // in-stream 2 + layer(2,8)=4 + layer(8,2)=10 + out-stream 2 = 18.
        assert_eq!(pe.invocation_cycles(&t), 2 + 4 + 10 + 2);
    }

    #[test]
    fn bigger_network_costs_more() {
        let pe = PeArray::npu_default();
        let small = Topology::new(&[2, 4, 1]).unwrap();
        let big = Topology::new(&[18, 32, 8, 2]).unwrap();
        assert!(pe.invocation_cycles(&big) > pe.invocation_cycles(&small));
    }

    #[test]
    fn jmeint_topology_cost_matches_hand_count() {
        let pe = PeArray::npu_default();
        let t = Topology::new(&[18, 32, 8, 2]).unwrap();
        // in 18, L1: 4 waves * 20 = 80, L2: 1 wave * 34 = 34,
        // L3: 1 wave * 10 = 10, out 2 -> 144.
        assert_eq!(pe.invocation_cycles(&t), 18 + 80 + 34 + 10 + 2);
    }
}
