//! Fault-injection hooks: the contract corruptible hardware state exposes.
//!
//! Soft errors in the accelerator substrate — an SRAM upset in a weight
//! buffer, a flipped sigmoid-LUT entry, a corrupted classifier-table bit —
//! are all single-bit events in some addressable store. [`FaultSite`] gives
//! every such store a uniform surface: a bit count and a bit-flip
//! operation. A fault plan (in `mithra-sim`) draws bit indices from a
//! seeded RNG and applies them to *copies* of the compiled artifacts, so
//! production paths carry no per-invocation injection checks and pay
//! nothing when no plan is armed.
//!
//! Flipping is an involution: flipping the same bit twice restores the
//! site bit-exactly, which the disarmed-bit-identity tests rely on.

/// Addressable hardware state that supports single-bit corruption.
///
/// Implementors enumerate their state bits in a fixed, documented order so
/// that a given `(seed, index)` pair always lands on the same physical bit.
pub trait FaultSite {
    /// Total number of state bits exposed to injection.
    fn fault_bits(&self) -> u64;

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// May panic if `index >= fault_bits()` — fault plans always draw
    /// indices in range.
    fn flip_bit(&mut self, index: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Word(u32);

    impl FaultSite for Word {
        fn fault_bits(&self) -> u64 {
            32
        }
        fn flip_bit(&mut self, index: u64) {
            self.0 ^= 1 << index;
        }
    }

    #[test]
    fn flipping_twice_is_identity() {
        let mut w = Word(0xDEAD_BEEF);
        for bit in [0u64, 7, 31] {
            w.flip_bit(bit);
            assert_ne!(w.0, 0xDEAD_BEEF);
            w.flip_bit(bit);
            assert_eq!(w.0, 0xDEAD_BEEF);
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let mut w = Word(0);
        let site: &mut dyn FaultSite = &mut w;
        site.flip_bit(3);
        assert_eq!(site.fault_bits(), 32);
        assert_eq!(w.0, 8);
    }
}
