//! Accelerator configuration encoding — the word stream the config FIFO
//! transports.
//!
//! The compiler "generates the accelerator configuration at compilation
//! time and encodes it in the binary"; at program load the core streams it
//! to the accelerator through the 32-bit config queue. The stream is:
//! a magic word, the layer count, the layer widths, the output-activation
//! selector, then every weight and bias as Q16.16 fixed point in
//! [`Mlp::from_parameters`] order.
//!
//! [`Mlp::from_parameters`]: crate::mlp::Mlp::from_parameters

use crate::mlp::{Activation, Mlp};
use crate::topology::Topology;
use crate::{NpuError, Result};

const MAGIC: u32 = 0x4E50_5543; // "NPUC"
const FRAC_BITS: u32 = 16;

fn encode_f32(v: f32) -> u32 {
    let scaled = (f64::from(v) * f64::from(1u32 << FRAC_BITS)).round();
    scaled.clamp(f64::from(i32::MIN), f64::from(i32::MAX)) as i32 as u32
}

fn decode_f32(w: u32) -> f32 {
    (f64::from(w as i32) / f64::from(1u32 << FRAC_BITS)) as f32
}

/// Encodes a trained network into the config-FIFO word stream.
///
/// # Example
///
/// ```
/// # use mithra_npu::config::{encode, decode};
/// # use mithra_npu::mlp::{Activation, Mlp};
/// # use mithra_npu::topology::Topology;
/// let t = Topology::new(&[2, 2, 1])?;
/// let mlp = Mlp::from_parameters(t, &[0.5; 6], &[0.25; 3], Activation::Linear)?;
/// let words = encode(&mlp);
/// let restored = decode(&words)?;
/// assert_eq!(restored.run(&[1.0, 1.0])?, mlp.run(&[1.0, 1.0])?);
/// # Ok::<(), mithra_npu::NpuError>(())
/// ```
pub fn encode(mlp: &Mlp) -> Vec<u32> {
    let topology = mlp.topology();
    let (weights, biases) = mlp.to_parameters();
    let mut words = Vec::with_capacity(4 + topology.layers().len() + weights.len() + biases.len());
    words.push(MAGIC);
    words.push(topology.layers().len() as u32);
    words.extend(topology.layers().iter().map(|&w| w as u32));
    words.push(match mlp.output_activation() {
        Activation::Sigmoid => 1,
        Activation::Linear => 0,
    });
    words.extend(weights.iter().copied().map(encode_f32));
    words.extend(biases.iter().copied().map(encode_f32));
    words
}

/// Decodes a config-FIFO word stream back into a runnable network.
///
/// Weights round-trip at Q16.16 precision (~1.5e-5), matching what the
/// fixed-point datapath computes with anyway.
///
/// # Errors
///
/// Returns [`NpuError::InvalidTopology`] for a malformed stream (bad
/// magic, impossible shape, truncated payload).
pub fn decode(words: &[u32]) -> Result<Mlp> {
    let err = |reason: &'static str| NpuError::InvalidTopology { reason };
    if words.len() < 4 || words[0] != MAGIC {
        return Err(err("config stream missing magic word"));
    }
    let n_layers = words[1] as usize;
    if !(2..=16).contains(&n_layers) || words.len() < 2 + n_layers + 1 {
        return Err(err("config stream has an impossible layer count"));
    }
    let shape: Vec<usize> = words[2..2 + n_layers].iter().map(|&w| w as usize).collect();
    let topology = Topology::new(&shape)?;
    let activation = match words[2 + n_layers] {
        0 => Activation::Linear,
        1 => Activation::Sigmoid,
        _ => return Err(err("unknown output activation selector")),
    };
    let payload = &words[3 + n_layers..];
    let (nw, nb) = (topology.weight_count(), topology.bias_count());
    if payload.len() != nw + nb {
        return Err(err("config stream payload length mismatch"));
    }
    let weights: Vec<f32> = payload[..nw].iter().copied().map(decode_f32).collect();
    let biases: Vec<f32> = payload[nw..].iter().copied().map(decode_f32).collect();
    Mlp::from_parameters(topology, &weights, &biases, activation)
}

/// Size of the encoded configuration in bytes.
pub fn encoded_bytes(topology: &Topology) -> usize {
    // magic + layer count + layer widths + activation selector + params.
    (3 + topology.layers().len() + topology.parameter_count()) * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mlp() -> Mlp {
        let t = Topology::new(&[3, 4, 2]).unwrap();
        let weights: Vec<f32> = (0..t.weight_count())
            .map(|i| (i as f32 * 0.37 - 2.0) * 0.25)
            .collect();
        let biases: Vec<f32> = (0..t.bias_count()).map(|i| i as f32 * 0.11 - 0.3).collect();
        Mlp::from_parameters(t, &weights, &biases, Activation::Sigmoid).unwrap()
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let mlp = sample_mlp();
        let restored = decode(&encode(&mlp)).unwrap();
        for &input in &[[0.1f32, 0.5, 0.9], [1.0, -1.0, 0.0]] {
            let a = mlp.run(&input).unwrap();
            let b = restored.run(&input).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
        assert_eq!(restored.output_activation(), Activation::Sigmoid);
    }

    #[test]
    fn encoded_size_accounting() {
        let mlp = sample_mlp();
        let words = encode(&mlp);
        assert_eq!(words.len() * 4, encoded_bytes(mlp.topology()));
    }

    #[test]
    fn malformed_streams_rejected() {
        let mlp = sample_mlp();
        let words = encode(&mlp);
        assert!(decode(&[]).is_err());
        assert!(decode(&[0xBAD, 2, 1, 1, 0]).is_err());
        assert!(decode(&words[..words.len() - 1]).is_err()); // truncated
        let mut bad_act = words.clone();
        bad_act[2 + 3] = 9;
        assert!(decode(&bad_act).is_err());
    }

    #[test]
    fn q16_16_precision() {
        for &v in &[0.0f32, 1.0, -1.0, 0.123456, -3.999] {
            let back = decode_f32(encode_f32(v));
            assert!((back - v).abs() < 2e-5, "{v} -> {back}");
        }
    }
}
