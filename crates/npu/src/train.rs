//! The compiler-side offline trainer.
//!
//! The NPU workflow trains the network at compilation time from
//! (input, precise-output) pairs collected by profiling the target function
//! (paper §IV-C2 follows the same workflow for MITHRA's neural classifier).
//! This module implements minibatch stochastic gradient descent with
//! momentum on mean-squared error, plus the input/output normalization the
//! NPU compiler applies so sigmoid layers see well-scaled values.

use crate::kernel::{self, KernelBackend, LANES};
use crate::mlp::{Activation, ForwardScratch, Mlp};
use crate::topology::Topology;
use crate::{NpuError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-dimension affine normalization to a target interval.
///
/// The NPU compiler normalizes both inputs and outputs so the network
/// trains in a well-conditioned range; the inverse transform is applied to
/// the network's outputs at runtime (folded into the output layer in real
/// hardware, explicit here).
///
/// # Example
///
/// ```
/// # use mithra_npu::train::Normalizer;
/// let norm = Normalizer::fit(&[vec![0.0, 10.0], vec![4.0, 30.0]], 0.0, 1.0);
/// assert_eq!(norm.forward(&[2.0, 20.0]), vec![0.5, 0.5]);
/// assert_eq!(norm.inverse(&[0.5, 0.5]), vec![2.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mins: Vec<f32>,
    maxs: Vec<f32>,
    lo: f32,
    hi: f32,
}

impl Normalizer {
    /// Fits a normalizer mapping each dimension's observed `[min, max]`
    /// onto `[lo, hi]`. Constant dimensions map to the interval midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty (there is nothing to fit) — callers
    /// validate their training sets first.
    pub fn fit(samples: &[Vec<f32>], lo: f32, hi: f32) -> Self {
        assert!(!samples.is_empty(), "cannot fit a normalizer to no samples");
        let dims = samples[0].len();
        let mut mins = vec![f32::INFINITY; dims];
        let mut maxs = vec![f32::NEG_INFINITY; dims];
        for s in samples {
            for d in 0..dims {
                mins[d] = mins[d].min(s[d]);
                maxs[d] = maxs[d].max(s[d]);
            }
        }
        Self { mins, maxs, lo, hi }
    }

    /// Identity normalizer of the given dimensionality.
    pub fn identity(dims: usize) -> Self {
        Self {
            mins: vec![0.0; dims],
            maxs: vec![1.0; dims],
            lo: 0.0,
            hi: 1.0,
        }
    }

    /// Number of dimensions this normalizer was fitted on.
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Maps raw values into the target interval.
    pub fn forward(&self, raw: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(raw.len());
        self.forward_into(raw, &mut out);
        out
    }

    /// [`forward`](Self::forward) into a caller-provided buffer — the
    /// allocation-free form profiling and serving hot paths use.
    pub fn forward_into(&self, raw: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(raw.iter().enumerate().map(|(d, &v)| {
            let span = self.maxs[d] - self.mins[d];
            if span <= f32::EPSILON {
                0.5 * (self.lo + self.hi)
            } else {
                self.lo + (v - self.mins[d]) / span * (self.hi - self.lo)
            }
        }));
    }

    /// Maps normalized values back to raw scale.
    pub fn inverse(&self, normalized: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(normalized.len());
        self.inverse_into(normalized, &mut out);
        out
    }

    /// [`inverse`](Self::inverse) into a caller-provided buffer — the
    /// allocation-free form profiling and serving hot paths use.
    pub fn inverse_into(&self, normalized: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(normalized.iter().enumerate().map(|(d, &v)| {
            let span = self.maxs[d] - self.mins[d];
            if span <= f32::EPSILON {
                self.mins[d]
            } else {
                self.mins[d] + (v - self.lo) / (self.hi - self.lo) * span
            }
        }));
    }
}

/// Preallocated training buffers: forward activations, per-layer error
/// terms, gradient accumulators, the transposed weight copies the
/// backward pass streams, and — for the SIMD backend — the
/// lane-per-sample tile mirrors of all of the above.
///
/// [`Trainer::train`] creates one per call via
/// [`TrainScratch::for_topology`] and reuses it across every example,
/// batch and epoch, so the inner SGD loop performs no allocation at all
/// (pinned by `tests/alloc_free.rs`). Callers that train repeatedly can
/// hold their own scratch and pass it to
/// [`Trainer::train_with_scratch`].
#[derive(Debug, Clone, Default)]
pub struct TrainScratch {
    fwd: ForwardScratch,
    /// `delta[l]` holds layer `l`'s error terms during backpropagation.
    delta: Vec<Vec<f32>>,
    w_grad: Vec<Vec<f32>>,
    b_grad: Vec<Vec<f32>>,
    /// Transposed (input-major) weight copies:
    /// `wt[l][i * fan_out + n] == weights[n * fan_in + i]`, kept in sync
    /// with the network after every update so propagating deltas to layer
    /// `l - 1` reads one contiguous column per input instead of striding
    /// across rows. Layer 0 never propagates further; its slot stays
    /// empty.
    wt: Vec<Vec<f32>>,
    /// SIMD tile state, [`LANES`] samples wide: `act8[lvl]` are the
    /// activation tiles per network level, `delta8[l]` the error-term
    /// tiles, and `w_grad8`/`b_grad8` lane-resolved gradient
    /// accumulators reduced in ascending-lane order at each batch end.
    act8: Vec<Vec<f32>>,
    delta8: Vec<Vec<f32>>,
    w_grad8: Vec<Vec<f32>>,
    b_grad8: Vec<Vec<f32>>,
}

impl TrainScratch {
    /// Creates an empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch presized for `topology` — on either backend no
    /// buffer reallocates once construction returns.
    pub fn for_topology(topology: &Topology) -> Self {
        let shape = topology.layers();
        let layer = |l: usize| (shape[l], shape[l + 1]);
        let per_layer = 0..shape.len() - 1;
        Self {
            fwd: ForwardScratch::for_topology(topology),
            delta: per_layer
                .clone()
                .map(|l| Vec::with_capacity(layer(l).1))
                .collect(),
            w_grad: per_layer
                .clone()
                .map(|l| vec![0.0; layer(l).0 * layer(l).1])
                .collect(),
            b_grad: per_layer.clone().map(|l| vec![0.0; layer(l).1]).collect(),
            wt: per_layer
                .clone()
                .map(|l| {
                    if l == 0 {
                        Vec::new()
                    } else {
                        vec![0.0; layer(l).0 * layer(l).1]
                    }
                })
                .collect(),
            act8: shape.iter().map(|&w| vec![0.0; w * LANES]).collect(),
            delta8: per_layer
                .clone()
                .map(|l| vec![0.0; layer(l).1 * LANES])
                .collect(),
            w_grad8: per_layer
                .clone()
                .map(|l| vec![0.0; layer(l).0 * layer(l).1 * LANES])
                .collect(),
            b_grad8: per_layer.map(|l| vec![0.0; layer(l).1 * LANES]).collect(),
        }
    }

    /// Rebuilds the scratch if it was not sized for `topology`.
    fn ensure(&mut self, topology: &Topology) {
        let shape = topology.layers();
        let fits = self.w_grad.len() == shape.len() - 1
            && self
                .w_grad
                .iter()
                .enumerate()
                .all(|(l, g)| g.len() == shape[l] * shape[l + 1])
            && self.act8.len() == shape.len();
        if !fits {
            *self = Self::for_topology(topology);
        }
    }

    /// Refills the transposed weight mirrors from `mlp` (after
    /// initialization; updates keep them in sync incrementally).
    fn sync_weights(&mut self, mlp: &Mlp) {
        for (l, layer) in mlp.layers().iter().enumerate().skip(1) {
            let fan_in = layer.fan_in;
            let fan_out = layer.biases.len();
            let wt = &mut self.wt[l];
            for n in 0..fan_out {
                for i in 0..fan_in {
                    wt[i * fan_out + n] = layer.weights[n * fan_in + i];
                }
            }
        }
    }
}

/// Offline backpropagation trainer (non-consuming builder).
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Trainer {
    topology: Topology,
    epochs: usize,
    learning_rate: f32,
    momentum: f32,
    batch_size: usize,
    seed: u64,
    output_activation: Activation,
    target_mse: Option<f32>,
    kernel: KernelBackend,
}

impl Trainer {
    /// Creates a trainer for the given topology with the defaults the NPU
    /// compiler uses: 200 epochs, learning rate 0.2, momentum 0.9,
    /// minibatches of 16, linear output layer.
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            epochs: 200,
            learning_rate: 0.2,
            momentum: 0.9,
            batch_size: 16,
            seed: 0x4D49_5448,
            output_activation: Activation::Linear,
            target_mse: None,
            kernel: KernelBackend::Scalar,
        }
    }

    /// Sets the number of passes over the training set.
    pub fn epochs(&mut self, epochs: usize) -> &mut Self {
        self.epochs = epochs;
        self
    }

    /// Sets the SGD learning rate.
    pub fn learning_rate(&mut self, lr: f32) -> &mut Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the momentum coefficient.
    pub fn momentum(&mut self, momentum: f32) -> &mut Self {
        self.momentum = momentum;
        self
    }

    /// Sets the minibatch size.
    pub fn batch_size(&mut self, batch: usize) -> &mut Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Sets the RNG seed for weight initialization and shuffling, making
    /// training fully deterministic.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the output layer activation (sigmoid for classification
    /// networks, linear for regression).
    pub fn output_activation(&mut self, activation: Activation) -> &mut Self {
        self.output_activation = activation;
        self
    }

    /// Stops early once the epoch's mean-squared error drops below `mse`.
    pub fn target_mse(&mut self, mse: f32) -> &mut Self {
        self.target_mse = Some(mse);
        self
    }

    /// Selects the arithmetic backend for the inner SGD loops. The
    /// default [`KernelBackend::Scalar`] is the bit-reproducible
    /// reference; [`KernelBackend::Simd`] runs the lane-per-sample tile
    /// kernels (see [`crate::kernel`]) — deterministic for a fixed seed
    /// and identical across machines, but not bit-equal to the
    /// reference. RNG consumption (initialization, shuffles) is
    /// identical on both backends.
    pub fn kernel(&mut self, backend: KernelBackend) -> &mut Self {
        self.kernel = backend;
        self
    }

    /// Trains a network on `(input, target)` pairs in *normalized* space —
    /// the caller is responsible for normalization (see
    /// [`train_normalized`](Self::train) vs the usual flow in
    /// `mithra-core`, which wraps this with [`Normalizer`]s).
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidTrainingSet`] if `samples` is empty, or
    /// [`NpuError::DimensionMismatch`] if any pair disagrees with the
    /// topology.
    pub fn train(&self, samples: &[(Vec<f32>, Vec<f32>)]) -> Result<Mlp> {
        let mut scratch = TrainScratch::for_topology(&self.topology);
        self.train_with_scratch(samples, &mut scratch)
    }

    /// [`train`](Self::train) with caller-owned scratch buffers, for
    /// callers that train many networks of the same topology and want
    /// zero allocation per call beyond the returned network. A scratch
    /// sized for a different topology is rebuilt transparently.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidTrainingSet`] if `samples` is empty, or
    /// [`NpuError::DimensionMismatch`] if any pair disagrees with the
    /// topology.
    pub fn train_with_scratch(
        &self,
        samples: &[(Vec<f32>, Vec<f32>)],
        scratch: &mut TrainScratch,
    ) -> Result<Mlp> {
        if samples.is_empty() {
            return Err(NpuError::InvalidTrainingSet {
                reason: "no samples",
            });
        }
        for (x, y) in samples {
            if x.len() != self.topology.inputs() {
                return Err(NpuError::DimensionMismatch {
                    expected: self.topology.inputs(),
                    actual: x.len(),
                });
            }
            if y.len() != self.topology.outputs() {
                return Err(NpuError::DimensionMismatch {
                    expected: self.topology.outputs(),
                    actual: y.len(),
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut mlp = self.init_network(&mut rng);

        // Momentum state mirrors the parameter layout.
        let mut w_vel: Vec<Vec<f32>> = mlp
            .layers()
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut b_vel: Vec<Vec<f32>> = mlp
            .layers()
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();

        scratch.ensure(&self.topology);
        scratch.sync_weights(&mlp);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            let mut epoch_sse = 0.0f64;
            for batch in order.chunks(self.batch_size) {
                epoch_sse += match self.kernel {
                    KernelBackend::Scalar => {
                        self.sgd_step(&mut mlp, samples, batch, &mut w_vel, &mut b_vel, scratch)
                    }
                    KernelBackend::Simd => self
                        .sgd_step_simd(&mut mlp, samples, batch, &mut w_vel, &mut b_vel, scratch),
                };
            }
            let mse = epoch_sse / (samples.len() * self.topology.outputs()) as f64;
            if let Some(target) = self.target_mse {
                if mse < f64::from(target) {
                    break;
                }
            }
        }
        Ok(mlp)
    }

    fn init_network(&self, rng: &mut StdRng) -> Mlp {
        // Xavier/Glorot uniform initialization.
        let shape = self.topology.layers();
        let mut weights = Vec::with_capacity(self.topology.weight_count());
        for l in 0..shape.len() - 1 {
            let bound = (6.0 / (shape[l] + shape[l + 1]) as f32).sqrt();
            for _ in 0..shape[l] * shape[l + 1] {
                weights.push(rng.gen_range(-bound..bound));
            }
        }
        let biases = vec![0.0; self.topology.bias_count()];
        Mlp::from_parameters(
            self.topology.clone(),
            &weights,
            &biases,
            self.output_activation,
        )
        .expect("constructed lengths match the topology")
    }

    /// One minibatch step; returns the batch's summed squared error.
    ///
    /// All buffers come from `scratch` and the backward pass reads the
    /// transposed weight copies, but every floating-point accumulation
    /// happens in the same order as the textbook row-major formulation —
    /// per element, contributions still arrive in ascending neuron order —
    /// so training stays byte-deterministic across the layout change
    /// (pinned by `tests/kernel_parity.rs`).
    fn sgd_step(
        &self,
        mlp: &mut Mlp,
        samples: &[(Vec<f32>, Vec<f32>)],
        batch: &[usize],
        w_vel: &mut [Vec<f32>],
        b_vel: &mut [Vec<f32>],
        scratch: &mut TrainScratch,
    ) -> f64 {
        let n_layers = mlp.layers().len();
        for g in scratch.w_grad.iter_mut() {
            g.fill(0.0);
        }
        for g in scratch.b_grad.iter_mut() {
            g.fill(0.0);
        }
        let mut sse = 0.0f64;

        for &idx in batch {
            let (x, target) = &samples[idx];
            mlp.forward_into(x, &mut scratch.fwd)
                .expect("samples validated against the topology");

            // Output delta: dE/dz for MSE loss.
            let out_activation = mlp.layers()[n_layers - 1].activation;
            let output = scratch.fwd.activation(n_layers);
            let out_delta = &mut scratch.delta[n_layers - 1];
            out_delta.clear();
            for (&o, &t) in output.iter().zip(target) {
                let err = o - t;
                sse += f64::from(err) * f64::from(err);
                out_delta.push(err * out_activation.derivative_from_output(o));
            }

            for l in (0..n_layers).rev() {
                let input = scratch.fwd.activation(l);
                let fan_in = mlp.layers()[l].fan_in;
                {
                    let delta = &scratch.delta[l];
                    let w_grad = &mut scratch.w_grad[l];
                    let b_grad = &mut scratch.b_grad[l];
                    for (n, &d) in delta.iter().enumerate() {
                        b_grad[n] += d;
                        // Row-sliced accumulation: each gradient element
                        // receives exactly one `+= d * xi` per example in
                        // the same order as the indexed loop it replaced.
                        let row = &mut w_grad[n * fan_in..(n + 1) * fan_in];
                        for (g, &xi) in row.iter_mut().zip(input) {
                            *g += d * xi;
                        }
                    }
                }
                if l > 0 {
                    let fan_out = mlp.layers()[l].biases.len();
                    let prev_activation = mlp.layers()[l - 1].activation;
                    let wt = &scratch.wt[l];
                    let (lower, upper) = scratch.delta.split_at_mut(l);
                    let delta = &upper[0];
                    let prev_delta = &mut lower[l - 1];
                    prev_delta.clear();
                    // Four lower-layer neurons share one pass over the
                    // deltas. Each accumulator chain keeps its exact
                    // ascending-n operation order, so — as in the forward
                    // pass — the interleave changes only instruction-level
                    // parallelism, never results.
                    let mut columns = wt.chunks_exact(4 * fan_out);
                    let mut i = 0;
                    for quad in columns.by_ref() {
                        let (c0, rest) = quad.split_at(fan_out);
                        let (c1, rest) = rest.split_at(fan_out);
                        let (c2, c3) = rest.split_at(fan_out);
                        let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                        for ((((&d, &w0), &w1), &w2), &w3) in
                            delta.iter().zip(c0).zip(c1).zip(c2).zip(c3)
                        {
                            a0 += d * w0;
                            a1 += d * w1;
                            a2 += d * w2;
                            a3 += d * w3;
                        }
                        for (acc, &act) in [a0, a1, a2, a3].iter().zip(&input[i..i + 4]) {
                            prev_delta.push(acc * prev_activation.derivative_from_output(act));
                        }
                        i += 4;
                    }
                    for (column, &act) in columns.remainder().chunks_exact(fan_out).zip(&input[i..])
                    {
                        let mut acc = 0.0f32;
                        for (&d, &w) in delta.iter().zip(column) {
                            acc += d * w;
                        }
                        prev_delta.push(acc * prev_activation.derivative_from_output(act));
                    }
                }
            }
        }

        self.apply_update(mlp, batch.len(), w_vel, b_vel, scratch);
        sse
    }

    /// One minibatch step on the SIMD backend; returns the batch's
    /// summed squared error.
    ///
    /// Samples run [`LANES`] at a time through lane-per-sample tiles
    /// (see [`crate::kernel`]); a partial final group zero-pads its
    /// spare lanes, whose output deltas are forced to zero so every
    /// gradient contribution from a padding lane is an exact zero.
    /// Gradients accumulate lane-resolved across the whole batch and are
    /// reduced once, in ascending lane order, before the same momentum
    /// update as the scalar step — so for a fixed seed the result is
    /// deterministic, merely not bit-equal to the reference order.
    fn sgd_step_simd(
        &self,
        mlp: &mut Mlp,
        samples: &[(Vec<f32>, Vec<f32>)],
        batch: &[usize],
        w_vel: &mut [Vec<f32>],
        b_vel: &mut [Vec<f32>],
        scratch: &mut TrainScratch,
    ) -> f64 {
        let n_layers = mlp.layers().len();
        let in_dim = self.topology.inputs();
        let out_dim = self.topology.outputs();
        for g in scratch.w_grad8.iter_mut() {
            g.fill(0.0);
        }
        for g in scratch.b_grad8.iter_mut() {
            g.fill(0.0);
        }
        let mut sse = 0.0f64;

        for group in batch.chunks(LANES) {
            let lanes = group.len();
            let input_tile = &mut scratch.act8[0];
            for i in 0..in_dim {
                let tile = &mut input_tile[i * LANES..(i + 1) * LANES];
                for (l, t) in tile.iter_mut().enumerate() {
                    *t = if l < lanes {
                        samples[group[l]].0[i]
                    } else {
                        0.0
                    };
                }
            }
            for (l, layer) in mlp.layers().iter().enumerate() {
                let (prev, next) = scratch.act8.split_at_mut(l + 1);
                kernel::layer_forward_tile(
                    &layer.weights,
                    &layer.biases,
                    layer.fan_in,
                    layer.activation,
                    &prev[l],
                    &mut next[0],
                );
            }

            let out_activation = mlp.layers()[n_layers - 1].activation;
            let out_tile = &scratch.act8[n_layers];
            let out_delta = &mut scratch.delta8[n_layers - 1];
            for n in 0..out_dim {
                for l in 0..LANES {
                    let idx = n * LANES + l;
                    out_delta[idx] = if l < lanes {
                        let o = out_tile[idx];
                        let err = o - samples[group[l]].1[n];
                        sse += f64::from(err) * f64::from(err);
                        err * out_activation.derivative_from_output(o)
                    } else {
                        0.0
                    };
                }
            }

            for l in (0..n_layers).rev() {
                let fan_in = mlp.layers()[l].fan_in;
                kernel::grad_accum_tile(
                    &scratch.delta8[l],
                    fan_in,
                    &scratch.act8[l],
                    &mut scratch.w_grad8[l],
                    &mut scratch.b_grad8[l],
                );
                if l > 0 {
                    let fan_out = mlp.layers()[l].biases.len();
                    let prev_activation = mlp.layers()[l - 1].activation;
                    let (lower, upper) = scratch.delta8.split_at_mut(l);
                    kernel::backprop_delta_tile(
                        &scratch.wt[l],
                        fan_out,
                        &upper[0],
                        &scratch.act8[l],
                        prev_activation,
                        &mut lower[l - 1],
                    );
                }
            }
        }

        for l in 0..n_layers {
            for (g, lane_accs) in scratch.w_grad[l]
                .iter_mut()
                .zip(scratch.w_grad8[l].chunks_exact(LANES))
            {
                *g = lane_accs.iter().sum();
            }
            for (g, lane_accs) in scratch.b_grad[l]
                .iter_mut()
                .zip(scratch.b_grad8[l].chunks_exact(LANES))
            {
                *g = lane_accs.iter().sum();
            }
        }
        self.apply_update(mlp, batch.len(), w_vel, b_vel, scratch);
        sse
    }

    /// Applies the accumulated batch gradients with momentum — shared
    /// verbatim by both backends, so the scalar path's bit-exact update
    /// order is untouched.
    fn apply_update(
        &self,
        mlp: &mut Mlp,
        batch_len: usize,
        w_vel: &mut [Vec<f32>],
        b_vel: &mut [Vec<f32>],
        scratch: &mut TrainScratch,
    ) {
        let n_layers = mlp.layers().len();
        let scale = self.learning_rate / batch_len as f32;
        for l in 0..n_layers {
            let layer = &mut mlp.layers_mut()[l];
            let fan_in = layer.fan_in;
            let fan_out = layer.biases.len();
            let wt = &mut scratch.wt[l];
            for n in 0..fan_out {
                // Row-sliced update, same per-parameter arithmetic as the
                // indexed loop it replaced. The transposed mirror is kept
                // in sync for the next example's backward pass; layer 0
                // never back-propagates, so its mirror stays empty.
                let start = n * fan_in;
                let wrow = &mut layer.weights[start..start + fan_in];
                let vrow = &mut w_vel[l][start..start + fan_in];
                let grow = &scratch.w_grad[l][start..start + fan_in];
                if wt.is_empty() {
                    for ((w, v), &g) in wrow.iter_mut().zip(vrow.iter_mut()).zip(grow) {
                        *v = self.momentum * *v - scale * g;
                        *w += *v;
                    }
                } else {
                    for (i, ((w, v), &g)) in
                        wrow.iter_mut().zip(vrow.iter_mut()).zip(grow).enumerate()
                    {
                        *v = self.momentum * *v - scale * g;
                        *w += *v;
                        wt[i * fan_out + n] = *w;
                    }
                }
                let v = &mut b_vel[l][n];
                *v = self.momentum * *v - scale * scratch.b_grad[l][n];
                layer.biases[n] += *v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_samples(f: impl Fn(f32, f32) -> f32) -> Vec<(Vec<f32>, Vec<f32>)> {
        let mut out = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = i as f32 / 19.0;
                let y = j as f32 / 19.0;
                out.push((vec![x, y], vec![f(x, y)]));
            }
        }
        out
    }

    #[test]
    fn learns_linear_function() {
        let samples = grid_samples(|x, y| 0.3 * x + 0.5 * y + 0.1);
        let mlp = Trainer::new(Topology::new(&[2, 4, 1]).unwrap())
            .epochs(150)
            .seed(1)
            .train(&samples)
            .unwrap();
        let out = mlp.run(&[0.5, 0.5]).unwrap()[0];
        assert!((out - 0.5).abs() < 0.03, "got {out}");
    }

    #[test]
    fn learns_product() {
        let samples = grid_samples(|x, y| x * y);
        let mlp = Trainer::new(Topology::new(&[2, 6, 1]).unwrap())
            .epochs(400)
            .learning_rate(0.4)
            .seed(2)
            .train(&samples)
            .unwrap();
        for &(x, y) in &[(0.2f32, 0.8f32), (0.9, 0.9), (0.1, 0.1)] {
            let out = mlp.run(&[x, y]).unwrap()[0];
            assert!((out - x * y).abs() < 0.06, "f({x},{y}) = {out}");
        }
    }

    #[test]
    fn learns_xor_with_sigmoid_output() {
        let samples = vec![
            (vec![0.0, 0.0], vec![0.0]),
            (vec![0.0, 1.0], vec![1.0]),
            (vec![1.0, 0.0], vec![1.0]),
            (vec![1.0, 1.0], vec![0.0]),
        ];
        let mlp = Trainer::new(Topology::new(&[2, 4, 1]).unwrap())
            .epochs(3000)
            .learning_rate(0.8)
            .output_activation(Activation::Sigmoid)
            .seed(3)
            .train(&samples)
            .unwrap();
        for (x, t) in &samples {
            let o = mlp.run(x).unwrap()[0];
            assert!((o - t[0]).abs() < 0.25, "xor({x:?}) = {o}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let samples = grid_samples(|x, y| x - y);
        let train = || {
            Trainer::new(Topology::new(&[2, 3, 1]).unwrap())
                .epochs(30)
                .seed(42)
                .train(&samples)
                .unwrap()
                .to_parameters()
        };
        assert_eq!(train(), train());
    }

    #[test]
    fn early_stop_respects_target() {
        let samples = grid_samples(|x, _| x);
        let mlp = Trainer::new(Topology::new(&[2, 2, 1]).unwrap())
            .epochs(10_000)
            .target_mse(1e-3)
            .seed(4)
            .train(&samples)
            .unwrap();
        // If early stopping worked this is still a good fit.
        let out = mlp.run(&[0.7, 0.3]).unwrap()[0];
        assert!((out - 0.7).abs() < 0.1);
    }

    #[test]
    fn rejects_empty_and_mismatched_sets() {
        let t = Topology::new(&[2, 2, 1]).unwrap();
        assert!(Trainer::new(t.clone()).train(&[]).is_err());
        assert!(Trainer::new(t.clone())
            .train(&[(vec![1.0], vec![1.0])])
            .is_err());
        assert!(Trainer::new(t)
            .train(&[(vec![1.0, 2.0], vec![1.0, 2.0])])
            .is_err());
    }

    #[test]
    fn normalizer_round_trip() {
        let samples = vec![vec![-5.0, 100.0], vec![5.0, 300.0], vec![0.0, 200.0]];
        let n = Normalizer::fit(&samples, 0.1, 0.9);
        for s in &samples {
            let back = n.inverse(&n.forward(s));
            for (a, b) in back.iter().zip(s) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn normalizer_constant_dimension() {
        let samples = vec![vec![3.0], vec![3.0]];
        let n = Normalizer::fit(&samples, 0.0, 1.0);
        assert_eq!(n.forward(&[3.0]), vec![0.5]);
        assert_eq!(n.inverse(&[0.5]), vec![3.0]);
    }

    #[test]
    fn normalizer_identity() {
        let n = Normalizer::identity(3);
        assert_eq!(n.dims(), 3);
        assert_eq!(n.forward(&[0.25, 0.5, 1.0]), vec![0.25, 0.5, 1.0]);
    }
}
