//! The compiler-side offline trainer.
//!
//! The NPU workflow trains the network at compilation time from
//! (input, precise-output) pairs collected by profiling the target function
//! (paper §IV-C2 follows the same workflow for MITHRA's neural classifier).
//! This module implements minibatch stochastic gradient descent with
//! momentum on mean-squared error, plus the input/output normalization the
//! NPU compiler applies so sigmoid layers see well-scaled values.

use crate::mlp::{Activation, Mlp};
use crate::topology::Topology;
use crate::{NpuError, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-dimension affine normalization to a target interval.
///
/// The NPU compiler normalizes both inputs and outputs so the network
/// trains in a well-conditioned range; the inverse transform is applied to
/// the network's outputs at runtime (folded into the output layer in real
/// hardware, explicit here).
///
/// # Example
///
/// ```
/// # use mithra_npu::train::Normalizer;
/// let norm = Normalizer::fit(&[vec![0.0, 10.0], vec![4.0, 30.0]], 0.0, 1.0);
/// assert_eq!(norm.forward(&[2.0, 20.0]), vec![0.5, 0.5]);
/// assert_eq!(norm.inverse(&[0.5, 0.5]), vec![2.0, 20.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    mins: Vec<f32>,
    maxs: Vec<f32>,
    lo: f32,
    hi: f32,
}

impl Normalizer {
    /// Fits a normalizer mapping each dimension's observed `[min, max]`
    /// onto `[lo, hi]`. Constant dimensions map to the interval midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty (there is nothing to fit) — callers
    /// validate their training sets first.
    pub fn fit(samples: &[Vec<f32>], lo: f32, hi: f32) -> Self {
        assert!(!samples.is_empty(), "cannot fit a normalizer to no samples");
        let dims = samples[0].len();
        let mut mins = vec![f32::INFINITY; dims];
        let mut maxs = vec![f32::NEG_INFINITY; dims];
        for s in samples {
            for d in 0..dims {
                mins[d] = mins[d].min(s[d]);
                maxs[d] = maxs[d].max(s[d]);
            }
        }
        Self { mins, maxs, lo, hi }
    }

    /// Identity normalizer of the given dimensionality.
    pub fn identity(dims: usize) -> Self {
        Self {
            mins: vec![0.0; dims],
            maxs: vec![1.0; dims],
            lo: 0.0,
            hi: 1.0,
        }
    }

    /// Number of dimensions this normalizer was fitted on.
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Maps raw values into the target interval.
    pub fn forward(&self, raw: &[f32]) -> Vec<f32> {
        raw.iter()
            .enumerate()
            .map(|(d, &v)| {
                let span = self.maxs[d] - self.mins[d];
                if span <= f32::EPSILON {
                    0.5 * (self.lo + self.hi)
                } else {
                    self.lo + (v - self.mins[d]) / span * (self.hi - self.lo)
                }
            })
            .collect()
    }

    /// Maps normalized values back to raw scale.
    pub fn inverse(&self, normalized: &[f32]) -> Vec<f32> {
        normalized
            .iter()
            .enumerate()
            .map(|(d, &v)| {
                let span = self.maxs[d] - self.mins[d];
                if span <= f32::EPSILON {
                    self.mins[d]
                } else {
                    self.mins[d] + (v - self.lo) / (self.hi - self.lo) * span
                }
            })
            .collect()
    }
}

/// Offline backpropagation trainer (non-consuming builder).
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Trainer {
    topology: Topology,
    epochs: usize,
    learning_rate: f32,
    momentum: f32,
    batch_size: usize,
    seed: u64,
    output_activation: Activation,
    target_mse: Option<f32>,
}

impl Trainer {
    /// Creates a trainer for the given topology with the defaults the NPU
    /// compiler uses: 200 epochs, learning rate 0.2, momentum 0.9,
    /// minibatches of 16, linear output layer.
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            epochs: 200,
            learning_rate: 0.2,
            momentum: 0.9,
            batch_size: 16,
            seed: 0x4D49_5448,
            output_activation: Activation::Linear,
            target_mse: None,
        }
    }

    /// Sets the number of passes over the training set.
    pub fn epochs(&mut self, epochs: usize) -> &mut Self {
        self.epochs = epochs;
        self
    }

    /// Sets the SGD learning rate.
    pub fn learning_rate(&mut self, lr: f32) -> &mut Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the momentum coefficient.
    pub fn momentum(&mut self, momentum: f32) -> &mut Self {
        self.momentum = momentum;
        self
    }

    /// Sets the minibatch size.
    pub fn batch_size(&mut self, batch: usize) -> &mut Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Sets the RNG seed for weight initialization and shuffling, making
    /// training fully deterministic.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the output layer activation (sigmoid for classification
    /// networks, linear for regression).
    pub fn output_activation(&mut self, activation: Activation) -> &mut Self {
        self.output_activation = activation;
        self
    }

    /// Stops early once the epoch's mean-squared error drops below `mse`.
    pub fn target_mse(&mut self, mse: f32) -> &mut Self {
        self.target_mse = Some(mse);
        self
    }

    /// Trains a network on `(input, target)` pairs in *normalized* space —
    /// the caller is responsible for normalization (see
    /// [`train_normalized`](Self::train) vs the usual flow in
    /// `mithra-core`, which wraps this with [`Normalizer`]s).
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidTrainingSet`] if `samples` is empty, or
    /// [`NpuError::DimensionMismatch`] if any pair disagrees with the
    /// topology.
    pub fn train(&self, samples: &[(Vec<f32>, Vec<f32>)]) -> Result<Mlp> {
        if samples.is_empty() {
            return Err(NpuError::InvalidTrainingSet {
                reason: "no samples",
            });
        }
        for (x, y) in samples {
            if x.len() != self.topology.inputs() {
                return Err(NpuError::DimensionMismatch {
                    expected: self.topology.inputs(),
                    actual: x.len(),
                });
            }
            if y.len() != self.topology.outputs() {
                return Err(NpuError::DimensionMismatch {
                    expected: self.topology.outputs(),
                    actual: y.len(),
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut mlp = self.init_network(&mut rng);

        // Momentum state mirrors the parameter layout.
        let mut w_vel: Vec<Vec<f32>> = mlp
            .layers()
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut b_vel: Vec<Vec<f32>> = mlp
            .layers()
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();

        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            let mut epoch_sse = 0.0f64;
            for batch in order.chunks(self.batch_size) {
                epoch_sse += self.sgd_step(&mut mlp, samples, batch, &mut w_vel, &mut b_vel);
            }
            let mse = epoch_sse / (samples.len() * self.topology.outputs()) as f64;
            if let Some(target) = self.target_mse {
                if mse < f64::from(target) {
                    break;
                }
            }
        }
        Ok(mlp)
    }

    fn init_network(&self, rng: &mut StdRng) -> Mlp {
        // Xavier/Glorot uniform initialization.
        let shape = self.topology.layers();
        let mut weights = Vec::with_capacity(self.topology.weight_count());
        for l in 0..shape.len() - 1 {
            let bound = (6.0 / (shape[l] + shape[l + 1]) as f32).sqrt();
            for _ in 0..shape[l] * shape[l + 1] {
                weights.push(rng.gen_range(-bound..bound));
            }
        }
        let biases = vec![0.0; self.topology.bias_count()];
        Mlp::from_parameters(
            self.topology.clone(),
            &weights,
            &biases,
            self.output_activation,
        )
        .expect("constructed lengths match the topology")
    }

    /// One minibatch step; returns the batch's summed squared error.
    fn sgd_step(
        &self,
        mlp: &mut Mlp,
        samples: &[(Vec<f32>, Vec<f32>)],
        batch: &[usize],
        w_vel: &mut [Vec<f32>],
        b_vel: &mut [Vec<f32>],
    ) -> f64 {
        let n_layers = mlp.layers().len();
        let mut w_grad: Vec<Vec<f32>> = mlp
            .layers()
            .iter()
            .map(|l| vec![0.0; l.weights.len()])
            .collect();
        let mut b_grad: Vec<Vec<f32>> = mlp
            .layers()
            .iter()
            .map(|l| vec![0.0; l.biases.len()])
            .collect();
        let mut sse = 0.0f64;

        for &idx in batch {
            let (x, target) = &samples[idx];
            let acts = mlp.forward_trace(x);
            let output = &acts[n_layers];

            // Output delta: dE/dz for MSE loss.
            let mut delta: Vec<f32> = output
                .iter()
                .zip(target)
                .map(|(&o, &t)| {
                    let err = o - t;
                    sse += f64::from(err) * f64::from(err);
                    err * mlp.layers()[n_layers - 1]
                        .activation
                        .derivative_from_output(o)
                })
                .collect();

            for l in (0..n_layers).rev() {
                let input = &acts[l];
                let fan_in = mlp.layers()[l].fan_in;
                for (n, &d) in delta.iter().enumerate() {
                    b_grad[l][n] += d;
                    for (i, &xi) in input.iter().enumerate() {
                        w_grad[l][n * fan_in + i] += d * xi;
                    }
                }
                if l > 0 {
                    let layer = &mlp.layers()[l];
                    let prev_act = &acts[l];
                    let mut prev_delta = vec![0.0f32; fan_in];
                    for (n, &d) in delta.iter().enumerate() {
                        for (i, pd) in prev_delta.iter_mut().enumerate() {
                            *pd += d * layer.weights[n * fan_in + i];
                        }
                    }
                    let prev_layer_act = mlp.layers()[l - 1].activation;
                    for (i, pd) in prev_delta.iter_mut().enumerate() {
                        *pd *= prev_layer_act.derivative_from_output(prev_act[i]);
                    }
                    delta = prev_delta;
                }
            }
        }

        let scale = self.learning_rate / batch.len() as f32;
        for l in 0..n_layers {
            for (w, (g, v)) in mlp.layers_mut()[l]
                .weights
                .iter_mut()
                .zip(w_grad[l].iter().zip(w_vel[l].iter_mut()))
            {
                *v = self.momentum * *v - scale * g;
                *w += *v;
            }
            for (b, (g, v)) in mlp.layers_mut()[l]
                .biases
                .iter_mut()
                .zip(b_grad[l].iter().zip(b_vel[l].iter_mut()))
            {
                *v = self.momentum * *v - scale * g;
                *b += *v;
            }
        }
        sse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_samples(f: impl Fn(f32, f32) -> f32) -> Vec<(Vec<f32>, Vec<f32>)> {
        let mut out = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let x = i as f32 / 19.0;
                let y = j as f32 / 19.0;
                out.push((vec![x, y], vec![f(x, y)]));
            }
        }
        out
    }

    #[test]
    fn learns_linear_function() {
        let samples = grid_samples(|x, y| 0.3 * x + 0.5 * y + 0.1);
        let mlp = Trainer::new(Topology::new(&[2, 4, 1]).unwrap())
            .epochs(150)
            .seed(1)
            .train(&samples)
            .unwrap();
        let out = mlp.run(&[0.5, 0.5]).unwrap()[0];
        assert!((out - 0.5).abs() < 0.03, "got {out}");
    }

    #[test]
    fn learns_product() {
        let samples = grid_samples(|x, y| x * y);
        let mlp = Trainer::new(Topology::new(&[2, 6, 1]).unwrap())
            .epochs(400)
            .learning_rate(0.4)
            .seed(2)
            .train(&samples)
            .unwrap();
        for &(x, y) in &[(0.2f32, 0.8f32), (0.9, 0.9), (0.1, 0.1)] {
            let out = mlp.run(&[x, y]).unwrap()[0];
            assert!((out - x * y).abs() < 0.06, "f({x},{y}) = {out}");
        }
    }

    #[test]
    fn learns_xor_with_sigmoid_output() {
        let samples = vec![
            (vec![0.0, 0.0], vec![0.0]),
            (vec![0.0, 1.0], vec![1.0]),
            (vec![1.0, 0.0], vec![1.0]),
            (vec![1.0, 1.0], vec![0.0]),
        ];
        let mlp = Trainer::new(Topology::new(&[2, 4, 1]).unwrap())
            .epochs(3000)
            .learning_rate(0.8)
            .output_activation(Activation::Sigmoid)
            .seed(3)
            .train(&samples)
            .unwrap();
        for (x, t) in &samples {
            let o = mlp.run(x).unwrap()[0];
            assert!((o - t[0]).abs() < 0.25, "xor({x:?}) = {o}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let samples = grid_samples(|x, y| x - y);
        let train = || {
            Trainer::new(Topology::new(&[2, 3, 1]).unwrap())
                .epochs(30)
                .seed(42)
                .train(&samples)
                .unwrap()
                .to_parameters()
        };
        assert_eq!(train(), train());
    }

    #[test]
    fn early_stop_respects_target() {
        let samples = grid_samples(|x, _| x);
        let mlp = Trainer::new(Topology::new(&[2, 2, 1]).unwrap())
            .epochs(10_000)
            .target_mse(1e-3)
            .seed(4)
            .train(&samples)
            .unwrap();
        // If early stopping worked this is still a good fit.
        let out = mlp.run(&[0.7, 0.3]).unwrap()[0];
        assert!((out - 0.7).abs() < 0.1);
    }

    #[test]
    fn rejects_empty_and_mismatched_sets() {
        let t = Topology::new(&[2, 2, 1]).unwrap();
        assert!(Trainer::new(t.clone()).train(&[]).is_err());
        assert!(Trainer::new(t.clone())
            .train(&[(vec![1.0], vec![1.0])])
            .is_err());
        assert!(Trainer::new(t)
            .train(&[(vec![1.0, 2.0], vec![1.0, 2.0])])
            .is_err());
    }

    #[test]
    fn normalizer_round_trip() {
        let samples = vec![vec![-5.0, 100.0], vec![5.0, 300.0], vec![0.0, 200.0]];
        let n = Normalizer::fit(&samples, 0.1, 0.9);
        for s in &samples {
            let back = n.inverse(&n.forward(s));
            for (a, b) in back.iter().zip(s) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn normalizer_constant_dimension() {
        let samples = vec![vec![3.0], vec![3.0]];
        let n = Normalizer::fit(&samples, 0.0, 1.0);
        assert_eq!(n.forward(&[3.0]), vec![0.5]);
        assert_eq!(n.inverse(&[0.5]), vec![3.0]);
    }

    #[test]
    fn normalizer_identity() {
        let n = Normalizer::identity(3);
        assert_eq!(n.dims(), 3);
        assert_eq!(n.forward(&[0.25, 0.5, 1.0]), vec![0.25, 0.5, 1.0]);
    }
}
