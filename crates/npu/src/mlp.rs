//! The floating-point MLP datapath.
//!
//! Weights are stored per layer in row-major `[neuron][input]` order — the
//! same order the PE array streams them — so the forward pass is a plain
//! sequence of dot products.

use crate::topology::Topology;
use crate::{NpuError, Result};
use serde::{Deserialize, Serialize};

/// Activation function applied by a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Activation {
    /// Logistic sigmoid, `1 / (1 + e^-x)` — the NPU's hidden-layer unit.
    Sigmoid,
    /// Identity; used on output layers of regression networks.
    Linear,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative of the activation expressed in terms of its *output* `y`
    /// (the form backpropagation wants).
    pub fn derivative_from_output(&self, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

/// One fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Layer {
    /// `weights[n * fan_in + i]` is the weight from input `i` to neuron `n`.
    pub(crate) weights: Vec<f32>,
    pub(crate) biases: Vec<f32>,
    pub(crate) fan_in: usize,
    pub(crate) activation: Activation,
}

impl Layer {
    fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) {
        out.clear();
        for n in 0..self.biases.len() {
            let row = &self.weights[n * self.fan_in..(n + 1) * self.fan_in];
            let mut acc = self.biases[n];
            for (w, x) in row.iter().zip(input) {
                acc += w * x;
            }
            out.push(self.activation.apply(acc));
        }
    }
}

/// A multi-layer perceptron — the network the NPU executes.
///
/// Construct one with [`Trainer`](crate::train::Trainer) (the compiler's
/// path) or [`Mlp::from_parameters`] (loading a stored configuration).
///
/// # Example
///
/// ```
/// # use mithra_npu::mlp::{Activation, Mlp};
/// # use mithra_npu::topology::Topology;
/// // An identity-ish single linear neuron: y = 2x + 1.
/// let t = Topology::new(&[1, 1])?;
/// let mlp = Mlp::from_parameters(t, &[2.0], &[1.0], Activation::Linear)?;
/// assert_eq!(mlp.run(&[3.0])?, vec![7.0]);
/// # Ok::<(), mithra_npu::NpuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    topology: Topology,
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds an MLP from flat parameter slices.
    ///
    /// `weights` holds each layer's matrix in row-major `[neuron][input]`
    /// order, layers concatenated input-side first; `biases` holds each
    /// non-input neuron's bias in the same layer order. Hidden layers use
    /// sigmoid activation; the output layer uses `output_activation`.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if the slice lengths do not
    /// match the topology's parameter counts.
    pub fn from_parameters(
        topology: Topology,
        weights: &[f32],
        biases: &[f32],
        output_activation: Activation,
    ) -> Result<Self> {
        if weights.len() != topology.weight_count() {
            return Err(NpuError::DimensionMismatch {
                expected: topology.weight_count(),
                actual: weights.len(),
            });
        }
        if biases.len() != topology.bias_count() {
            return Err(NpuError::DimensionMismatch {
                expected: topology.bias_count(),
                actual: biases.len(),
            });
        }
        let mut layers = Vec::with_capacity(topology.layers().len() - 1);
        let mut w_off = 0;
        let mut b_off = 0;
        let shape = topology.layers();
        for l in 0..shape.len() - 1 {
            let fan_in = shape[l];
            let fan_out = shape[l + 1];
            let activation = if l + 2 == shape.len() {
                output_activation
            } else {
                Activation::Sigmoid
            };
            layers.push(Layer {
                weights: weights[w_off..w_off + fan_in * fan_out].to_vec(),
                biases: biases[b_off..b_off + fan_out].to_vec(),
                fan_in,
                activation,
            });
            w_off += fan_in * fan_out;
            b_off += fan_out;
        }
        Ok(Self { topology, layers })
    }

    /// The network's shape.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Activation of the output layer.
    pub fn output_activation(&self) -> Activation {
        self.layers
            .last()
            .expect("topology guarantees at least one layer")
            .activation
    }

    /// Flattens the parameters back out in [`from_parameters`] order —
    /// the form the accelerator configuration FIFO transports.
    ///
    /// [`from_parameters`]: Self::from_parameters
    pub fn to_parameters(&self) -> (Vec<f32>, Vec<f32>) {
        let mut weights = Vec::with_capacity(self.topology.weight_count());
        let mut biases = Vec::with_capacity(self.topology.bias_count());
        for layer in &self.layers {
            weights.extend_from_slice(&layer.weights);
            biases.extend_from_slice(&layer.biases);
        }
        (weights, biases)
    }

    /// Runs one forward pass, allocating the output vector.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `input` does not match
    /// the input layer width.
    pub fn run(&self, input: &[f32]) -> Result<Vec<f32>> {
        let mut out = Vec::new();
        self.run_into(input, &mut out)?;
        Ok(out)
    }

    /// Runs one forward pass into a caller-provided buffer, avoiding
    /// allocation on hot paths (profiling runs millions of invocations).
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `input` does not match
    /// the input layer width.
    pub fn run_into(&self, input: &[f32], output: &mut Vec<f32>) -> Result<()> {
        if input.len() != self.topology.inputs() {
            return Err(NpuError::DimensionMismatch {
                expected: self.topology.inputs(),
                actual: input.len(),
            });
        }
        let mut current: Vec<f32> = input.to_vec();
        let mut next: Vec<f32> = Vec::new();
        for layer in &self.layers {
            layer.forward_into(&current, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        output.clear();
        output.extend_from_slice(&current);
        Ok(())
    }

    /// Runs a forward pass and additionally returns every layer's
    /// activations (used by the trainer's backward pass).
    pub(crate) fn forward_trace(&self, input: &[f32]) -> Vec<Vec<f32>> {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        for layer in &self.layers {
            let mut out = Vec::new();
            layer.forward_into(activations.last().expect("seeded above"), &mut out);
            activations.push(out);
        }
        activations
    }

    pub(crate) fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    pub(crate) fn layers(&self) -> &[Layer] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_network() -> Mlp {
        // Hand-built XOR: hidden sigmoid pair, linear output.
        let t = Topology::new(&[2, 2, 1]).unwrap();
        let weights = [
            // hidden neuron 0: OR-ish, neuron 1: AND-ish
            20.0, 20.0, //
            20.0, 20.0, //
            // output: or - 2*and
            20.0, -40.0,
        ];
        let biases = [-10.0, -30.0, -10.0];
        Mlp::from_parameters(t, &weights, &biases, Activation::Linear).unwrap()
    }

    #[test]
    fn xor_behaviour() {
        let mlp = xor_network();
        let f = |a: f32, b: f32| mlp.run(&[a, b]).unwrap()[0];
        assert!(f(0.0, 0.0) < 0.0);
        assert!(f(1.0, 0.0) > 0.0);
        assert!(f(0.0, 1.0) > 0.0);
        assert!(f(1.0, 1.0) < 0.0);
    }

    #[test]
    fn parameter_round_trip() {
        let mlp = xor_network();
        let (w, b) = mlp.to_parameters();
        let rebuilt =
            Mlp::from_parameters(mlp.topology().clone(), &w, &b, Activation::Linear).unwrap();
        assert_eq!(mlp, rebuilt);
    }

    #[test]
    fn dimension_checks() {
        let mlp = xor_network();
        assert!(matches!(
            mlp.run(&[1.0]),
            Err(NpuError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
        let t = Topology::new(&[2, 2, 1]).unwrap();
        assert!(Mlp::from_parameters(t.clone(), &[0.0; 3], &[0.0; 3], Activation::Linear).is_err());
        assert!(Mlp::from_parameters(t, &[0.0; 6], &[0.0; 1], Activation::Linear).is_err());
    }

    #[test]
    fn run_into_reuses_buffer() {
        let mlp = xor_network();
        let mut buf = vec![99.0; 8];
        mlp.run_into(&[1.0, 0.0], &mut buf).unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn sigmoid_saturates() {
        assert!((Activation::Sigmoid.apply(40.0) - 1.0).abs() < 1e-6);
        assert!(Activation::Sigmoid.apply(-40.0).abs() < 1e-6);
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
    }

    #[test]
    fn forward_trace_layer_count() {
        let mlp = xor_network();
        let trace = mlp.forward_trace(&[1.0, 1.0]);
        assert_eq!(trace.len(), 3); // input + hidden + output
        assert_eq!(trace[0], vec![1.0, 1.0]);
        assert_eq!(trace[2].len(), 1);
    }
}
