//! The floating-point MLP datapath.
//!
//! Weights are stored per layer in row-major `[neuron][input]` order — the
//! same order the PE array streams them — so the forward pass is a plain
//! sequence of dot products.

use crate::kernel::{self, KernelBackend, LANES};
use crate::topology::Topology;
use crate::{NpuError, Result};
use serde::{Deserialize, Serialize};

/// Activation function applied by a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Activation {
    /// Logistic sigmoid, `1 / (1 + e^-x)` — the NPU's hidden-layer unit.
    Sigmoid,
    /// Identity; used on output layers of regression networks.
    Linear,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative of the activation expressed in terms of its *output* `y`
    /// (the form backpropagation wants).
    pub fn derivative_from_output(&self, y: f32) -> f32 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

/// One fully connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Layer {
    /// `weights[n * fan_in + i]` is the weight from input `i` to neuron `n`.
    pub(crate) weights: Vec<f32>,
    pub(crate) biases: Vec<f32>,
    pub(crate) fan_in: usize,
    pub(crate) activation: Activation,
}

impl Layer {
    fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) {
        out.clear();
        // Four neurons share one pass over the input. Their accumulator
        // chains are independent and each keeps the exact per-neuron
        // operation order (bias, then `+= w * x` in ascending input
        // order), so the interleaving buys instruction-level parallelism
        // — a single chain is latency-bound on the FP adder — without
        // changing a single bit of the result.
        let mut rows = self.weights.chunks_exact(4 * self.fan_in);
        let mut biases = self.biases.chunks_exact(4);
        for (quad, b) in rows.by_ref().zip(biases.by_ref()) {
            let (r0, rest) = quad.split_at(self.fan_in);
            let (r1, rest) = rest.split_at(self.fan_in);
            let (r2, r3) = rest.split_at(self.fan_in);
            let (mut a0, mut a1, mut a2, mut a3) = (b[0], b[1], b[2], b[3]);
            for ((((&x, &w0), &w1), &w2), &w3) in input.iter().zip(r0).zip(r1).zip(r2).zip(r3) {
                a0 += w0 * x;
                a1 += w1 * x;
                a2 += w2 * x;
                a3 += w3 * x;
            }
            out.push(self.activation.apply(a0));
            out.push(self.activation.apply(a1));
            out.push(self.activation.apply(a2));
            out.push(self.activation.apply(a3));
        }
        for (row, &b) in rows
            .remainder()
            .chunks_exact(self.fan_in)
            .zip(biases.remainder())
        {
            let mut acc = b;
            for (&w, &x) in row.iter().zip(input) {
                acc += w * x;
            }
            out.push(self.activation.apply(acc));
        }
    }
}

/// Reusable per-layer activation buffers for allocation-free forward
/// passes ([`Mlp::forward_into`]).
///
/// One scratch adapts to any network — buffers are resized to each
/// topology on use — but buffers only stop reallocating once they have
/// seen the widest layer, so prefer [`ForwardScratch::for_topology`],
/// which presizes every buffer so no allocation happens after
/// construction (pinned by `tests/alloc_free.rs`). Keep one scratch per
/// thread and reuse it. After a forward pass the scratch retains every
/// layer's activations (slot 0 is a copy of the input), which is
/// exactly the trace backpropagation consumes.
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    /// `activations[0]` is the input copy; `activations[l + 1]` is the
    /// output of layer `l`.
    activations: Vec<Vec<f32>>,
}

impl ForwardScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch presized for `topology`, so no buffer ever
    /// reallocates — on either backend — once construction returns.
    pub fn for_topology(topology: &Topology) -> Self {
        let shape = topology.layers();
        Self {
            activations: shape.iter().map(|&w| Vec::with_capacity(w)).collect(),
        }
    }

    /// The activations at network level `l` after a forward pass
    /// (0 = the input copy, layer count = the output).
    pub(crate) fn activation(&self, l: usize) -> &[f32] {
        &self.activations[l]
    }
}

/// Reusable buffers for the batched forward pass
/// ([`Mlp::forward_batch_into`]): two tile ping-pong buffers for the
/// SIMD backend and two per-sample layer buffers for the scalar
/// reference. [`BatchScratch::for_topology`] presizes everything.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    tile_a: Vec<f32>,
    tile_b: Vec<f32>,
    cur: Vec<f32>,
    next: Vec<f32>,
}

impl BatchScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scratch presized for `topology`, so no buffer ever
    /// reallocates once construction returns.
    pub fn for_topology(topology: &Topology) -> Self {
        let widest = topology.layers().iter().copied().max().unwrap_or(0);
        Self {
            tile_a: vec![0.0; widest * LANES],
            tile_b: vec![0.0; widest * LANES],
            cur: Vec::with_capacity(widest),
            next: Vec::with_capacity(widest),
        }
    }

    fn ensure(&mut self, widest: usize) {
        if self.tile_a.len() < widest * LANES {
            self.tile_a.resize(widest * LANES, 0.0);
            self.tile_b.resize(widest * LANES, 0.0);
        }
    }
}

/// A multi-layer perceptron — the network the NPU executes.
///
/// Construct one with [`Trainer`](crate::train::Trainer) (the compiler's
/// path) or [`Mlp::from_parameters`] (loading a stored configuration).
///
/// # Example
///
/// ```
/// # use mithra_npu::mlp::{Activation, Mlp};
/// # use mithra_npu::topology::Topology;
/// // An identity-ish single linear neuron: y = 2x + 1.
/// let t = Topology::new(&[1, 1])?;
/// let mlp = Mlp::from_parameters(t, &[2.0], &[1.0], Activation::Linear)?;
/// assert_eq!(mlp.run(&[3.0])?, vec![7.0]);
/// # Ok::<(), mithra_npu::NpuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    topology: Topology,
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds an MLP from flat parameter slices.
    ///
    /// `weights` holds each layer's matrix in row-major `[neuron][input]`
    /// order, layers concatenated input-side first; `biases` holds each
    /// non-input neuron's bias in the same layer order. Hidden layers use
    /// sigmoid activation; the output layer uses `output_activation`.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if the slice lengths do not
    /// match the topology's parameter counts.
    pub fn from_parameters(
        topology: Topology,
        weights: &[f32],
        biases: &[f32],
        output_activation: Activation,
    ) -> Result<Self> {
        if weights.len() != topology.weight_count() {
            return Err(NpuError::DimensionMismatch {
                expected: topology.weight_count(),
                actual: weights.len(),
            });
        }
        if biases.len() != topology.bias_count() {
            return Err(NpuError::DimensionMismatch {
                expected: topology.bias_count(),
                actual: biases.len(),
            });
        }
        let mut layers = Vec::with_capacity(topology.layers().len() - 1);
        let mut w_off = 0;
        let mut b_off = 0;
        let shape = topology.layers();
        for l in 0..shape.len() - 1 {
            let fan_in = shape[l];
            let fan_out = shape[l + 1];
            let activation = if l + 2 == shape.len() {
                output_activation
            } else {
                Activation::Sigmoid
            };
            layers.push(Layer {
                weights: weights[w_off..w_off + fan_in * fan_out].to_vec(),
                biases: biases[b_off..b_off + fan_out].to_vec(),
                fan_in,
                activation,
            });
            w_off += fan_in * fan_out;
            b_off += fan_out;
        }
        Ok(Self { topology, layers })
    }

    /// The network's shape.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Activation of the output layer.
    pub fn output_activation(&self) -> Activation {
        self.layers
            .last()
            .expect("topology guarantees at least one layer")
            .activation
    }

    /// Flattens the parameters back out in [`from_parameters`] order —
    /// the form the accelerator configuration FIFO transports.
    ///
    /// [`from_parameters`]: Self::from_parameters
    pub fn to_parameters(&self) -> (Vec<f32>, Vec<f32>) {
        let mut weights = Vec::with_capacity(self.topology.weight_count());
        let mut biases = Vec::with_capacity(self.topology.bias_count());
        for layer in &self.layers {
            weights.extend_from_slice(&layer.weights);
            biases.extend_from_slice(&layer.biases);
        }
        (weights, biases)
    }

    /// Runs one forward pass, allocating the output vector.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `input` does not match
    /// the input layer width.
    pub fn run(&self, input: &[f32]) -> Result<Vec<f32>> {
        let mut out = Vec::new();
        self.run_into(input, &mut out)?;
        Ok(out)
    }

    /// Runs one forward pass into a caller-provided buffer, avoiding
    /// allocation on hot paths (profiling runs millions of invocations).
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `input` does not match
    /// the input layer width.
    pub fn run_into(&self, input: &[f32], output: &mut Vec<f32>) -> Result<()> {
        if input.len() != self.topology.inputs() {
            return Err(NpuError::DimensionMismatch {
                expected: self.topology.inputs(),
                actual: input.len(),
            });
        }
        let mut current: Vec<f32> = input.to_vec();
        let mut next: Vec<f32> = Vec::new();
        for layer in &self.layers {
            layer.forward_into(&current, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        output.clear();
        output.extend_from_slice(&current);
        Ok(())
    }

    /// Runs one forward pass through caller-owned scratch buffers — the
    /// hot-path entry point, performing no allocation once the scratch has
    /// warmed up. Returns the output activations borrowed from the
    /// scratch; intermediate activations stay readable there afterwards
    /// (the trainer's backward pass reads them as its trace).
    ///
    /// The per-neuron arithmetic is identical to [`run_into`] — same
    /// dot-product order — so the two entry points are bit-equal.
    ///
    /// [`run_into`]: Self::run_into
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `input` does not match
    /// the input layer width.
    pub fn forward_into<'s>(
        &self,
        input: &[f32],
        scratch: &'s mut ForwardScratch,
    ) -> Result<&'s [f32]> {
        if input.len() != self.topology.inputs() {
            return Err(NpuError::DimensionMismatch {
                expected: self.topology.inputs(),
                actual: input.len(),
            });
        }
        scratch
            .activations
            .resize_with(self.layers.len() + 1, Vec::new);
        scratch.activations[0].clear();
        scratch.activations[0].extend_from_slice(input);
        for (l, layer) in self.layers.iter().enumerate() {
            let (prev, next) = scratch.activations.split_at_mut(l + 1);
            layer.forward_into(&prev[l], &mut next[0]);
        }
        Ok(scratch
            .activations
            .last()
            .expect("seeded with the input above"))
    }

    /// Backend-dispatched [`forward_into`]: `Scalar` runs the bit-exact
    /// reference path; `Simd` runs the single-lane kernel
    /// ([`kernel::layer_forward_lane`]), which replicates a tile lane's
    /// exact operation sequence and is therefore bit-identical to the
    /// same sample inside a full [`forward_batch_into_with`] tile
    /// (per-lane independence — see [`crate::kernel`]) without paying
    /// for seven padding lanes. Both paths leave the full activation
    /// trace in `scratch`.
    ///
    /// [`forward_into`]: Self::forward_into
    /// [`forward_batch_into`]: Self::forward_batch_into
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `input` does not match
    /// the input layer width.
    pub fn forward_into_with<'s>(
        &self,
        backend: KernelBackend,
        input: &[f32],
        scratch: &'s mut ForwardScratch,
    ) -> Result<&'s [f32]> {
        match backend {
            KernelBackend::Scalar => self.forward_into(input, scratch),
            KernelBackend::Simd => {
                if input.len() != self.topology.inputs() {
                    return Err(NpuError::DimensionMismatch {
                        expected: self.topology.inputs(),
                        actual: input.len(),
                    });
                }
                scratch
                    .activations
                    .resize_with(self.layers.len() + 1, Vec::new);
                scratch.activations[0].clear();
                scratch.activations[0].extend_from_slice(input);
                for (l, layer) in self.layers.iter().enumerate() {
                    let fan_out = layer.biases.len();
                    let (prev, next) = scratch.activations.split_at_mut(l + 1);
                    next[0].clear();
                    next[0].resize(fan_out, 0.0);
                    kernel::layer_forward_lane(
                        &layer.weights,
                        &layer.biases,
                        layer.fan_in,
                        layer.activation,
                        &prev[l],
                        &mut next[0],
                    );
                }
                Ok(scratch
                    .activations
                    .last()
                    .expect("seeded with the input above"))
            }
        }
    }

    /// Batched matrix–matrix forward on the **scalar reference** path:
    /// `inputs` holds `count` samples concatenated sample-major, and
    /// `outputs` receives the `count` output vectors in the same layout.
    /// Arithmetic is exactly a per-invocation [`run_into`] loop — same
    /// operation order per sample, bit-identical — with the per-layer
    /// buffers reused from `scratch` instead of reallocated.
    ///
    /// [`run_into`]: Self::run_into
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `inputs` is not
    /// `count` input-layer widths long.
    pub fn forward_batch_into(
        &self,
        inputs: &[f32],
        count: usize,
        outputs: &mut Vec<f32>,
        scratch: &mut BatchScratch,
    ) -> Result<()> {
        let in_dim = self.topology.inputs();
        if inputs.len() != count * in_dim {
            return Err(NpuError::DimensionMismatch {
                expected: count * in_dim,
                actual: inputs.len(),
            });
        }
        outputs.clear();
        for input in inputs.chunks_exact(in_dim.max(1)).take(count) {
            scratch.cur.clear();
            scratch.cur.extend_from_slice(input);
            for layer in &self.layers {
                layer.forward_into(&scratch.cur, &mut scratch.next);
                std::mem::swap(&mut scratch.cur, &mut scratch.next);
            }
            outputs.extend_from_slice(&scratch.cur);
        }
        Ok(())
    }

    /// Backend-dispatched [`forward_batch_into`]. The `Simd` backend
    /// packs [`LANES`] samples per tile (the last tile zero-padded) and
    /// amortizes one weight traversal across all of them; each sample's
    /// result is bit-identical to [`forward_into_with`] on the same
    /// backend.
    ///
    /// [`forward_batch_into`]: Self::forward_batch_into
    /// [`forward_into_with`]: Self::forward_into_with
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::DimensionMismatch`] if `inputs` is not
    /// `count` input-layer widths long.
    pub fn forward_batch_into_with(
        &self,
        backend: KernelBackend,
        inputs: &[f32],
        count: usize,
        outputs: &mut Vec<f32>,
        scratch: &mut BatchScratch,
    ) -> Result<()> {
        match backend {
            KernelBackend::Scalar => self.forward_batch_into(inputs, count, outputs, scratch),
            KernelBackend::Simd => {
                let in_dim = self.topology.inputs();
                let out_dim = self.topology.outputs();
                if inputs.len() != count * in_dim {
                    return Err(NpuError::DimensionMismatch {
                        expected: count * in_dim,
                        actual: inputs.len(),
                    });
                }
                scratch.ensure(self.widest());
                outputs.clear();
                outputs.resize(count * out_dim, 0.0);
                for group in 0..count.div_ceil(LANES) {
                    let base = group * LANES;
                    let lanes = LANES.min(count - base);
                    if lanes <= kernel::LANE_REMAINDER_CUTOFF {
                        // A thin remainder group: a padded tile would
                        // spend most of its lanes on zeros, so each
                        // sample runs the single-lane kernel instead —
                        // bit-identical to its lane in a padded tile.
                        for l in 0..lanes {
                            let sample = &inputs[(base + l) * in_dim..(base + l + 1) * in_dim];
                            scratch.tile_a[..in_dim].copy_from_slice(sample);
                            for layer in &self.layers {
                                let fan_out = layer.biases.len();
                                kernel::layer_forward_lane(
                                    &layer.weights,
                                    &layer.biases,
                                    layer.fan_in,
                                    layer.activation,
                                    &scratch.tile_a[..layer.fan_in],
                                    &mut scratch.tile_b[..fan_out],
                                );
                                std::mem::swap(&mut scratch.tile_a, &mut scratch.tile_b);
                            }
                            outputs[(base + l) * out_dim..(base + l + 1) * out_dim]
                                .copy_from_slice(&scratch.tile_a[..out_dim]);
                        }
                        continue;
                    }
                    for i in 0..in_dim {
                        let tile = &mut scratch.tile_a[i * LANES..(i + 1) * LANES];
                        for (l, t) in tile.iter_mut().enumerate() {
                            *t = if l < lanes {
                                inputs[(base + l) * in_dim + i]
                            } else {
                                0.0
                            };
                        }
                    }
                    for layer in &self.layers {
                        let fan_out = layer.biases.len();
                        kernel::layer_forward_tile(
                            &layer.weights,
                            &layer.biases,
                            layer.fan_in,
                            layer.activation,
                            &scratch.tile_a[..layer.fan_in * LANES],
                            &mut scratch.tile_b[..fan_out * LANES],
                        );
                        std::mem::swap(&mut scratch.tile_a, &mut scratch.tile_b);
                    }
                    for n in 0..out_dim {
                        for l in 0..lanes {
                            outputs[(base + l) * out_dim + n] = scratch.tile_a[n * LANES + l];
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Width of the widest level (input, hidden or output).
    pub(crate) fn widest(&self) -> usize {
        self.topology
            .layers()
            .iter()
            .copied()
            .max()
            .expect("a topology has at least two levels")
    }

    pub(crate) fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    pub(crate) fn layers(&self) -> &[Layer] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_network() -> Mlp {
        // Hand-built XOR: hidden sigmoid pair, linear output.
        let t = Topology::new(&[2, 2, 1]).unwrap();
        let weights = [
            // hidden neuron 0: OR-ish, neuron 1: AND-ish
            20.0, 20.0, //
            20.0, 20.0, //
            // output: or - 2*and
            20.0, -40.0,
        ];
        let biases = [-10.0, -30.0, -10.0];
        Mlp::from_parameters(t, &weights, &biases, Activation::Linear).unwrap()
    }

    #[test]
    fn xor_behaviour() {
        let mlp = xor_network();
        let f = |a: f32, b: f32| mlp.run(&[a, b]).unwrap()[0];
        assert!(f(0.0, 0.0) < 0.0);
        assert!(f(1.0, 0.0) > 0.0);
        assert!(f(0.0, 1.0) > 0.0);
        assert!(f(1.0, 1.0) < 0.0);
    }

    #[test]
    fn parameter_round_trip() {
        let mlp = xor_network();
        let (w, b) = mlp.to_parameters();
        let rebuilt =
            Mlp::from_parameters(mlp.topology().clone(), &w, &b, Activation::Linear).unwrap();
        assert_eq!(mlp, rebuilt);
    }

    #[test]
    fn dimension_checks() {
        let mlp = xor_network();
        assert!(matches!(
            mlp.run(&[1.0]),
            Err(NpuError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
        let t = Topology::new(&[2, 2, 1]).unwrap();
        assert!(Mlp::from_parameters(t.clone(), &[0.0; 3], &[0.0; 3], Activation::Linear).is_err());
        assert!(Mlp::from_parameters(t, &[0.0; 6], &[0.0; 1], Activation::Linear).is_err());
    }

    #[test]
    fn run_into_reuses_buffer() {
        let mlp = xor_network();
        let mut buf = vec![99.0; 8];
        mlp.run_into(&[1.0, 0.0], &mut buf).unwrap();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn sigmoid_saturates() {
        assert!((Activation::Sigmoid.apply(40.0) - 1.0).abs() < 1e-6);
        assert!(Activation::Sigmoid.apply(-40.0).abs() < 1e-6);
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
    }

    #[test]
    fn forward_into_matches_run_and_keeps_trace() {
        let mlp = xor_network();
        let mut scratch = ForwardScratch::new();
        let out = mlp
            .forward_into(&[1.0, 0.0], &mut scratch)
            .unwrap()
            .to_vec();
        assert_eq!(out, mlp.run(&[1.0, 0.0]).unwrap());
        // The scratch retains the full trace: input + hidden + output.
        assert_eq!(scratch.activation(0), &[1.0, 0.0]);
        assert_eq!(scratch.activation(2).len(), 1);
        // Reuse across inputs must not leak previous activations.
        let again = mlp
            .forward_into(&[0.0, 0.0], &mut scratch)
            .unwrap()
            .to_vec();
        assert_eq!(again, mlp.run(&[0.0, 0.0]).unwrap());
    }

    #[test]
    fn forward_into_rejects_bad_width() {
        let mlp = xor_network();
        let mut scratch = ForwardScratch::new();
        assert!(matches!(
            mlp.forward_into(&[1.0], &mut scratch),
            Err(NpuError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }
}
