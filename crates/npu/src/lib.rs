//! A neural processing unit (NPU) — the approximate accelerator MITHRA
//! controls.
//!
//! The NPU (Esmaeilzadeh et al., MICRO 2012; paper reference \[16\]) replaces
//! a frequently executed *safe-to-approximate* function with a small
//! multi-layer perceptron trained offline to mimic it. The processor
//! communicates with the accelerator through enqueue/dequeue ISA extensions
//! and three FIFOs (inputs, outputs, configuration); the datapath is eight
//! processing elements (PEs) that evaluate the network layer by layer.
//!
//! This crate implements the complete accelerator substrate:
//!
//! * [`topology`] — network shapes like `6→8→3→1` (Table I of the paper);
//! * [`mlp`] — the floating-point reference datapath;
//! * [`fixed`] — a fixed-point (Q-format) datapath with a sigmoid LUT,
//!   mirroring what the hardware actually computes;
//! * [`train`] — the offline backpropagation trainer the compiler runs;
//! * [`fifo`] — the bounded queues of the core↔NPU interface;
//! * [`pe`] — the 8-PE layer schedule and its cycle cost;
//! * [`cost`] — per-invocation cycle and operation counts consumed by the
//!   system-level energy model.
//!
//! # Example: train an NPU to approximate a function
//!
//! ```
//! use mithra_npu::prelude::*;
//!
//! // Approximate f(x, y) = x * y over [0, 1]^2.
//! let samples: Vec<(Vec<f32>, Vec<f32>)> = (0..400)
//!     .map(|i| {
//!         let x = (i % 20) as f32 / 19.0;
//!         let y = (i / 20) as f32 / 19.0;
//!         (vec![x, y], vec![x * y])
//!     })
//!     .collect();
//!
//! let topology = Topology::new(&[2, 4, 1])?;
//! let mlp = Trainer::new(topology)
//!     .epochs(300)
//!     .learning_rate(0.4)
//!     .seed(7)
//!     .train(&samples)?;
//!
//! let out = mlp.run(&[0.5, 0.5])?;
//! assert!((out[0] - 0.25).abs() < 0.05);
//! # Ok::<(), mithra_npu::NpuError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod cost;
pub mod fault;
pub mod fifo;
pub mod fixed;
pub mod kernel;
pub mod mlp;
pub mod pe;
pub mod simulator;
pub mod topology;
pub mod train;

mod error;

pub use error::NpuError;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NpuError>;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::cost::{InvocationCost, NpuCostModel};
    pub use crate::kernel::KernelBackend;
    pub use crate::mlp::{Activation, Mlp};
    pub use crate::topology::Topology;
    pub use crate::train::{Normalizer, Trainer};
    pub use crate::NpuError;
}
