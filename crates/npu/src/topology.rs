//! Network topologies — the `6→8→3→1` shapes of the paper's Table I.

use crate::{NpuError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The layer widths of a multi-layer perceptron, input layer first.
///
/// A valid topology has at least two layers (input and output) and no
/// zero-width layer.
///
/// # Example
///
/// ```
/// # use mithra_npu::topology::Topology;
/// let t = Topology::new(&[6, 8, 3, 1])?;
/// assert_eq!(t.inputs(), 6);
/// assert_eq!(t.outputs(), 1);
/// assert_eq!(t.to_string(), "6->8->3->1");
/// assert_eq!(t.weight_count(), 6 * 8 + 8 * 3 + 3 * 1);
/// # Ok::<(), mithra_npu::NpuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    layers: Vec<usize>,
}

impl Topology {
    /// Creates a topology from layer widths, input layer first.
    ///
    /// # Errors
    ///
    /// Returns [`NpuError::InvalidTopology`] if fewer than two layers are
    /// given or any layer is empty.
    pub fn new(layers: &[usize]) -> Result<Self> {
        if layers.len() < 2 {
            return Err(NpuError::InvalidTopology {
                reason: "at least an input and an output layer are required",
            });
        }
        if layers.contains(&0) {
            return Err(NpuError::InvalidTopology {
                reason: "layers must have at least one neuron",
            });
        }
        Ok(Self {
            layers: layers.to_vec(),
        })
    }

    /// Layer widths, input layer first.
    pub fn layers(&self) -> &[usize] {
        &self.layers
    }

    /// Width of the input layer.
    pub fn inputs(&self) -> usize {
        self.layers[0]
    }

    /// Width of the output layer.
    pub fn outputs(&self) -> usize {
        *self.layers.last().expect("validated: at least two layers")
    }

    /// Number of weight parameters (excluding biases).
    pub fn weight_count(&self) -> usize {
        self.layers.windows(2).map(|w| w[0] * w[1]).sum()
    }

    /// Number of bias parameters (one per non-input neuron).
    pub fn bias_count(&self) -> usize {
        self.layers.iter().skip(1).sum()
    }

    /// Total parameter count: weights plus biases.
    pub fn parameter_count(&self) -> usize {
        self.weight_count() + self.bias_count()
    }

    /// Total multiply-accumulate operations for one forward pass.
    pub fn macs_per_invocation(&self) -> usize {
        self.weight_count()
    }

    /// Number of hidden + output neurons (sigmoid evaluations per pass).
    pub fn neuron_count(&self) -> usize {
        self.bias_count()
    }

    /// Storage for the parameters in bytes, assuming `bytes_per_weight`
    /// (the NPU stores 16- or 32-bit fixed-point weights).
    pub fn parameter_bytes(&self, bytes_per_weight: usize) -> usize {
        self.parameter_count() * bytes_per_weight
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for w in &self.layers {
            if !first {
                write!(f, "->")?;
            }
            write!(f, "{w}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for Topology {
    type Err = NpuError;

    /// Parses the paper's arrow notation: `"6->8->3->1"` (also accepts the
    /// unicode arrow `→`).
    fn from_str(s: &str) -> Result<Self> {
        let widths: std::result::Result<Vec<usize>, _> = s
            .replace('→', "->")
            .split("->")
            .map(|p| p.trim().parse::<usize>())
            .collect();
        match widths {
            Ok(w) => Topology::new(&w),
            Err(_) => Err(NpuError::InvalidTopology {
                reason: "could not parse layer widths",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_table1_topologies() {
        // Spot-check against the paper's Table I shapes.
        let cases: &[(&str, usize)] = &[
            ("6->8->3->1", 6 * 8 + 8 * 3 + 3),
            ("1->4->4->2", 4 + 16 + 8),
            ("2->8->2", 16 + 16),
            ("18->32->8->2", 18 * 32 + 32 * 8 + 16),
            ("64->16->64", 1024 + 1024),
            ("9->8->1", 72 + 8),
        ];
        for (s, weights) in cases {
            let t: Topology = s.parse().unwrap();
            assert_eq!(t.weight_count(), *weights, "weights of {s}");
            assert_eq!(t.to_string(), *s);
        }
    }

    #[test]
    fn unicode_arrows_parse() {
        let t: Topology = "2→8→2".parse().unwrap();
        assert_eq!(t.layers(), &[2, 8, 2]);
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(Topology::new(&[]).is_err());
        assert!(Topology::new(&[5]).is_err());
        assert!(Topology::new(&[3, 0, 1]).is_err());
        assert!("6->x->1".parse::<Topology>().is_err());
        assert!("".parse::<Topology>().is_err());
    }

    #[test]
    fn bias_and_parameter_counts() {
        let t = Topology::new(&[2, 8, 2]).unwrap();
        assert_eq!(t.bias_count(), 10);
        assert_eq!(t.parameter_count(), 42);
        assert_eq!(t.parameter_bytes(2), 84);
        assert_eq!(t.neuron_count(), 10);
    }
}
