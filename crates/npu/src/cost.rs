//! Per-invocation cost accounting: the quantities the system-level energy
//! model (in `mithra-sim`) converts to joules.

use crate::pe::PeArray;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Operation and cycle counts for one accelerator invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvocationCost {
    /// Total accelerator cycles for the invocation.
    pub cycles: u64,
    /// Multiply-accumulate operations performed.
    pub macs: u64,
    /// Sigmoid LUT lookups (one per hidden/output neuron).
    pub lut_lookups: u64,
    /// Weight-buffer reads (one per MAC).
    pub weight_reads: u64,
    /// Elements moved through the input queue.
    pub inputs_streamed: u64,
    /// Elements moved through the output queue.
    pub outputs_streamed: u64,
}

impl InvocationCost {
    /// Component-wise sum — cost of running two networks back to back
    /// (e.g. the neural classifier followed by the accelerator itself).
    pub fn combined(&self, other: &InvocationCost) -> InvocationCost {
        InvocationCost {
            cycles: self.cycles + other.cycles,
            macs: self.macs + other.macs,
            lut_lookups: self.lut_lookups + other.lut_lookups,
            weight_reads: self.weight_reads + other.weight_reads,
            inputs_streamed: self.inputs_streamed + other.inputs_streamed,
            outputs_streamed: self.outputs_streamed + other.outputs_streamed,
        }
    }
}

/// Computes invocation costs for networks run on a given PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NpuCostModel {
    pe: PeArray,
}

impl NpuCostModel {
    /// Cost model over the default 8-PE NPU.
    pub fn new() -> Self {
        Self {
            pe: PeArray::npu_default(),
        }
    }

    /// Cost model over a custom PE array.
    pub fn with_pe_array(pe: PeArray) -> Self {
        Self { pe }
    }

    /// The underlying PE array parameters.
    pub fn pe_array(&self) -> &PeArray {
        &self.pe
    }

    /// Full cost of one invocation of a network with this `topology`.
    ///
    /// # Example
    ///
    /// ```
    /// # use mithra_npu::cost::NpuCostModel;
    /// # use mithra_npu::topology::Topology;
    /// let model = NpuCostModel::new();
    /// let t = Topology::new(&[2, 8, 2])?;
    /// let cost = model.invocation(&t);
    /// assert_eq!(cost.macs, 32);
    /// assert!(cost.cycles > 0);
    /// # Ok::<(), mithra_npu::NpuError>(())
    /// ```
    pub fn invocation(&self, topology: &Topology) -> InvocationCost {
        InvocationCost {
            cycles: self.pe.invocation_cycles(topology),
            macs: topology.macs_per_invocation() as u64,
            lut_lookups: topology.neuron_count() as u64,
            weight_reads: topology.macs_per_invocation() as u64,
            inputs_streamed: topology.inputs() as u64,
            outputs_streamed: topology.outputs() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_counts_are_consistent() {
        let model = NpuCostModel::new();
        let t = Topology::new(&[6, 8, 3, 1]).unwrap();
        let c = model.invocation(&t);
        assert_eq!(c.macs, (6 * 8 + 8 * 3 + 3) as u64);
        assert_eq!(c.lut_lookups, 12);
        assert_eq!(c.weight_reads, c.macs);
        assert_eq!(c.inputs_streamed, 6);
        assert_eq!(c.outputs_streamed, 1);
    }

    #[test]
    fn combined_adds_componentwise() {
        let model = NpuCostModel::new();
        let a = model.invocation(&Topology::new(&[2, 4, 1]).unwrap());
        let b = model.invocation(&Topology::new(&[2, 8, 2]).unwrap());
        let c = a.combined(&b);
        assert_eq!(c.cycles, a.cycles + b.cycles);
        assert_eq!(c.macs, a.macs + b.macs);
    }

    #[test]
    fn default_is_npu_default() {
        assert_eq!(NpuCostModel::default(), NpuCostModel::new());
    }
}
