use std::error::Error;
use std::fmt;

/// Errors produced by the NPU substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NpuError {
    /// A topology had fewer than two layers or a zero-width layer.
    InvalidTopology {
        /// Why the shape was rejected.
        reason: &'static str,
    },
    /// An input vector's length did not match the network's input layer.
    DimensionMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Number of elements supplied.
        actual: usize,
    },
    /// The training set was empty or inconsistent.
    InvalidTrainingSet {
        /// Why the training set was rejected.
        reason: &'static str,
    },
    /// A FIFO operation failed (enqueue to a full queue, dequeue from an
    /// empty one). Recoverable: the hardware stalls the issuing
    /// instruction until the queue drains, so simulators translate this
    /// into stall cycles rather than aborting.
    Fifo {
        /// Which operation failed.
        operation: &'static str,
        /// Queue capacity at the time.
        capacity: usize,
        /// Elements queued when the operation failed (`capacity` for a
        /// refused enqueue, 0 for a refused dequeue).
        occupancy: usize,
    },
}

impl fmt::Display for NpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NpuError::InvalidTopology { reason } => {
                write!(f, "invalid network topology: {reason}")
            }
            NpuError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} elements, got {actual}"
                )
            }
            NpuError::InvalidTrainingSet { reason } => {
                write!(f, "invalid training set: {reason}")
            }
            NpuError::Fifo {
                operation,
                capacity,
                occupancy,
            } => {
                write!(
                    f,
                    "fifo {operation} stalled (occupancy {occupancy}/{capacity})"
                )
            }
        }
    }
}

impl Error for NpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NpuError>();
    }

    #[test]
    fn display_messages() {
        let e = NpuError::DimensionMismatch {
            expected: 6,
            actual: 2,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch: expected 6 elements, got 2"
        );
    }
}
