//! Cross-crate regression test for the config-drift bug: the runner's
//! `prepare_base` + `certify_at` path and the one-call `pipeline::compile`
//! must agree on the compiled threshold (and classifier inputs) for the
//! same experiment configuration — including a **non-default** NPU
//! configuration, which the pre-session runner silently replaced with
//! `NpuTrainConfig::default()`.

use mithra_axbench::dataset::DatasetScale;
use mithra_bench::runner::{certify_at, prepare_base, ExperimentConfig};
use mithra_core::function::NpuTrainConfig;
use mithra_core::pipeline;

fn drifty_config() -> ExperimentConfig {
    ExperimentConfig {
        scale: DatasetScale::Smoke,
        compile_datasets: 15,
        validation_datasets: 4,
        quality_levels: vec![0.10],
        confidence: 0.9,
        success_rate: 0.5,
        benchmarks: vec!["sobel".into()],
        // Deliberately non-default: the old runner hardcoded the default
        // train config and `10.min(compile_datasets)` train sets, so any
        // drift here changes the trained NPU and hence the threshold.
        npu: NpuTrainConfig {
            epochs: Some(25),
            max_samples: 1500,
            seed: 11,
        },
        npu_train_datasets: 3,
        cache_dir: None,
        ..ExperimentConfig::default()
    }
}

#[test]
fn runner_path_matches_pipeline_compile() {
    let cfg = drifty_config();
    let quality = cfg.quality_levels[0];

    let bench = cfg.suite().unwrap().remove(0);
    let base = prepare_base(bench, &cfg).unwrap();
    let prepared = certify_at(&base, &cfg, quality).unwrap();

    let bench = cfg.suite().unwrap().remove(0);
    let compiled = pipeline::compile(bench, &cfg.compile_config(quality).unwrap()).unwrap();

    assert_eq!(
        prepared.compiled.threshold.threshold, compiled.threshold.threshold,
        "runner and pipeline must certify the identical threshold"
    );
    assert_eq!(
        prepared.compiled.threshold.successes,
        compiled.threshold.successes
    );
    assert_eq!(
        prepared.compiled.threshold.trials,
        compiled.threshold.trials
    );
    assert_eq!(
        prepared.compiled.training_data.len(),
        compiled.training_data.len()
    );
    assert_eq!(prepared.compiled.profiles.len(), compiled.profiles.len());
}
