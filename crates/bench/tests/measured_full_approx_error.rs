//! The extended (non-paper) workloads have no published Table I error
//! level, so their `paper_full_approx_error` constants are *measured*:
//! the mean quality loss of the trained NPU under full approximation
//! (threshold = ∞, every invocation accelerated) on the full-scale
//! validation datasets — exactly the number `table1_benchmarks` prints
//! in its "error (full approx)" column. This test re-derives the
//! measurement and pins each declared constant to it, so the constants
//! cannot silently rot when a kernel, topology, or dataset generator
//! changes. The paper's six benchmarks are exempt: their column quotes
//! the publication, not a measurement.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::suite;
use mithra_bench::runner::{ExperimentConfig, VALIDATION_SEED_BASE};
use mithra_core::session::{profile_validation, CompileSession};
use std::sync::Arc;

/// Mean full-approximation quality loss over `datasets` unseen
/// full-scale validation datasets — the `table1_benchmarks` measurement,
/// restated without the table plumbing.
fn measured_full_approx_error(name: &str, datasets: usize) -> f64 {
    let bench: Arc<dyn Benchmark> = suite::by_name(name).expect("workload is registered").into();
    let cfg = ExperimentConfig {
        benchmarks: vec![name.to_string()],
        ..ExperimentConfig::default()
    };
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    let compile_cfg = cfg
        .compile_config(quality)
        .expect("default quality levels are valid");
    let session = CompileSession::new(bench, compile_cfg.clone())
        .train_npu()
        .expect("NPU training succeeds on suite workloads");
    let (function, _report) = session.into_parts();
    let (profiles, _validation) =
        profile_validation(&function, &compile_cfg, VALIDATION_SEED_BASE, datasets);
    profiles
        .iter()
        .map(|p| {
            p.replay_with_threshold(&function, f32::INFINITY)
                .quality_loss
        })
        .sum::<f64>()
        / profiles.len() as f64
}

/// The declared constant must sit within ±20% of the measurement on a
/// 50-dataset slice of the validation window (the committed
/// `results/table1_benchmarks_extended.txt` row uses the full 250; the
/// slice keeps the test under a few seconds while staying well inside
/// the band — the per-dataset loss variance is small at 2048
/// invocations per dataset).
fn assert_declared_matches_measured(name: &str) {
    let declared = suite::by_name(name)
        .expect("workload is registered")
        .paper_full_approx_error();
    let measured = measured_full_approx_error(name, 50);
    assert!(
        (measured - declared).abs() <= 0.2 * declared,
        "{name}: declared full-approx error {declared} drifted from measured {measured}"
    );
}

#[test]
fn kmeans_declared_full_approx_error_is_the_measured_one() {
    assert_declared_matches_measured("kmeans");
}

#[test]
fn raytrace_declared_full_approx_error_is_the_measured_one() {
    assert_declared_matches_measured("raytrace");
}
