//! Minimal aligned-text table printing for experiment output.

/// An aligned text table accumulated row by row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells beyond the header width are kept as-is).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1"]);
        t.row(["b", "22222"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
        // Columns align: "value" and "1" start at the same offset.
        let header_off = lines[0].find("value").unwrap();
        let row_off = lines[2].find('1').unwrap();
        assert_eq!(header_off, row_off);
    }

    #[test]
    fn empty_table_has_header_only() {
        let t = TextTable::new(["a"]);
        assert_eq!(t.render().lines().count(), 2);
    }
}
