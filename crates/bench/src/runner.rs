//! The shared experiment runner.
//!
//! Every figure/table binary drives the same staged compile pipeline
//! ([`CompileSession`] in `mithra-core`); this module adds the harness
//! conveniences on top: command-line parsing, the quality-independent
//! [`BenchmarkBase`] that sweeps re-certify against, validation-set
//! profiling, and design evaluation. Per-stage instrumentation
//! ([`mithra_core::session::StageReport`]) is printed to **stderr** so
//! the tables on stdout stay byte-comparable across runs.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_core::cache::CacheConfig;
use mithra_core::classifier::Classifier;
use mithra_core::function::{AcceleratedFunction, NpuTrainConfig};
use mithra_core::pipeline::{CompileConfig, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_core::random::RandomFilter;
use mithra_core::session::{profile_validation, CompileSession};
use mithra_core::threshold::QualitySpec;
use mithra_core::Result;
use mithra_npu::kernel::KernelBackend;
use mithra_sim::report::{BenchmarkSummary, CompileCost};
use mithra_sim::system::{simulate, RunResult, SimOptions};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

pub use mithra_core::profile::{collect_profiles_parallel, default_threads};

/// Seed offset separating validation datasets from compilation datasets —
/// the paper's "250 different unseen datasets". Re-exported from the
/// pinned workspace partition in [`mithra_core::seeds`].
pub use mithra_core::seeds::VALIDATION_SEED_BASE;

/// Default root of the on-disk artifact cache (relative to the working
/// directory; disable with `--no-cache`).
pub const DEFAULT_CACHE_DIR: &str = "target/mithra-cache";

const USAGE: &str = "usage: --scale smoke|full --datasets N --validation N \
                     --quality 2.5,5,7.5,10 --confidence 0.95 --success-rate 0.90 \
                     --bench name,name --npu-epochs N --npu-train-datasets N \
                     --cache-dir PATH --no-cache --fault-rates 0.0005,0.002,0.008 \
                     --fault-seed N --watchdog-period N --threads N \
                     --kernel scalar|simd";

/// A command-line parsing or configuration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError {
    message: String,
}

impl ArgError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The problem, without the usage banner.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\n{USAGE}", self.message)
    }
}

impl std::error::Error for ArgError {}

/// Experiment-wide configuration, parsed from the command line.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset scale.
    pub scale: DatasetScale,
    /// Number of compilation datasets (paper: 250).
    pub compile_datasets: usize,
    /// Number of unseen validation datasets (paper: 250).
    pub validation_datasets: usize,
    /// Quality-loss levels to sweep (fractions).
    pub quality_levels: Vec<f64>,
    /// Confidence level β.
    pub confidence: f64,
    /// Required success rate S.
    pub success_rate: f64,
    /// Benchmarks to run (defaults to the whole suite).
    pub benchmarks: Vec<String>,
    /// NPU training settings, honored by every compile path.
    pub npu: NpuTrainConfig,
    /// Compilation datasets feeding NPU training (clamped to
    /// `compile_datasets`).
    pub npu_train_datasets: usize,
    /// Artifact-cache root; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Per-bit/per-invocation fault rates the robustness sweep injects
    /// (raw probabilities, not percentages).
    pub fault_rates: Vec<f64>,
    /// Master seed for deterministic fault plans.
    pub fault_seed: u64,
    /// Sampling period of the runtime quality watchdog (every N-th
    /// approximate decision is shadow-checked).
    pub watchdog_period: usize,
    /// Worker threads, shared by parallel profiling and the serving
    /// worker pool (`None` = available parallelism). Wall time only —
    /// results are thread-count independent.
    pub threads: Option<usize>,
    /// Arithmetic kernel backend (scalar reference by default; `simd`
    /// opts into the vectorized path, subject to host support and the
    /// `MITHRA_KERNEL` environment override).
    pub kernel: KernelBackend,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: DatasetScale::Full,
            compile_datasets: 250,
            validation_datasets: 250,
            quality_levels: vec![0.025, 0.05, 0.075, 0.10],
            confidence: 0.95,
            success_rate: 0.90,
            benchmarks: mithra_axbench::suite::all()
                .iter()
                .map(|b| b.name().to_string())
                .collect(),
            npu: NpuTrainConfig::default(),
            npu_train_datasets: 10,
            cache_dir: Some(PathBuf::from(DEFAULT_CACHE_DIR)),
            fault_rates: vec![0.0005, 0.002, 0.008],
            fault_seed: 0xFA17,
            watchdog_period: 16,
            threads: None,
            kernel: KernelBackend::Scalar,
        }
    }
}

impl ExperimentConfig {
    /// Parses the process arguments, printing the usage banner and
    /// exiting with status 2 on error — the binary-boundary wrapper
    /// around [`from_arg_list`](Self::from_arg_list).
    pub fn from_args() -> Self {
        match Self::from_arg_list(&std::env::args().skip(1).collect::<Vec<_>>()) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for unknown flags, missing values, and
    /// malformed values.
    pub fn from_arg_list(args: &[String]) -> std::result::Result<Self, ArgError> {
        let mut cfg = Self::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let take = || -> std::result::Result<String, ArgError> {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| ArgError::new(format!("missing value for {flag}")))
            };
            fn parse<T: std::str::FromStr>(
                flag: &str,
                value: &str,
            ) -> std::result::Result<T, ArgError> {
                value
                    .parse()
                    .map_err(|_| ArgError::new(format!("malformed value `{value}` for {flag}")))
            }
            match flag {
                "--scale" => {
                    cfg.scale = match take()?.as_str() {
                        "smoke" => DatasetScale::Smoke,
                        "full" => DatasetScale::Full,
                        other => {
                            return Err(ArgError::new(format!(
                                "unknown scale `{other}` (smoke|full)"
                            )))
                        }
                    };
                    i += 2;
                }
                "--datasets" => {
                    cfg.compile_datasets = parse(flag, &take()?)?;
                    i += 2;
                }
                "--validation" => {
                    cfg.validation_datasets = parse(flag, &take()?)?;
                    i += 2;
                }
                "--quality" => {
                    cfg.quality_levels = take()?
                        .split(',')
                        .map(|s| parse::<f64>(flag, s.trim()).map(|q| q / 100.0))
                        .collect::<std::result::Result<_, _>>()?;
                    i += 2;
                }
                "--confidence" => {
                    cfg.confidence = parse(flag, &take()?)?;
                    i += 2;
                }
                "--success-rate" => {
                    cfg.success_rate = parse(flag, &take()?)?;
                    i += 2;
                }
                "--bench" => {
                    cfg.benchmarks = take()?.split(',').map(str::to_string).collect();
                    i += 2;
                }
                "--npu-epochs" => {
                    cfg.npu.epochs = Some(parse(flag, &take()?)?);
                    i += 2;
                }
                "--npu-train-datasets" => {
                    cfg.npu_train_datasets = parse(flag, &take()?)?;
                    i += 2;
                }
                "--cache-dir" => {
                    cfg.cache_dir = Some(PathBuf::from(take()?));
                    i += 2;
                }
                "--no-cache" => {
                    cfg.cache_dir = None;
                    i += 1;
                }
                "--fault-rates" => {
                    cfg.fault_rates = take()?
                        .split(',')
                        .map(|s| parse::<f64>(flag, s.trim()))
                        .collect::<std::result::Result<_, _>>()?;
                    i += 2;
                }
                "--fault-seed" => {
                    cfg.fault_seed = parse(flag, &take()?)?;
                    i += 2;
                }
                "--watchdog-period" => {
                    cfg.watchdog_period = parse(flag, &take()?)?;
                    i += 2;
                }
                "--threads" => {
                    let t: usize = parse(flag, &take()?)?;
                    cfg.threads = (t > 0).then_some(t);
                    i += 2;
                }
                "--kernel" => {
                    cfg.kernel = take()?.parse().map_err(ArgError::new)?;
                    i += 2;
                }
                other => {
                    return Err(ArgError::new(format!("unknown argument `{other}`")));
                }
            }
        }
        Ok(cfg)
    }

    /// The quality spec at one quality level.
    ///
    /// # Errors
    ///
    /// Propagates out-of-range spec parameters.
    pub fn spec(&self, quality: f64) -> Result<QualitySpec> {
        QualitySpec::new(quality, self.confidence, self.success_rate)
    }

    /// The suite members selected by `--bench`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for an unknown benchmark name.
    pub fn suite(&self) -> std::result::Result<Vec<Arc<dyn Benchmark>>, ArgError> {
        self.benchmarks
            .iter()
            .map(|n| {
                mithra_axbench::suite::by_name(n)
                    .map(|b| {
                        let b: Arc<dyn Benchmark> = b.into();
                        b
                    })
                    .ok_or_else(|| ArgError::new(format!("unknown benchmark `{n}`")))
            })
            .collect()
    }

    /// [`suite`](Self::suite) with the binary-boundary exit on error.
    pub fn suite_or_exit(&self) -> Vec<Arc<dyn Benchmark>> {
        match self.suite() {
            Ok(suite) => suite,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// The single [`CompileConfig`] every compile path derives from this
    /// experiment configuration — the one place `--npu-*`, scale, seeds
    /// and the cache are translated, so the runner can no longer drift
    /// from `pipeline::compile`.
    ///
    /// # Errors
    ///
    /// Propagates out-of-range spec parameters.
    pub fn compile_config(&self, quality: f64) -> Result<CompileConfig> {
        Ok(CompileConfig {
            scale: self.scale,
            compile_datasets: self.compile_datasets,
            seed_base: 0,
            spec: self.spec(quality)?,
            npu: self.npu.clone(),
            npu_train_datasets: self.npu_train_datasets.min(self.compile_datasets.max(1)),
            cache: self.cache_dir.clone().map(CacheConfig::at),
            threads: self.threads,
            kernel: self.kernel,
            ..CompileConfig::default()
        })
    }
}

/// A benchmark compiled at one quality level, with its validation
/// profiles ready to simulate.
#[derive(Debug)]
pub struct PreparedBenchmark {
    /// The benchmark name.
    pub name: &'static str,
    /// The compile-flow output.
    pub compiled: Compiled,
    /// Profiles of the unseen validation datasets.
    pub validation: Vec<DatasetProfile>,
}

/// The quality-independent part of an experiment: trained NPU plus
/// compile and validation profiles. Sweeps over quality levels or
/// success rates re-certify against this base instead of re-profiling.
#[derive(Debug)]
pub struct BenchmarkBase {
    /// The benchmark name.
    pub name: &'static str,
    /// The benchmark bound to its trained accelerator.
    pub function: AcceleratedFunction,
    /// Profiles of the compilation datasets.
    pub profiles: Vec<DatasetProfile>,
    /// Profiles of the unseen validation datasets.
    pub validation: Vec<DatasetProfile>,
}

/// Trains the NPU and profiles both dataset populations — everything that
/// does not depend on the quality level — through the first two
/// [`CompileSession`] stages. Stage instrumentation goes to stderr.
///
/// # Errors
///
/// Propagates NPU training failures.
pub fn prepare_base(
    benchmark: Arc<dyn Benchmark>,
    config: &ExperimentConfig,
) -> Result<BenchmarkBase> {
    let name = benchmark.name();
    let quality = config.quality_levels.first().copied().unwrap_or(0.05);
    let compile_cfg = config.compile_config(quality)?;
    let session = CompileSession::new(benchmark, compile_cfg.clone())
        .train_npu()?
        .profile()?;
    let (function, profiles, mut report) = session.into_parts();
    let (validation, validation_report) = profile_validation(
        &function,
        &compile_cfg,
        VALIDATION_SEED_BASE,
        config.validation_datasets,
    );
    report.stages.push(validation_report);
    eprint!("{report}");
    eprintln!("{}", CompileCost::from_session(&report));
    Ok(BenchmarkBase {
        name,
        function,
        profiles,
        validation,
    })
}

/// Certifies one quality level against a prepared base and trains the
/// classifiers — the quality-dependent remainder of the compile flow,
/// resumed mid-[`CompileSession`].
///
/// # Errors
///
/// Propagates certification and training failures.
pub fn certify_at(
    base: &BenchmarkBase,
    config: &ExperimentConfig,
    quality: f64,
) -> Result<PreparedBenchmark> {
    let compile_cfg = config.compile_config(quality)?;
    let session = CompileSession::resume_with_profiles(
        base.function.clone(),
        base.profiles.clone(),
        compile_cfg,
    )
    .certify()?
    .train_classifiers()?;
    let (compiled, report) = session.finish();
    eprint!("{report}");
    eprintln!("{}", CompileCost::from_session(&report));
    Ok(PreparedBenchmark {
        name: base.name,
        compiled,
        validation: base.validation.clone(),
    })
}

/// Runs the full compile flow for one benchmark at one quality level and
/// profiles its validation set.
///
/// # Errors
///
/// Propagates compile-flow failures (most notably
/// [`mithra_core::MithraError::Uncertifiable`]).
pub fn prepare(
    benchmark: Arc<dyn Benchmark>,
    config: &ExperimentConfig,
    quality: f64,
) -> Result<PreparedBenchmark> {
    let name = benchmark.name();
    let compile_cfg = config.compile_config(quality)?;
    let session = CompileSession::new(benchmark, compile_cfg.clone())
        .train_npu()?
        .profile()?
        .certify()?
        .train_classifiers()?;
    let (compiled, mut report) = session.finish();
    let (validation, validation_report) = profile_validation(
        &compiled.function,
        &compile_cfg,
        VALIDATION_SEED_BASE,
        config.validation_datasets,
    );
    report.stages.push(validation_report);
    eprint!("{report}");
    eprintln!("{}", CompileCost::from_session(&report));
    Ok(PreparedBenchmark {
        name,
        compiled,
        validation,
    })
}

/// Which design drives the quality-control decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DesignKind {
    /// The ideal, infeasible oracle.
    Oracle,
    /// The MISR multi-table classifier.
    Table,
    /// The MLP classifier run on the NPU.
    Neural,
    /// Input-oblivious random filtering at the given invocation rate.
    Random(f64),
    /// Always invoke the accelerator (no quality control).
    AlwaysApproximate,
}

impl DesignKind {
    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            DesignKind::Oracle => "oracle",
            DesignKind::Table => "table",
            DesignKind::Neural => "neural",
            DesignKind::Random(_) => "random",
            DesignKind::AlwaysApproximate => "always",
        }
    }
}

/// The evaluation of one design on one prepared benchmark.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Per-validation-dataset simulation results.
    pub runs: Vec<RunResult>,
    /// The aggregate.
    pub summary: BenchmarkSummary,
}

/// Simulates `design` over every validation dataset of `prepared`.
pub fn evaluate(prepared: &PreparedBenchmark, design: DesignKind, quality: f64) -> EvalResult {
    let options = SimOptions::default();
    let runs: Vec<RunResult> = prepared
        .validation
        .iter()
        .map(|profile| {
            let mut classifier: Box<dyn Classifier> = match design {
                DesignKind::Oracle => Box::new(prepared.compiled.oracle_for(profile)),
                DesignKind::Table => Box::new(prepared.compiled.table.clone()),
                DesignKind::Neural => Box::new(prepared.compiled.neural.clone()),
                DesignKind::Random(rate) => {
                    Box::new(RandomFilter::new(rate, profile.dataset().seed()))
                }
                DesignKind::AlwaysApproximate => Box::new(RandomFilter::new(1.0, 0)),
            };
            simulate(&prepared.compiled, profile, classifier.as_mut(), &options)
        })
        .collect();
    let summary = BenchmarkSummary::from_runs(&runs, quality);
    EvalResult { runs, summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: DatasetScale::Smoke,
            compile_datasets: 15,
            validation_datasets: 8,
            quality_levels: vec![0.10],
            confidence: 0.9,
            success_rate: 0.5,
            benchmarks: vec!["sobel".into()],
            cache_dir: None,
            ..ExperimentConfig::default()
        }
    }

    #[test]
    fn prepare_and_evaluate_sobel() {
        let cfg = smoke_config();
        let bench = cfg.suite().unwrap().remove(0);
        let prepared = prepare(bench, &cfg, 0.10).unwrap();
        assert_eq!(prepared.validation.len(), 8);

        let oracle = evaluate(&prepared, DesignKind::Oracle, 0.10);
        let table = evaluate(&prepared, DesignKind::Table, 0.10);
        assert_eq!(oracle.runs.len(), 8);
        // The oracle never makes false decisions.
        assert_eq!(oracle.summary.false_positive_rate, 0.0);
        assert_eq!(oracle.summary.false_negative_rate, 0.0);
        // The oracle's invocation rate upper-bounds the table's
        // (both at the same threshold; the table is conservative).
        assert!(
            oracle.summary.invocation_rate >= table.summary.invocation_rate - 0.05,
            "oracle {} vs table {}",
            oracle.summary.invocation_rate,
            table.summary.invocation_rate
        );
    }

    #[test]
    fn design_labels() {
        assert_eq!(DesignKind::Oracle.label(), "oracle");
        assert_eq!(DesignKind::Random(0.5).label(), "random");
    }

    #[test]
    fn arg_list_parsing() {
        let args: Vec<String> = [
            "--scale",
            "smoke",
            "--datasets",
            "33",
            "--validation",
            "7",
            "--quality",
            "2.5,5",
            "--confidence",
            "0.9",
            "--success-rate",
            "0.8",
            "--bench",
            "sobel,fft",
            "--npu-epochs",
            "12",
            "--npu-train-datasets",
            "4",
            "--fault-rates",
            "0.001,0.01",
            "--fault-seed",
            "42",
            "--watchdog-period",
            "8",
            "--threads",
            "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = ExperimentConfig::from_arg_list(&args).unwrap();
        assert_eq!(cfg.scale, DatasetScale::Smoke);
        assert_eq!(cfg.compile_datasets, 33);
        assert_eq!(cfg.validation_datasets, 7);
        assert_eq!(cfg.quality_levels, vec![0.025, 0.05]);
        assert_eq!(cfg.confidence, 0.9);
        assert_eq!(cfg.success_rate, 0.8);
        assert_eq!(cfg.benchmarks, vec!["sobel".to_string(), "fft".to_string()]);
        assert_eq!(cfg.npu.epochs, Some(12));
        assert_eq!(cfg.npu_train_datasets, 4);
        assert_eq!(cfg.fault_rates, vec![0.001, 0.01]);
        assert_eq!(cfg.fault_seed, 42);
        assert_eq!(cfg.watchdog_period, 8);
        assert_eq!(cfg.threads, Some(3));
        assert_eq!(cfg.suite().unwrap().len(), 2);
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let args: Vec<String> = ["--threads", "0"].iter().map(|s| s.to_string()).collect();
        let cfg = ExperimentConfig::from_arg_list(&args).unwrap();
        assert_eq!(cfg.threads, None);
        assert_eq!(cfg.compile_config(0.05).unwrap().threads, None);
        let args: Vec<String> = ["--threads", "2"].iter().map(|s| s.to_string()).collect();
        let cfg = ExperimentConfig::from_arg_list(&args).unwrap();
        assert_eq!(cfg.compile_config(0.05).unwrap().threads, Some(2));
    }

    #[test]
    fn empty_arg_list_gives_paper_defaults() {
        let cfg = ExperimentConfig::from_arg_list(&[]).unwrap();
        assert_eq!(cfg.compile_datasets, 250);
        assert_eq!(cfg.validation_datasets, 250);
        assert_eq!(cfg.confidence, 0.95);
        assert_eq!(cfg.success_rate, 0.90);
        assert_eq!(cfg.benchmarks.len(), 6);
        assert_eq!(cfg.npu, NpuTrainConfig::default());
        assert_eq!(cfg.cache_dir, Some(PathBuf::from(DEFAULT_CACHE_DIR)));
        assert_eq!(cfg.fault_rates, vec![0.0005, 0.002, 0.008]);
        assert_eq!(cfg.watchdog_period, 16);
    }

    #[test]
    fn cache_flags_parse() {
        let args: Vec<String> = ["--no-cache"].iter().map(|s| s.to_string()).collect();
        assert_eq!(
            ExperimentConfig::from_arg_list(&args).unwrap().cache_dir,
            None
        );
        let args: Vec<String> = ["--cache-dir", "/tmp/mycache"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(
            ExperimentConfig::from_arg_list(&args).unwrap().cache_dir,
            Some(PathBuf::from("/tmp/mycache"))
        );
    }

    #[test]
    fn malformed_values_are_errors() {
        let cases: &[&[&str]] = &[
            &["--datasets", "many"],
            &["--validation", "-3"],
            &["--scale", "tiny"],
            &["--quality", "2.5,oops"],
            &["--confidence", "high"],
            &["--success-rate", ""],
            &["--npu-epochs", "1.5"],
            &["--npu-train-datasets", "x"],
        ];
        for case in cases {
            let args: Vec<String> = case.iter().map(|s| s.to_string()).collect();
            let err =
                ExperimentConfig::from_arg_list(&args).expect_err(&format!("{case:?} should fail"));
            assert!(
                err.message().contains(case[0]) || err.message().contains(case[1]),
                "error `{err}` should mention the flag or value"
            );
        }
    }

    #[test]
    fn missing_value_and_unknown_flag_are_errors() {
        let args: Vec<String> = vec!["--datasets".into()];
        let err = ExperimentConfig::from_arg_list(&args).unwrap_err();
        assert!(err.message().contains("missing value"));
        assert!(format!("{err}").contains("usage:"));

        let args: Vec<String> = vec!["--frobnicate".into()];
        let err = ExperimentConfig::from_arg_list(&args).unwrap_err();
        assert!(err.message().contains("unknown argument"));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let cfg = ExperimentConfig {
            benchmarks: vec!["sobel".into(), "nonesuch".into()],
            ..ExperimentConfig::default()
        };
        let err = cfg.suite().unwrap_err();
        assert!(err.message().contains("nonesuch"));
    }

    #[test]
    fn compile_config_honors_npu_settings() {
        let mut cfg = smoke_config();
        cfg.npu = NpuTrainConfig {
            epochs: Some(7),
            max_samples: 123,
            seed: 99,
        };
        cfg.npu_train_datasets = 100; // clamped to compile_datasets
        let cc = cfg.compile_config(0.10).unwrap();
        assert_eq!(cc.npu, cfg.npu);
        assert_eq!(cc.npu_train_datasets, 15);
        assert_eq!(cc.scale, DatasetScale::Smoke);
        assert!(cc.cache.is_none());
    }
}
