//! The shared experiment runner.

use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_core::classifier::Classifier;
use mithra_core::function::{AcceleratedFunction, NpuTrainConfig};
use mithra_core::pipeline::{compile_with_profiles, CompileConfig, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_core::random::RandomFilter;
use mithra_core::threshold::QualitySpec;
use mithra_core::Result;
use mithra_sim::report::BenchmarkSummary;
use mithra_sim::system::{simulate, RunResult, SimOptions};
use std::sync::Arc;

/// Seed offset separating validation datasets from compilation datasets —
/// the paper's "250 different unseen datasets".
pub const VALIDATION_SEED_BASE: u64 = 1_000_000;

/// Experiment-wide configuration, parsed from the command line.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset scale.
    pub scale: DatasetScale,
    /// Number of compilation datasets (paper: 250).
    pub compile_datasets: usize,
    /// Number of unseen validation datasets (paper: 250).
    pub validation_datasets: usize,
    /// Quality-loss levels to sweep (fractions).
    pub quality_levels: Vec<f64>,
    /// Confidence level β.
    pub confidence: f64,
    /// Required success rate S.
    pub success_rate: f64,
    /// Benchmarks to run (defaults to the whole suite).
    pub benchmarks: Vec<String>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: DatasetScale::Full,
            compile_datasets: 250,
            validation_datasets: 250,
            quality_levels: vec![0.025, 0.05, 0.075, 0.10],
            confidence: 0.95,
            success_rate: 0.90,
            benchmarks: mithra_axbench::suite::all()
                .iter()
                .map(|b| b.name().to_string())
                .collect(),
        }
    }
}

impl ExperimentConfig {
    /// Parses `--scale`, `--datasets`, `--validation`, `--quality`,
    /// `--confidence`, `--success-rate` and `--bench` from the process
    /// arguments; unknown arguments abort with a usage message.
    pub fn from_args() -> Self {
        Self::from_arg_list(&std::env::args().skip(1).collect::<Vec<_>>())
    }

    /// Parses an explicit argument list (see [`from_args`](Self::from_args)).
    pub fn from_arg_list(args: &[String]) -> Self {
        let mut cfg = Self::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = args.get(i + 1).cloned();
            let take = |v: Option<String>| -> String {
                v.unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
            };
            match flag {
                "--scale" => {
                    cfg.scale = match take(value).as_str() {
                        "smoke" => DatasetScale::Smoke,
                        "full" => DatasetScale::Full,
                        other => {
                            eprintln!("unknown scale `{other}` (smoke|full)");
                            std::process::exit(2);
                        }
                    };
                    i += 2;
                }
                "--datasets" => {
                    cfg.compile_datasets = take(value).parse().expect("--datasets N");
                    i += 2;
                }
                "--validation" => {
                    cfg.validation_datasets = take(value).parse().expect("--validation N");
                    i += 2;
                }
                "--quality" => {
                    cfg.quality_levels = take(value)
                        .split(',')
                        .map(|s| s.trim().parse::<f64>().expect("--quality a,b,c") / 100.0)
                        .collect();
                    i += 2;
                }
                "--confidence" => {
                    cfg.confidence = take(value).parse().expect("--confidence 0.95");
                    i += 2;
                }
                "--success-rate" => {
                    cfg.success_rate = take(value).parse().expect("--success-rate 0.90");
                    i += 2;
                }
                "--bench" => {
                    cfg.benchmarks = take(value).split(',').map(str::to_string).collect();
                    i += 2;
                }
                other => {
                    eprintln!(
                        "unknown argument `{other}`\n\
                         usage: --scale smoke|full --datasets N --validation N \
                         --quality 2.5,5,7.5,10 --confidence 0.95 --success-rate 0.90 \
                         --bench name,name"
                    );
                    std::process::exit(2);
                }
            }
        }
        cfg
    }

    /// The quality spec at one quality level.
    pub fn spec(&self, quality: f64) -> Result<QualitySpec> {
        QualitySpec::new(quality, self.confidence, self.success_rate)
    }

    /// The suite members selected by `--bench`.
    pub fn suite(&self) -> Vec<Arc<dyn Benchmark>> {
        self.benchmarks
            .iter()
            .map(|n| {
                let b: Arc<dyn Benchmark> = mithra_axbench::suite::by_name(n)
                    .unwrap_or_else(|| {
                        eprintln!("unknown benchmark `{n}`");
                        std::process::exit(2);
                    })
                    .into();
                b
            })
            .collect()
    }
}

/// Profiles `count` datasets in parallel across available cores.
pub fn collect_profiles_parallel(
    function: &AcceleratedFunction,
    seed_base: u64,
    count: usize,
    scale: DatasetScale,
) -> Vec<DatasetProfile> {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(count.max(1));
    let mut slots: Vec<Option<DatasetProfile>> = (0..count).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (t, chunk) in slots.chunks_mut(count.div_ceil(threads)).enumerate() {
            let start = t * count.div_ceil(threads);
            scope.spawn(move |_| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let seed = seed_base + (start + off) as u64;
                    let ds = function.dataset(seed, scale);
                    *slot = Some(DatasetProfile::collect(function, ds));
                }
            });
        }
    })
    .expect("profiling threads do not panic");
    slots.into_iter().map(|s| s.expect("all slots filled")).collect()
}

/// A benchmark compiled at one quality level, with its validation
/// profiles ready to simulate.
#[derive(Debug)]
pub struct PreparedBenchmark {
    /// The benchmark name.
    pub name: &'static str,
    /// The compile-flow output.
    pub compiled: Compiled,
    /// Profiles of the unseen validation datasets.
    pub validation: Vec<DatasetProfile>,
}

/// The quality-independent part of an experiment: trained NPU plus
/// compile and validation profiles. Sweeps over quality levels or
/// success rates re-certify against this base instead of re-profiling.
#[derive(Debug)]
pub struct BenchmarkBase {
    /// The benchmark name.
    pub name: &'static str,
    /// The benchmark bound to its trained accelerator.
    pub function: AcceleratedFunction,
    /// Profiles of the compilation datasets.
    pub profiles: Vec<DatasetProfile>,
    /// Profiles of the unseen validation datasets.
    pub validation: Vec<DatasetProfile>,
}

/// Trains the NPU and profiles both dataset populations — everything that
/// does not depend on the quality level.
pub fn prepare_base(
    benchmark: Arc<dyn Benchmark>,
    config: &ExperimentConfig,
) -> Result<BenchmarkBase> {
    let name = benchmark.name();
    let train_sets: Vec<_> = (0..10.min(config.compile_datasets.max(1) as u64))
        .map(|i| benchmark.dataset(i, config.scale))
        .collect();
    let function =
        AcceleratedFunction::train(Arc::clone(&benchmark), &train_sets, &NpuTrainConfig::default())?;
    let profiles =
        collect_profiles_parallel(&function, 0, config.compile_datasets, config.scale);
    let validation = collect_profiles_parallel(
        &function,
        VALIDATION_SEED_BASE,
        config.validation_datasets,
        config.scale,
    );
    Ok(BenchmarkBase {
        name,
        function,
        profiles,
        validation,
    })
}

/// Certifies one quality level against a prepared base and trains the
/// classifiers — the quality-dependent remainder of the compile flow.
///
/// # Errors
///
/// Propagates certification and training failures.
pub fn certify_at(
    base: &BenchmarkBase,
    config: &ExperimentConfig,
    quality: f64,
) -> Result<PreparedBenchmark> {
    let compile_cfg = CompileConfig {
        scale: config.scale,
        compile_datasets: config.compile_datasets,
        seed_base: 0,
        spec: config.spec(quality)?,
        ..CompileConfig::default()
    };
    let compiled =
        compile_with_profiles(base.function.clone(), base.profiles.clone(), &compile_cfg)?;
    Ok(PreparedBenchmark {
        name: base.name,
        compiled,
        validation: base.validation.clone(),
    })
}

/// Runs the compile flow for one benchmark at one quality level and
/// profiles its validation set.
///
/// # Errors
///
/// Propagates compile-flow failures (most notably
/// [`mithra_core::MithraError::Uncertifiable`]).
pub fn prepare(
    benchmark: Arc<dyn Benchmark>,
    config: &ExperimentConfig,
    quality: f64,
) -> Result<PreparedBenchmark> {
    let name = benchmark.name();
    let compile_cfg = CompileConfig {
        scale: config.scale,
        compile_datasets: config.compile_datasets,
        seed_base: 0,
        spec: config.spec(quality)?,
        npu: NpuTrainConfig::default(),
        npu_train_datasets: 10.min(config.compile_datasets.max(1)),
        ..CompileConfig::default()
    };

    // Train the NPU, profile compile datasets in parallel, then hand the
    // profiles to the (sequential) certification and training stages.
    let train_sets: Vec<_> = (0..compile_cfg.npu_train_datasets as u64)
        .map(|i| benchmark.dataset(i, config.scale))
        .collect();
    let function =
        AcceleratedFunction::train(Arc::clone(&benchmark), &train_sets, &compile_cfg.npu)?;
    let profiles = collect_profiles_parallel(
        &function,
        compile_cfg.seed_base,
        compile_cfg.compile_datasets,
        config.scale,
    );
    let compiled = compile_with_profiles(function, profiles, &compile_cfg)?;

    let validation = collect_profiles_parallel(
        &compiled.function,
        VALIDATION_SEED_BASE,
        config.validation_datasets,
        config.scale,
    );
    Ok(PreparedBenchmark {
        name,
        compiled,
        validation,
    })
}

/// Which design drives the quality-control decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DesignKind {
    /// The ideal, infeasible oracle.
    Oracle,
    /// The MISR multi-table classifier.
    Table,
    /// The MLP classifier run on the NPU.
    Neural,
    /// Input-oblivious random filtering at the given invocation rate.
    Random(f64),
    /// Always invoke the accelerator (no quality control).
    AlwaysApproximate,
}

impl DesignKind {
    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            DesignKind::Oracle => "oracle",
            DesignKind::Table => "table",
            DesignKind::Neural => "neural",
            DesignKind::Random(_) => "random",
            DesignKind::AlwaysApproximate => "always",
        }
    }
}

/// The evaluation of one design on one prepared benchmark.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Per-validation-dataset simulation results.
    pub runs: Vec<RunResult>,
    /// The aggregate.
    pub summary: BenchmarkSummary,
}

/// Simulates `design` over every validation dataset of `prepared`.
pub fn evaluate(prepared: &PreparedBenchmark, design: DesignKind, quality: f64) -> EvalResult {
    let options = SimOptions::default();
    let runs: Vec<RunResult> = prepared
        .validation
        .iter()
        .map(|profile| {
            let mut classifier: Box<dyn Classifier> = match design {
                DesignKind::Oracle => Box::new(prepared.compiled.oracle_for(profile)),
                DesignKind::Table => Box::new(prepared.compiled.table.clone()),
                DesignKind::Neural => Box::new(prepared.compiled.neural.clone()),
                DesignKind::Random(rate) => {
                    Box::new(RandomFilter::new(rate, profile.dataset().seed()))
                }
                DesignKind::AlwaysApproximate => Box::new(RandomFilter::new(1.0, 0)),
            };
            simulate(&prepared.compiled, profile, classifier.as_mut(), &options)
        })
        .collect();
    let summary = BenchmarkSummary::from_runs(&runs, quality);
    EvalResult { runs, summary }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: DatasetScale::Smoke,
            compile_datasets: 15,
            validation_datasets: 8,
            quality_levels: vec![0.10],
            confidence: 0.9,
            success_rate: 0.5,
            benchmarks: vec!["sobel".into()],
        }
    }

    #[test]
    fn prepare_and_evaluate_sobel() {
        let cfg = smoke_config();
        let bench = cfg.suite().remove(0);
        let prepared = prepare(bench, &cfg, 0.10).unwrap();
        assert_eq!(prepared.validation.len(), 8);

        let oracle = evaluate(&prepared, DesignKind::Oracle, 0.10);
        let table = evaluate(&prepared, DesignKind::Table, 0.10);
        assert_eq!(oracle.runs.len(), 8);
        // The oracle never makes false decisions.
        assert_eq!(oracle.summary.false_positive_rate, 0.0);
        assert_eq!(oracle.summary.false_negative_rate, 0.0);
        // The oracle's invocation rate upper-bounds the table's
        // (both at the same threshold; the table is conservative).
        assert!(
            oracle.summary.invocation_rate >= table.summary.invocation_rate - 0.05,
            "oracle {} vs table {}",
            oracle.summary.invocation_rate,
            table.summary.invocation_rate
        );
    }

    #[test]
    fn parallel_profiling_matches_sequential() {
        let cfg = smoke_config();
        let bench = cfg.suite().remove(0);
        let train_sets: Vec<_> = (0..2).map(|i| bench.dataset(i, cfg.scale)).collect();
        let f = AcceleratedFunction::train(
            bench,
            &train_sets,
            &NpuTrainConfig {
                epochs: Some(20),
                max_samples: 1000,
                seed: 5,
            },
        )
        .unwrap();
        let par = collect_profiles_parallel(&f, 40, 6, cfg.scale);
        for (i, p) in par.iter().enumerate() {
            let ds = f.dataset(40 + i as u64, cfg.scale);
            let seq = DatasetProfile::collect(&f, ds);
            assert_eq!(p.errors(), seq.errors(), "profile {i} differs");
        }
    }

    #[test]
    fn design_labels() {
        assert_eq!(DesignKind::Oracle.label(), "oracle");
        assert_eq!(DesignKind::Random(0.5).label(), "random");
    }

    #[test]
    fn arg_list_parsing() {
        let args: Vec<String> = [
            "--scale", "smoke", "--datasets", "33", "--validation", "7",
            "--quality", "2.5,5", "--confidence", "0.9", "--success-rate", "0.8",
            "--bench", "sobel,fft",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = ExperimentConfig::from_arg_list(&args);
        assert_eq!(cfg.scale, DatasetScale::Smoke);
        assert_eq!(cfg.compile_datasets, 33);
        assert_eq!(cfg.validation_datasets, 7);
        assert_eq!(cfg.quality_levels, vec![0.025, 0.05]);
        assert_eq!(cfg.confidence, 0.9);
        assert_eq!(cfg.success_rate, 0.8);
        assert_eq!(cfg.benchmarks, vec!["sobel".to_string(), "fft".to_string()]);
        assert_eq!(cfg.suite().len(), 2);
    }

    #[test]
    fn empty_arg_list_gives_paper_defaults() {
        let cfg = ExperimentConfig::from_arg_list(&[]);
        assert_eq!(cfg.compile_datasets, 250);
        assert_eq!(cfg.validation_datasets, 250);
        assert_eq!(cfg.confidence, 0.95);
        assert_eq!(cfg.success_rate, 0.90);
        assert_eq!(cfg.benchmarks.len(), 6);
    }
}
