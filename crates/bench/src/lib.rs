//! The experiment harness shared by every table/figure binary.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper. They all share this runner: command-line parsing, the per-
//! benchmark compile flow (NPU training → profiling → threshold → both
//! classifiers), parallel dataset profiling, validation-set simulation,
//! and text-table printing.
//!
//! Scale knobs: every binary accepts
//!
//! ```text
//! --scale smoke|full      dataset sizes (default full)
//! --datasets N            compilation datasets (default 250, paper value)
//! --validation N          validation datasets (default 250)
//! --quality a,b,c         quality-loss levels (default 2.5,5,7.5,10 %)
//! ```

#![warn(missing_docs)]

pub mod runner;
pub mod table_text;

pub use runner::{
    certify_at, collect_profiles_parallel, evaluate, prepare, prepare_base, BenchmarkBase,
    DesignKind, EvalResult, ExperimentConfig, PreparedBenchmark,
};
pub use table_text::TextTable;
