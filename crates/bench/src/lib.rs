//! The experiment harness shared by every table/figure binary.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper. They all share this runner: command-line parsing, the per-
//! benchmark compile flow (NPU training → profiling → threshold → both
//! classifiers), parallel dataset profiling, validation-set simulation,
//! and text-table printing.
//!
//! The compile flow itself lives in `mithra-core` as the staged
//! [`mithra_core::session::CompileSession`] pipeline; the runner's
//! [`prepare_base`]/[`certify_at`]/[`prepare`] are thin wrappers that
//! translate an [`ExperimentConfig`] into the single
//! [`mithra_core::pipeline::CompileConfig`] and print each session's
//! per-stage instrumentation to stderr.
//!
//! Scale knobs: every binary accepts
//!
//! ```text
//! --scale smoke|full       dataset sizes (default full)
//! --datasets N             compilation datasets (default 250, paper value)
//! --validation N           validation datasets (default 250)
//! --quality a,b,c          quality-loss levels (default 2.5,5,7.5,10 %)
//! --npu-epochs N           override NPU training epochs
//! --npu-train-datasets N   datasets feeding NPU training (default 10)
//! --cache-dir PATH         artifact-cache root (default target/mithra-cache)
//! --no-cache               disable the on-disk artifact cache
//! ```

#![warn(missing_docs)]

pub mod runner;
pub mod table_text;

pub use runner::{
    certify_at, collect_profiles_parallel, default_threads, evaluate, prepare, prepare_base,
    ArgError, BenchmarkBase, DesignKind, EvalResult, ExperimentConfig, PreparedBenchmark,
};
pub use table_text::TextTable;
