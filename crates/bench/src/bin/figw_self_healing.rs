//! Figure W: closed-loop self-healing under input-distribution drift.
//!
//! The PR-2 watchdog answers drift by degrading to precise fallback and
//! staying there — quality is safe, but the certified speedup is gone for
//! good. This binary puts the recovery half of the guardband on display:
//! per benchmark × drift scenario it runs the closed-loop serving session
//! ([`run_session`]) in which the watchdog detects the drift, the
//! re-certification engine collects a fresh calibration window from
//! shadow-sampled precise outputs, certifies a re-trained
//! `(threshold, classifier)` pair under the always-valid sequential test,
//! and hot-swaps it into serving — then validates the re-certified pair
//! with the conformance harness on *unseen drifted* datasets.
//!
//! Scenarios: `step` (sustained drift — the loop must re-certify),
//! `ramp` (gradual onset of the same drift), and `transient`
//! (drift-then-revert — the loop must abort its in-flight window and let
//! the watchdog recover on its own, not wedge serving on a distribution
//! that no longer exists).
//!
//! Bench-specific flags, consumed before the shared experiment flags:
//! `--session-datasets N` (serving sequence length), `--drift-at K`
//! (first drifted dataset), `--drift-scale X` / `--drift-offset X` /
//! `--drift-noise X` (the injected input transform; noise defaults to a
//! per-benchmark severity — see [`default_noise_for`]), `--select-after N` /
//! `--certify-trials N` (re-certifier tuning), `--conform-trials M`
//! (unseen drifted datasets judging each re-certified pair),
//! `--scenarios step,ramp,transient`, `--out PATH` (the machine-readable
//! `BENCH_recert.json`). Shared `--scale`, `--quality`, `--bench`,
//! `--watchdog-period`, `--threads`, `--cache-dir` flags work like every
//! other figure binary.
//!
//! [`run_session`]: mithra_sim::system::run_session

use mithra_axbench::dataset::DriftSpec;
use mithra_bench::{ExperimentConfig, TextTable};
use mithra_conform::{validate_profiles, GuaranteeReport, ValidatorConfig};
use mithra_core::profile::DatasetProfile;
use mithra_core::recert::RecertConfig;
use mithra_core::session::CompileSession;
use mithra_core::watchdog::{self, GuardState};
use mithra_sim::fault::DriftSchedule;
use mithra_sim::system::{run_session, SessionConfig, SessionResult, SimOptions};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// First seed of the serving-session space — disjoint from the compile
/// (`0..`), validation (`1_000_000..`) and conformance (`3_000_000..`)
/// spaces, so no session dataset was ever seen by a compile or judge.
const SESSION_SEED_BASE: u64 = 7_000_000;

/// First seed of the *drifted* conformance space judging re-certified
/// pairs: offset past everything `figy` can reach. Pinned in
/// [`mithra_core::seeds`].
use mithra_core::seeds::DRIFT_CONFORM_SEED_BASE;

/// One (benchmark, scenario) session in `BENCH_recert.json`.
#[derive(Debug, Serialize)]
struct SessionRecord {
    benchmark: String,
    scenario: String,
    datasets: usize,
    drift_at: usize,
    drift_scale: f64,
    drift_offset: f64,
    drift_noise: f64,
    fell_back: bool,
    swaps: u64,
    recert_attempts: u64,
    certify_trials: u64,
    calibration_datasets: u64,
    exhausted: u64,
    final_epoch: u64,
    final_guard_state: String,
    time_in_monitoring: u64,
    time_in_throttled: u64,
    time_in_fallback: u64,
    time_in_probing: u64,
    recert_cycles: f64,
    recert_energy: f64,
    pre_drift_speedup: f64,
    post_swap_datasets: usize,
    post_swap_speedup: f64,
    post_swap_invocation_rate: f64,
    post_swap_quality_passes: usize,
    recovered: bool,
    conform: Option<GuaranteeReport>,
}

/// The whole `BENCH_recert.json` document.
#[derive(Debug, Serialize)]
struct JsonReport {
    scale: String,
    quality: f64,
    confidence: f64,
    success_rate: f64,
    session_seed_base: u64,
    conform_seed_base: u64,
    sessions: Vec<SessionRecord>,
}

/// Bench-specific options, extracted ahead of the shared parser.
struct BenchArgs {
    session_datasets: usize,
    drift_at: usize,
    drift_scale: f64,
    drift_offset: f64,
    drift_noise: Option<f64>,
    select_after: usize,
    certify_trials: u64,
    conform_trials: usize,
    scenarios: Vec<String>,
    out: PathBuf,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            session_datasets: 160,
            drift_at: 8,
            drift_scale: 1.0,
            drift_offset: 0.0,
            drift_noise: None,
            select_after: 12,
            certify_trials: 60,
            conform_trials: 40,
            scenarios: vec!["step".into(), "ramp".into(), "transient".into()],
            out: PathBuf::from("BENCH_recert.json"),
        }
    }
}

/// Pulls the bench-specific flags out of `args`, leaving the shared
/// experiment flags for [`ExperimentConfig::from_arg_list`].
fn extract_bench_args(args: &mut Vec<String>) -> BenchArgs {
    let mut bench = BenchArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take_value = || -> String {
            if i + 1 >= args.len() {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        };
        let parse = |flag: &str, value: &str| -> f64 {
            value.trim().parse().unwrap_or_else(|_| {
                eprintln!("malformed value `{value}` for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--session-datasets" => bench.session_datasets = parse(&flag, &take_value()) as usize,
            "--drift-at" => bench.drift_at = parse(&flag, &take_value()) as usize,
            "--drift-scale" => bench.drift_scale = parse(&flag, &take_value()),
            "--drift-offset" => bench.drift_offset = parse(&flag, &take_value()),
            "--drift-noise" => bench.drift_noise = Some(parse(&flag, &take_value())),
            "--select-after" => bench.select_after = parse(&flag, &take_value()) as usize,
            "--certify-trials" => bench.certify_trials = parse(&flag, &take_value()) as u64,
            "--conform-trials" => bench.conform_trials = parse(&flag, &take_value()) as usize,
            "--scenarios" => {
                bench.scenarios = take_value()
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--out" => bench.out = PathBuf::from(take_value()),
            _ => i += 1,
        }
    }
    bench
}

/// Default input-noise severity per benchmark, as a fraction of each
/// input dimension's range.
///
/// The certificates differ by an order of magnitude in how much input
/// noise they tolerate, so no single severity can both breach every
/// guard and stay re-certifiable: `blackscholes` breaks past recovery at
/// 0.17 while `sobel` needs 0.17 before selection finds a certifiable
/// candidate. Each default is the smallest severity on a coarse grid
/// (0.13, 0.2, 0.5) that walks that benchmark's watchdog to Fallback at
/// the headline `q = 5%` spec. `fft` (relative-error metric — the
/// approximation error scales with the signal) and `jmeint` (near-zero
/// admission at q = 5% even clean, so the guard has nothing to sample)
/// never breach on this grid; they are pinned at the top severity and
/// the figure reports their guards honestly holding. Override with
/// `--drift-noise`.
fn default_noise_for(benchmark: &str) -> f64 {
    match benchmark {
        "blackscholes" => 0.13,
        "fft" | "jmeint" => 0.5,
        _ => 0.2,
    }
}

/// The drift schedule for one named scenario.
fn schedule_for(
    scenario: &str,
    bench_args: &BenchArgs,
    noise_std: f64,
    datasets: usize,
) -> DriftSchedule {
    let drift = DriftSpec {
        scale: bench_args.drift_scale as f32,
        offset: bench_args.drift_offset as f32,
        noise_std: noise_std as f32,
        seed: 41,
    };
    let at = bench_args.drift_at;
    match scenario {
        "step" => DriftSchedule::Step { at, drift },
        "ramp" => DriftSchedule::Ramp {
            from: at,
            until: (at + datasets / 8).max(at + 2),
            drift,
        },
        // The excursion reverts a third of the way in: long enough to
        // walk the guard down and start a calibration window, short
        // enough that the session shows the self-recovery path.
        "transient" => DriftSchedule::Transient {
            at,
            until: at + (datasets / 3).max(4),
            drift,
        },
        other => {
            eprintln!("unknown scenario `{other}` (step|ramp|transient)");
            std::process::exit(2);
        }
    }
}

/// Runs one benchmark × scenario session and judges any re-certified
/// pair on unseen drifted datasets.
fn run_scenario(
    bench: &Arc<dyn mithra_axbench::benchmark::Benchmark>,
    cfg: &ExperimentConfig,
    bench_args: &BenchArgs,
    quality: f64,
    scenario: &str,
) -> std::result::Result<SessionRecord, String> {
    let err = |e: &dyn std::fmt::Display| e.to_string();
    let compile_cfg = cfg.compile_config(quality).map_err(|e| err(&e))?;
    let session = CompileSession::new(Arc::clone(bench), compile_cfg)
        .train_npu()
        .and_then(CompileSession::profile)
        .and_then(CompileSession::certify)
        .and_then(CompileSession::train_classifiers)
        .map_err(|e| err(&e))?;
    let (compiled, report) = session.finish();
    eprint!("{report}");

    let spec = cfg.spec(quality).map_err(|e| err(&e))?;
    let noise_std = bench_args
        .drift_noise
        .unwrap_or_else(|| default_noise_for(bench.name()));
    let mut recert = RecertConfig::paper_default();
    recert.select_after = bench_args.select_after;
    recert.max_certify_trials = bench_args.certify_trials;
    recert.threads = cfg.threads;
    let config = SessionConfig {
        options: SimOptions::default(),
        spec,
        watchdog: watchdog::calibrate(
            &mut compiled.table.clone(),
            &compiled.profiles,
            compiled.threshold.threshold,
            spec.confidence,
        )
        .map_err(|e| err(&e))?,
        watchdog_period: cfg.watchdog_period.max(1),
        recert,
        scale: cfg.scale,
    };
    let schedule = schedule_for(scenario, bench_args, noise_std, bench_args.session_datasets);
    let seeds: Vec<u64> = (0..bench_args.session_datasets)
        .map(|i| SESSION_SEED_BASE + i as u64)
        .collect();
    let session = run_session(&compiled, &seeds, &schedule, &config).map_err(|e| err(&e))?;

    // A re-certified pair faces the conformance harness on datasets
    // nobody has seen, drawn from the *drifted* distribution it claims
    // to have re-certified.
    let conform = if session.final_point.epoch > 0 {
        let swapped = compiled.with_operating_point(
            session.final_point.threshold,
            session.final_point.classifier.clone(),
        );
        let steady = schedule
            .drift_at(bench_args.session_datasets.saturating_sub(1))
            .unwrap_or(DriftSpec {
                scale: bench_args.drift_scale as f32,
                offset: bench_args.drift_offset as f32,
                noise_std: noise_std as f32,
                seed: 41,
            });
        let profiles: Vec<DatasetProfile> = (0..bench_args.conform_trials)
            .map(|i| {
                let seed = DRIFT_CONFORM_SEED_BASE + i as u64;
                let ds = swapped.function.dataset(seed, cfg.scale).drifted(&steady);
                DatasetProfile::collect(&swapped.function, ds)
            })
            .collect();
        let vconfig = ValidatorConfig {
            trials: bench_args.conform_trials,
            seed_base: DRIFT_CONFORM_SEED_BASE,
            scale: cfg.scale,
            threads: cfg.threads,
            test_confidence: 0.95,
        };
        Some(validate_profiles(&swapped, &spec, &profiles, &vconfig).map_err(|e| err(&e))?)
    } else {
        None
    };

    Ok(record_from(
        bench.name(),
        scenario,
        bench_args,
        noise_std,
        &config,
        &session,
        conform,
    ))
}

/// Summarizes one finished session into its JSON/table record.
fn record_from(
    benchmark: &str,
    scenario: &str,
    bench_args: &BenchArgs,
    drift_noise: f64,
    config: &SessionConfig,
    session: &SessionResult,
    conform: Option<GuaranteeReport>,
) -> SessionRecord {
    let pre: Vec<_> = session.datasets.iter().take(bench_args.drift_at).collect();
    let pre_drift_speedup = if pre.is_empty() {
        0.0
    } else {
        pre.iter().map(|d| d.run.speedup()).sum::<f64>() / pre.len() as f64
    };
    let post: Vec<_> = session.datasets.iter().filter(|d| d.epoch > 0).collect();
    let post_swap_speedup = if post.is_empty() {
        0.0
    } else {
        post.iter().map(|d| d.run.speedup()).sum::<f64>() / post.len() as f64
    };
    let post_swap_invocation_rate = if post.is_empty() {
        0.0
    } else {
        post.iter().map(|d| d.run.invocation_rate()).sum::<f64>() / post.len() as f64
    };
    let post_swap_quality_passes = post
        .iter()
        .filter(|d| d.run.quality_loss <= config.spec.max_quality_loss)
        .count();
    let final_guard_state = session
        .datasets
        .last()
        .map(|d| d.guard_state)
        .unwrap_or(GuardState::Monitoring);
    // "Recovered" means different things per scenario: under sustained
    // drift the loop must swap and serve accelerated again; under a
    // transient it must NOT swap — the guard walks back up on its own
    // once the distribution reverts.
    let recovered = if scenario == "transient" {
        session.swaps.is_empty() && final_guard_state == GuardState::Monitoring
    } else {
        !session.swaps.is_empty() && post_swap_invocation_rate >= config.recert.min_invocation_rate
    };
    SessionRecord {
        benchmark: benchmark.to_string(),
        scenario: scenario.to_string(),
        datasets: session.datasets.len(),
        drift_at: bench_args.drift_at,
        drift_scale: bench_args.drift_scale,
        drift_offset: bench_args.drift_offset,
        drift_noise,
        fell_back: session.watchdog.time_in.fallback > 0,
        swaps: session.recert.swaps,
        recert_attempts: session.recert.attempts,
        certify_trials: session.swaps.iter().map(|s| s.certify_trials).sum(),
        calibration_datasets: session.recert.calibration_datasets,
        exhausted: session.recert.exhausted,
        final_epoch: session.final_point.epoch,
        final_guard_state: format!("{final_guard_state:?}").to_lowercase(),
        time_in_monitoring: session.watchdog.time_in.monitoring,
        time_in_throttled: session.watchdog.time_in.throttled,
        time_in_fallback: session.watchdog.time_in.fallback,
        time_in_probing: session.watchdog.time_in.probing,
        recert_cycles: session.recert_charge.cycles,
        recert_energy: session.recert_charge.energy,
        pre_drift_speedup,
        post_swap_datasets: post.len(),
        post_swap_speedup,
        post_swap_invocation_rate,
        post_swap_quality_passes,
        recovered,
        conform,
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_args = extract_bench_args(&mut args);
    let cfg = match ExperimentConfig::from_arg_list(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "bench flags: --session-datasets N --drift-at K --drift-scale X \
                 --drift-offset X --drift-noise X --select-after N \
                 --certify-trials N --conform-trials M \
                 --scenarios step,ramp,transient --out PATH"
            );
            std::process::exit(2);
        }
    };
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    println!("# Figure W: self-healing — re-certify under drift instead of parking in fallback");
    println!(
        "# scale={:?} quality={:.1}% confidence={:.0}% success-rate={:.0}% \
         session-datasets={} drift-at={} drift=(scale {:.2}, offset {:.2}, noise {}) \
         conform-trials={} scenarios={}\n",
        cfg.scale,
        quality * 100.0,
        cfg.confidence * 100.0,
        cfg.success_rate * 100.0,
        bench_args.session_datasets,
        bench_args.drift_at,
        bench_args.drift_scale,
        bench_args.drift_offset,
        bench_args
            .drift_noise
            .map_or_else(|| "per-benchmark".to_string(), |n| format!("{n:.2}")),
        bench_args.conform_trials,
        bench_args.scenarios.join(",")
    );

    let mut table = TextTable::new([
        "benchmark",
        "scenario",
        "noise",
        "guard",
        "swap",
        "post rate",
        "post speedup",
        "post q-pass",
        "recert Mcycles",
        "unseen drifted",
        "recovered",
    ]);
    let mut sessions = Vec::new();
    let mut step_recovered = 0usize;
    let mut step_total = 0usize;

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        for scenario in &bench_args.scenarios {
            let record = match run_scenario(&bench, &cfg, &bench_args, quality, scenario) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{name}/{scenario}: {e}");
                    continue;
                }
            };
            if scenario == "step" {
                step_total += 1;
                step_recovered += usize::from(record.recovered);
            }
            let guard = if record.fell_back {
                format!("fallback {} ds", record.time_in_fallback)
            } else {
                "never fell back".to_string()
            };
            let swap = if record.swaps > 0 {
                format!(
                    "epoch {} ({} trials, {} attempts)",
                    record.final_epoch, record.certify_trials, record.recert_attempts
                )
            } else if record.exhausted > 0 {
                "exhausted".to_string()
            } else {
                "none".to_string()
            };
            let conform = match &record.conform {
                Some(report) => format!(
                    "{} ({}/{})",
                    report.verdict.label(),
                    report.successes,
                    report.trials
                ),
                None => "-".to_string(),
            };
            table.row([
                record.benchmark.clone(),
                record.scenario.clone(),
                format!("{:.2}", record.drift_noise),
                guard,
                swap,
                format!("{:.1}%", record.post_swap_invocation_rate * 100.0),
                format!("{:.2}x", record.post_swap_speedup),
                format!(
                    "{}/{}",
                    record.post_swap_quality_passes, record.post_swap_datasets
                ),
                format!("{:.1}", record.recert_cycles / 1e6),
                conform,
                if record.recovered { "yes" } else { "NO" }.to_string(),
            ]);
            sessions.push(record);
        }
    }

    println!("{table}");
    println!(
        "closed loop restored certified accelerated operation on {step_recovered} of \
         {step_total} benchmarks under sustained (step) drift — the open-loop guardband \
         restores 0 (permanent fallback)"
    );

    let json = JsonReport {
        scale: format!("{:?}", cfg.scale).to_lowercase(),
        quality,
        confidence: cfg.confidence,
        success_rate: cfg.success_rate,
        session_seed_base: SESSION_SEED_BASE,
        conform_seed_base: DRIFT_CONFORM_SEED_BASE,
        sessions,
    };
    let json = serde_json::to_string(&json).expect("report serializes");
    std::fs::write(&bench_args.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", bench_args.out.display());
        std::process::exit(1);
    });
    eprintln!("wrote {}", bench_args.out.display());
}
