//! Figure 10: energy-delay-product improvement versus success rate at
//! 95% confidence, 5% quality loss.
//!
//! Tightening the required success rate forces a tighter threshold, fewer
//! accelerator invocations, and therefore smaller EDP gains: "higher
//! success rate provides higher statistical guarantee and therefore comes
//! at a higher price."

use mithra_bench::runner::{certify_at, prepare_base, BenchmarkBase};
use mithra_bench::{evaluate, DesignKind, ExperimentConfig, TextTable};
use mithra_stats::descriptive::geomean;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let quality = cfg.quality_levels.get(1).copied().unwrap_or(0.05);
    let success_rates = [0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95];
    println!(
        "# Figure 10: EDP improvement vs success rate ({:.1}% quality, {:.0}% confidence)",
        quality * 100.0,
        cfg.confidence * 100.0
    );
    println!(
        "# scale={:?} datasets={} validation={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets
    );

    // Train + profile each benchmark once; re-certify per success rate.
    let bases: Vec<BenchmarkBase> = cfg
        .suite_or_exit()
        .into_iter()
        .map(|bench| prepare_base(bench, &cfg).expect("NPU training succeeds"))
        .collect();

    let mut table = TextTable::new(["success rate", "EDP improvement (table)", "mean threshold"]);
    for &s in &success_rates {
        let sweep_cfg = ExperimentConfig {
            success_rate: s,
            ..cfg.clone()
        };
        let mut edps = Vec::new();
        let mut thresholds = Vec::new();
        for base in &bases {
            let prepared = match certify_at(base, &sweep_cfg, quality) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{} @ S={s}: {e}", base.name);
                    continue;
                }
            };
            thresholds.push(f64::from(prepared.compiled.threshold.threshold));
            let summary = evaluate(&prepared, DesignKind::Table, quality).summary;
            edps.push(summary.edp_improvement);
        }
        if edps.is_empty() {
            continue;
        }
        table.row([
            format!("{:.0}%", s * 100.0),
            format!("{:.2}x", geomean(&edps).expect("positive EDP")),
            format!(
                "{:.4}",
                thresholds.iter().sum::<f64>() / thresholds.len() as f64
            ),
        ]);
    }
    println!("{table}");
    println!("paper: benefits decrease monotonically as the success rate rises");
}
