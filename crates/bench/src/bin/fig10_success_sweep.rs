//! Figure 10: energy-delay-product improvement versus success rate at
//! 95% confidence, 5% quality loss.
//!
//! Tightening the required success rate forces a tighter threshold, fewer
//! accelerator invocations, and therefore smaller EDP gains: "higher
//! success rate provides higher statistical guarantee and therefore comes
//! at a higher price."

use mithra_bench::{collect_profiles_parallel, evaluate, DesignKind, ExperimentConfig, TextTable};
use mithra_bench::runner::{PreparedBenchmark, VALIDATION_SEED_BASE};
use mithra_core::function::{AcceleratedFunction, NpuTrainConfig};
use mithra_core::pipeline::{compile_with_profiles, CompileConfig};
use mithra_core::threshold::QualitySpec;
use mithra_stats::descriptive::geomean;
use std::sync::Arc;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let quality = cfg.quality_levels.get(1).copied().unwrap_or(0.05);
    let success_rates = [0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95];
    println!(
        "# Figure 10: EDP improvement vs success rate ({:.1}% quality, {:.0}% confidence)",
        quality * 100.0,
        cfg.confidence * 100.0
    );
    println!(
        "# scale={:?} datasets={} validation={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets
    );

    // Train + profile each benchmark once; re-certify per success rate.
    struct Base {
        function: AcceleratedFunction,
        profiles: Vec<mithra_core::profile::DatasetProfile>,
        validation: Vec<mithra_core::profile::DatasetProfile>,
        name: &'static str,
    }
    let bases: Vec<Base> = cfg
        .suite()
        .into_iter()
        .map(|bench| {
            let name = bench.name();
            let train_sets: Vec<_> = (0..10u64).map(|i| bench.dataset(i, cfg.scale)).collect();
            let function = AcceleratedFunction::train(
                Arc::clone(&bench),
                &train_sets,
                &NpuTrainConfig::default(),
            )
            .expect("NPU training succeeds");
            let profiles =
                collect_profiles_parallel(&function, 0, cfg.compile_datasets, cfg.scale);
            let validation = collect_profiles_parallel(
                &function,
                VALIDATION_SEED_BASE,
                cfg.validation_datasets,
                cfg.scale,
            );
            Base {
                function,
                profiles,
                validation,
                name,
            }
        })
        .collect();

    let mut table = TextTable::new(["success rate", "EDP improvement (table)", "mean threshold"]);
    for &s in &success_rates {
        let mut edps = Vec::new();
        let mut thresholds = Vec::new();
        for base in &bases {
            let compile_cfg = CompileConfig {
                scale: cfg.scale,
                compile_datasets: cfg.compile_datasets,
                spec: match QualitySpec::new(quality, cfg.confidence, s) {
                    Ok(sp) => sp,
                    Err(e) => {
                        eprintln!("invalid spec: {e}");
                        continue;
                    }
                },
                ..CompileConfig::default()
            };
            let compiled = match compile_with_profiles(
                base.function.clone(),
                base.profiles.clone(),
                &compile_cfg,
            ) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{} @ S={s}: {e}", base.name);
                    continue;
                }
            };
            thresholds.push(f64::from(compiled.threshold.threshold));
            let prepared = PreparedBenchmark {
                name: base.name,
                compiled,
                validation: base.validation.clone(),
            };
            let summary = evaluate(&prepared, DesignKind::Table, quality).summary;
            edps.push(summary.edp_improvement);
        }
        if edps.is_empty() {
            continue;
        }
        table.row([
            format!("{:.0}%", s * 100.0),
            format!("{:.2}x", geomean(&edps).expect("positive EDP")),
            format!(
                "{:.4}",
                thresholds.iter().sum::<f64>() / thresholds.len() as f64
            ),
        ]);
    }
    println!("{table}");
    println!("paper: benefits decrease monotonically as the success rate rises");
}
