//! Serving-throughput benchmark: drives `mithra-serve` with an open-loop
//! seeded arrival schedule and sweeps worker count × batch size, per
//! benchmark and for the mixed suite, writing `BENCH_serve.json`.
//!
//! The arrival schedule is generated up front from `--arrival-seed` (a
//! Fisher–Yates shuffle of every invocation, across endpoints in the
//! suite sweep), so the offered load is identical for every grid point;
//! only the pool geometry changes. Each grid point is timed over
//! `--reps` fresh engine runs (after one untimed warmup) from first
//! submission to drained shutdown. Simulated cycles per invocation come
//! from the engine's `RunResult` — the same numbers sequential `simulate`
//! produces — so the sweep shows wall-clock throughput scaling at
//! constant simulated cost.
//!
//! Serve-specific flags (all optional) are consumed before the shared
//! experiment flags: `--serve-workers 1,2,4`, `--serve-batches 1,8`,
//! `--arrival-seed N`, `--reps N`, `--out PATH`. The shared `--threads`,
//! `--bench`, `--scale`, `--cache-dir`/`--no-cache`, `--quality`, and
//! `--watchdog-period` flags are honored like every other figure binary.

use mithra_bench::runner::DEFAULT_CACHE_DIR;
use mithra_bench::{default_threads, ExperimentConfig};
use mithra_core::pipeline::{compile, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_serve::{EndpointSpec, Request, ServeConfig, ServeEngine};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Seed base for the datasets the engine serves — disjoint from both the
/// compilation seeds (0..) and the validation seeds (1_000_000..), so
/// serving always faces unseen data.
const SERVE_SEED_BASE: u64 = 2_000_000;

/// Requests offered per [`ServeEngine::submit_batch`] call — large enough
/// to amortize producer-side synchronization, small against the queue.
const SUBMIT_CHUNK: usize = 64;

/// One timed grid point.
#[derive(Debug, Serialize)]
struct RunRecord {
    workers: usize,
    batch: usize,
    reps: usize,
    wall_ms: f64,
    invocations_per_sec: f64,
    cycles_per_invocation: f64,
    speedup_vs_baseline: f64,
    served: u64,
    approx: u64,
    fallback: u64,
    rejected_queue_full: u64,
    config_bursts: u64,
    watchdog_samples: u64,
    watchdog_breaches: u64,
    /// Per-invocation latency percentiles in simulated cycles, from the
    /// latency histograms of every endpoint merged (bucket upper bounds).
    p50_cycles: u64,
    p99_cycles: u64,
    p999_cycles: u64,
}

/// One endpoint of a sweep (a single benchmark, or one member of the
/// suite mix).
#[derive(Debug, Serialize)]
struct EndpointInfo {
    name: String,
    invocations: usize,
}

/// A full worker × batch sweep over one offered load.
#[derive(Debug, Serialize)]
struct Sweep {
    name: String,
    endpoints: Vec<EndpointInfo>,
    total_invocations: usize,
    runs: Vec<RunRecord>,
}

/// The whole `BENCH_serve.json` document.
#[derive(Debug, Serialize)]
struct Report {
    scale: String,
    quality: f64,
    watchdog_period: usize,
    arrival_seed: u64,
    /// Available parallelism of the measuring host — worker-dimension
    /// scaling is bounded by this; on a single-core host only the batch
    /// dimension can show wall-clock speedup.
    host_threads: usize,
    worker_counts: Vec<usize>,
    batch_sizes: Vec<usize>,
    benchmarks: Vec<Sweep>,
    suite: Option<Sweep>,
}

/// Serve-specific options, extracted ahead of the shared parser.
struct ServeArgs {
    /// `None` = derive the sweep from the shared `--threads` value.
    workers: Option<Vec<usize>>,
    batches: Vec<usize>,
    arrival_seed: u64,
    reps: usize,
    out: PathBuf,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            workers: None,
            batches: vec![1, 8],
            arrival_seed: 0xA221,
            reps: 3,
            out: PathBuf::from("BENCH_serve.json"),
        }
    }
}

impl ServeArgs {
    /// The worker-count sweep, anchored at the 1-worker baseline and
    /// topping out at the shared `--threads` value by default (always at
    /// least two counts, so the scaling dimension is populated even on a
    /// single-core host).
    fn worker_counts(&self, threads: usize) -> Vec<usize> {
        let mut workers = self.workers.clone().unwrap_or_else(|| vec![1, 2, threads]);
        if !workers.contains(&1) {
            workers.insert(0, 1);
        }
        workers.retain(|&w| w > 0);
        workers.sort_unstable();
        workers.dedup();
        workers
    }
}

fn parse_list(flag: &str, value: &str) -> Vec<usize> {
    value
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("malformed value `{value}` for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// Pulls the serve-specific flags out of `args`, leaving the shared
/// experiment flags for [`ExperimentConfig::from_arg_list`].
fn extract_serve_args(args: &mut Vec<String>) -> ServeArgs {
    let mut serve = ServeArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take_value = || -> String {
            if i + 1 >= args.len() {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        };
        match flag.as_str() {
            "--serve-workers" => serve.workers = Some(parse_list(&flag, &take_value())),
            "--serve-batches" => serve.batches = parse_list(&flag, &take_value()),
            "--arrival-seed" => {
                serve.arrival_seed = parse_list(&flag, &take_value())[0] as u64;
            }
            "--reps" => serve.reps = parse_list(&flag, &take_value())[0].max(1),
            "--out" => serve.out = PathBuf::from(take_value()),
            _ => i += 1,
        }
    }
    // The 1-worker/batch-1 baseline anchors every speedup number.
    if !serve.batches.contains(&1) {
        serve.batches.insert(0, 1);
    }
    serve.batches.sort_unstable();
    serve.batches.dedup();
    serve
}

/// One endpoint's compiled artifact plus the dataset profile it serves.
struct Prepared {
    name: String,
    compiled: Arc<Compiled>,
    profile: DatasetProfile,
}

impl Prepared {
    fn spec(&self) -> EndpointSpec {
        EndpointSpec {
            name: self.name.clone(),
            compiled: Arc::clone(&self.compiled),
            profile: self.profile.clone(),
            routed: None,
        }
    }
}

/// Times one grid point: `reps` fresh engines (plus one untimed warmup),
/// each fed the identical arrival schedule, elapsed summed from first
/// submission to drained shutdown. Returns the record and the final
/// engine report for cost/metric fields.
fn run_point(
    prepared: &[Prepared],
    schedule: &[Request],
    workers: usize,
    batch: usize,
    watchdog_period: usize,
    reps: usize,
) -> RunRecord {
    let config = ServeConfig {
        workers,
        batch,
        queue_depth: 1024,
        watchdog_period,
        ..ServeConfig::default()
    };
    let mut total = std::time::Duration::ZERO;
    let mut last = None;
    for rep in 0..=reps {
        let specs = prepared.iter().map(Prepared::spec).collect();
        let engine = ServeEngine::start(specs, &config).expect("engine must start");
        // The timed window is the serving phase only: first submission to
        // drained shutdown. Slot folding and quality scoring run after
        // the clock stops — they are reporting, not serving.
        let t0 = Instant::now();
        let mut offset = 0;
        let mut backoff = mithra_serve::Backoff::new();
        while offset < schedule.len() {
            let end = (offset + SUBMIT_CHUNK).min(schedule.len());
            match engine.submit_batch(&schedule[offset..end]) {
                // Queue full: back off (spin, then yield, then bounded
                // parks) instead of burning a core the workers need.
                Ok(0) => backoff.wait(),
                Ok(accepted) => {
                    offset += accepted;
                    backoff.reset();
                }
                Err(reason) => panic!("schedule entries are valid: {reason}"),
            }
        }
        let drained = engine.join().expect("workers must drain cleanly");
        let elapsed = t0.elapsed();
        if rep > 0 {
            // Rep 0 is the warmup: first-touch page faults and thread
            // spin-up land there, not in the measurement.
            total += elapsed;
        }
        last = Some(drained.report().expect("quality scoring succeeds"));
    }
    let report = last.expect("at least one rep ran");

    let n = schedule.len();
    let wall_s = total.as_secs_f64();
    let mut cycles = 0.0;
    let mut served = 0;
    let mut approx = 0;
    let mut fallback = 0;
    let mut rejected_queue_full = 0;
    let mut config_bursts = 0;
    let mut watchdog_samples = 0;
    let mut watchdog_breaches = 0;
    let mut merged = mithra_serve::EndpointCounters::default();
    for endpoint in &report.endpoints {
        let result = endpoint
            .result
            .expect("the schedule covers every invocation");
        cycles += result.accelerated_cycles;
        served += endpoint.counters.served;
        approx += endpoint.counters.approx;
        fallback += endpoint.counters.fallback;
        rejected_queue_full += endpoint.counters.rejected_queue_full;
        config_bursts += endpoint.counters.config_bursts;
        watchdog_samples += endpoint.counters.watchdog.samples;
        watchdog_breaches += endpoint.counters.watchdog.breaches;
        merged.absorb(&endpoint.counters);
    }
    assert_eq!(served as usize, n, "full coverage per engine run");
    RunRecord {
        workers,
        batch,
        reps,
        wall_ms: wall_s * 1e3,
        invocations_per_sec: (n * reps) as f64 / wall_s,
        cycles_per_invocation: cycles / n as f64,
        speedup_vs_baseline: 0.0, // filled once the baseline is known
        served,
        approx,
        fallback,
        rejected_queue_full,
        config_bursts,
        watchdog_samples,
        watchdog_breaches,
        p50_cycles: merged.latency.percentile(0.50),
        p99_cycles: merged.latency.percentile(0.99),
        p999_cycles: merged.latency.percentile(0.999),
    }
}

fn sweep(
    name: &str,
    prepared: &[Prepared],
    schedule: &[Request],
    worker_counts: &[usize],
    serve: &ServeArgs,
    watchdog_period: usize,
) -> Sweep {
    let mut runs = Vec::new();
    for &workers in worker_counts {
        for &batch in &serve.batches {
            runs.push(run_point(
                prepared,
                schedule,
                workers,
                batch,
                watchdog_period,
                serve.reps,
            ));
        }
    }
    let baseline = runs
        .iter()
        .find(|r| r.workers == 1 && r.batch == 1)
        .expect("the 1-worker/batch-1 baseline is always in the grid")
        .invocations_per_sec;
    for run in &mut runs {
        run.speedup_vs_baseline = run.invocations_per_sec / baseline;
    }
    Sweep {
        name: name.to_string(),
        endpoints: prepared
            .iter()
            .map(|p| EndpointInfo {
                name: p.name.clone(),
                invocations: p.profile.invocation_count(),
            })
            .collect(),
        total_invocations: schedule.len(),
        runs,
    }
}

fn print_sweep(sweep: &Sweep) {
    println!(
        "## {} ({} invocations offered)",
        sweep.name, sweep.total_invocations
    );
    println!("workers  batch  inv/s        cycles/inv     speedup");
    for run in &sweep.runs {
        println!(
            "{:<7}  {:<5}  {:<11.0}  {:<13.1}  {:.2}x",
            run.workers,
            run.batch,
            run.invocations_per_sec,
            run.cycles_per_invocation,
            run.speedup_vs_baseline
        );
    }
    println!();
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let serve = extract_serve_args(&mut args);
    let cfg = match ExperimentConfig::from_arg_list(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "serve flags: --serve-workers 1,2,4 --serve-batches 1,8 \
                 --arrival-seed N --reps N --out PATH"
            );
            std::process::exit(2);
        }
    };
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    let worker_counts = serve.worker_counts(cfg.threads.unwrap_or_else(default_threads));
    eprintln!(
        "serving sweep: workers {:?} × batches {:?}, {} reps, cache {}",
        worker_counts,
        serve.batches,
        serve.reps,
        cfg.cache_dir
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| format!("off (default {DEFAULT_CACHE_DIR})"))
    );

    let prepared: Vec<Prepared> = cfg
        .suite_or_exit()
        .into_iter()
        .enumerate()
        .map(|(i, bench)| {
            let name = bench.name().to_string();
            let compile_cfg = cfg
                .compile_config(quality)
                .unwrap_or_else(|e| panic!("bad quality spec: {e}"));
            let compiled = compile(bench, &compile_cfg)
                .unwrap_or_else(|e| panic!("compiling {name} failed: {e}"));
            let dataset = compiled
                .function
                .dataset(SERVE_SEED_BASE + i as u64, cfg.scale);
            let profile = DatasetProfile::collect(&compiled.function, dataset);
            Prepared {
                name,
                compiled: Arc::new(compiled),
                profile,
            }
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(serve.arrival_seed);
    let mut benchmarks = Vec::new();
    for p in &prepared {
        let mut schedule: Vec<Request> = (0..p.profile.invocation_count())
            .map(|inv| Request {
                endpoint: 0,
                invocation: inv,
            })
            .collect();
        schedule.shuffle(&mut rng);
        let one = std::slice::from_ref(p);
        let result = sweep(
            &p.name,
            one,
            &schedule,
            &worker_counts,
            &serve,
            cfg.watchdog_period,
        );
        print_sweep(&result);
        benchmarks.push(result);
    }

    // The mixed-suite sweep: every endpoint behind one engine, arrivals
    // interleaved by the same seeded shuffle.
    let suite = (prepared.len() > 1).then(|| {
        let mut schedule: Vec<Request> = prepared
            .iter()
            .enumerate()
            .flat_map(|(ep, p)| {
                (0..p.profile.invocation_count()).map(move |inv| Request {
                    endpoint: ep,
                    invocation: inv,
                })
            })
            .collect();
        schedule.shuffle(&mut rng);
        let result = sweep(
            "suite",
            &prepared,
            &schedule,
            &worker_counts,
            &serve,
            cfg.watchdog_period,
        );
        print_sweep(&result);
        result
    });

    let report = Report {
        scale: format!("{:?}", cfg.scale).to_lowercase(),
        quality,
        watchdog_period: cfg.watchdog_period,
        arrival_seed: serve.arrival_seed,
        host_threads: default_threads(),
        worker_counts: worker_counts.clone(),
        batch_sizes: serve.batches.clone(),
        benchmarks,
        suite,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&serve.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", serve.out.display());
        std::process::exit(1);
    });
    eprintln!("wrote {}", serve.out.display());
}
