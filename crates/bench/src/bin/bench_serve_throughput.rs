//! Serving-throughput benchmark: drives `mithra-serve` with an open-loop
//! seeded arrival schedule and sweeps worker count × batch size, per
//! benchmark and for the mixed suite, writing `BENCH_serve.json`.
//!
//! The arrival schedule is generated up front from `--arrival-seed` (a
//! Fisher–Yates shuffle of every invocation, across endpoints in the
//! suite sweep), so the offered load is identical for every grid point;
//! only the pool geometry changes. Each grid point is timed over
//! `--reps` fresh engine runs (after one untimed warmup) from first
//! submission to drained shutdown; when several kernel backends are
//! swept, their timed reps are interleaved at each grid point so slow
//! host-speed drift cannot bias one backend. Simulated cycles per
//! invocation come from the engine's `RunResult` — the same numbers
//! sequential `simulate` produces — so the sweep shows wall-clock
//! throughput scaling at constant simulated cost. Each run also reports
//! the wall spent inside the batched accelerator forward
//! (`approx_wall_ms` / `approx_ns_per_invocation`): at this suite's
//! topology sizes, end-to-end serving wall is dominated by queueing and
//! per-rep engine spawn, so the kernel-sensitive segment is surfaced
//! separately.
//!
//! Serve-specific flags (all optional) are consumed before the shared
//! experiment flags: `--serve-workers 1,2,4`, `--serve-batches 1,8`,
//! `--serve-kernels scalar,simd` (default: scalar plus simd when the
//! host supports it; each kernel compiles its own artifacts and is swept
//! over the identical arrival schedule), `--arrival-seed N`, `--reps N`,
//! `--out PATH`. The shared `--threads`, `--bench`, `--scale`,
//! `--cache-dir`/`--no-cache`, `--quality`, and `--watchdog-period`
//! flags are honored like every other figure binary.

use mithra_bench::runner::DEFAULT_CACHE_DIR;
use mithra_bench::{default_threads, ExperimentConfig};
use mithra_core::pipeline::{compile, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_npu::kernel::{host_simd_features, KernelBackend};
use mithra_serve::{EndpointSpec, Request, ServeConfig, ServeEngine};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Seed base for the datasets the engine serves — disjoint from both the
/// compilation seeds (0..) and the validation seeds (1_000_000..), so
/// serving always faces unseen data. Pinned in [`mithra_core::seeds`].
use mithra_core::seeds::SERVE_SEED_BASE;

/// Requests offered per [`ServeEngine::submit_batch`] call — large enough
/// to amortize producer-side synchronization, small against the queue.
const SUBMIT_CHUNK: usize = 64;

/// One timed grid point.
#[derive(Debug, Serialize)]
struct RunRecord {
    kernel: String,
    workers: usize,
    batch: usize,
    reps: usize,
    wall_ms: f64,
    invocations_per_sec: f64,
    cycles_per_invocation: f64,
    speedup_vs_baseline: f64,
    /// Host wall spent inside the batched accelerator forward
    /// (`approx_batch_with`) across all worker shards, for the
    /// **fastest timed rep**. This is the kernel-backend-sensitive
    /// slice of `wall_ms`; the remainder is queue/scheduling/modeling
    /// overhead identical across backends. The minimum over reps is
    /// used because on a contended host a single scheduler timeslice
    /// landing inside one timed call dwarfs the microsecond-scale
    /// segments being summed — the spike-free floor is the robust
    /// estimator of the kernel's cost.
    approx_wall_ms: f64,
    /// `approx_wall_ms` normalized per accelerated invocation, in
    /// nanoseconds — the cross-kernel comparison that survives engine
    /// spawn and scheduler noise.
    approx_ns_per_invocation: f64,
    served: u64,
    approx: u64,
    fallback: u64,
    rejected_queue_full: u64,
    config_bursts: u64,
    watchdog_samples: u64,
    watchdog_breaches: u64,
    /// Per-invocation latency percentiles in simulated cycles, from the
    /// latency histograms of every endpoint merged (bucket upper bounds).
    p50_cycles: u64,
    p99_cycles: u64,
    p999_cycles: u64,
}

/// One endpoint of a sweep (a single benchmark, or one member of the
/// suite mix).
#[derive(Debug, Serialize)]
struct EndpointInfo {
    name: String,
    invocations: usize,
}

/// A full worker × batch sweep over one offered load.
#[derive(Debug, Serialize)]
struct Sweep {
    name: String,
    endpoints: Vec<EndpointInfo>,
    total_invocations: usize,
    runs: Vec<RunRecord>,
}

/// The whole `BENCH_serve.json` document.
#[derive(Debug, Serialize)]
struct Report {
    scale: String,
    quality: f64,
    watchdog_period: usize,
    arrival_seed: u64,
    /// Available parallelism of the measuring host — worker-dimension
    /// scaling is bounded by this; on a single-core host only the batch
    /// dimension can show wall-clock speedup.
    host_threads: usize,
    /// SIMD feature set of the measuring host (empty = scalar-only host).
    host_simd: Vec<String>,
    worker_counts: Vec<usize>,
    batch_sizes: Vec<usize>,
    /// Kernel backends swept; each (workers, batch) point is measured
    /// once per backend, over its own compiled artifacts but the
    /// identical arrival schedule.
    kernels: Vec<String>,
    benchmarks: Vec<Sweep>,
    suite: Option<Sweep>,
}

/// Serve-specific options, extracted ahead of the shared parser.
struct ServeArgs {
    /// `None` = derive the sweep from the shared `--threads` value.
    workers: Option<Vec<usize>>,
    batches: Vec<usize>,
    arrival_seed: u64,
    reps: usize,
    out: PathBuf,
    /// `None` = scalar plus simd when the host supports it.
    kernels: Option<Vec<KernelBackend>>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            workers: None,
            batches: vec![1, 8],
            arrival_seed: 0xA221,
            reps: 3,
            out: PathBuf::from("BENCH_serve.json"),
            kernels: None,
        }
    }
}

impl ServeArgs {
    /// The worker-count sweep, anchored at the 1-worker baseline and
    /// topping out at the shared `--threads` value by default (always at
    /// least two counts, so the scaling dimension is populated even on a
    /// single-core host).
    fn worker_counts(&self, threads: usize) -> Vec<usize> {
        let mut workers = self.workers.clone().unwrap_or_else(|| vec![1, 2, threads]);
        if !workers.contains(&1) {
            workers.insert(0, 1);
        }
        workers.retain(|&w| w > 0);
        workers.sort_unstable();
        workers.dedup();
        workers
    }

    /// The kernel sweep: scalar first (the reference every cross-kernel
    /// comparison is judged against), then simd when the host can run it.
    fn kernel_backends(&self) -> Vec<KernelBackend> {
        let mut kernels = self.kernels.clone().unwrap_or_else(|| {
            if KernelBackend::simd_available() {
                vec![KernelBackend::Scalar, KernelBackend::Simd]
            } else {
                vec![KernelBackend::Scalar]
            }
        });
        kernels.dedup();
        kernels
    }
}

fn parse_list(flag: &str, value: &str) -> Vec<usize> {
    value
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("malformed value `{value}` for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

/// Pulls the serve-specific flags out of `args`, leaving the shared
/// experiment flags for [`ExperimentConfig::from_arg_list`].
fn extract_serve_args(args: &mut Vec<String>) -> ServeArgs {
    let mut serve = ServeArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take_value = || -> String {
            if i + 1 >= args.len() {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        };
        match flag.as_str() {
            "--serve-workers" => serve.workers = Some(parse_list(&flag, &take_value())),
            "--serve-batches" => serve.batches = parse_list(&flag, &take_value()),
            "--arrival-seed" => {
                serve.arrival_seed = parse_list(&flag, &take_value())[0] as u64;
            }
            "--reps" => serve.reps = parse_list(&flag, &take_value())[0].max(1),
            "--out" => serve.out = PathBuf::from(take_value()),
            "--serve-kernels" => {
                serve.kernels = Some(
                    take_value()
                        .split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|e: String| {
                                eprintln!("{e}");
                                std::process::exit(2);
                            })
                        })
                        .collect(),
                );
            }
            _ => i += 1,
        }
    }
    // The 1-worker/batch-1 baseline anchors every speedup number.
    if !serve.batches.contains(&1) {
        serve.batches.insert(0, 1);
    }
    serve.batches.sort_unstable();
    serve.batches.dedup();
    serve
}

/// One endpoint's compiled artifact plus the dataset profile it serves.
struct Prepared {
    name: String,
    compiled: Arc<Compiled>,
    profile: DatasetProfile,
}

impl Prepared {
    fn spec(&self) -> EndpointSpec {
        EndpointSpec {
            name: self.name.clone(),
            compiled: Arc::clone(&self.compiled),
            profile: self.profile.clone(),
            routed: None,
        }
    }
}

/// Runs one engine over the schedule: submission loop, drained shutdown,
/// wall of the serving phase only (slot folding and quality scoring run
/// after the clock stops — they are reporting, not serving).
fn run_engine(
    prepared: &[Prepared],
    schedule: &[Request],
    config: &ServeConfig,
) -> (std::time::Duration, mithra_serve::ServeReport) {
    let specs = prepared.iter().map(Prepared::spec).collect();
    let engine = ServeEngine::start(specs, config).expect("engine must start");
    let t0 = Instant::now();
    let mut offset = 0;
    let mut backoff = mithra_serve::Backoff::new();
    while offset < schedule.len() {
        let end = (offset + SUBMIT_CHUNK).min(schedule.len());
        match engine.submit_batch(&schedule[offset..end]) {
            // Queue full: back off (spin, then yield, then bounded
            // parks) instead of burning a core the workers need.
            Ok(0) => backoff.wait(),
            Ok(accepted) => {
                offset += accepted;
                backoff.reset();
            }
            Err(reason) => panic!("schedule entries are valid: {reason}"),
        }
    }
    let drained = engine.join().expect("workers must drain cleanly");
    let elapsed = t0.elapsed();
    let report = drained.report().expect("quality scoring succeeds");
    (elapsed, report)
}

/// Times one grid point for **every** kernel backend: `reps` fresh
/// engines per kernel (plus one untimed warmup each), the kernels'
/// timed reps interleaved (k₀, k₁, k₀, k₁, …) so slow host-speed drift
/// over a long sweep biases no backend — each cross-kernel ratio is
/// measured over the same wall-clock window, not scalar-first-then-simd.
fn run_point(
    prepared_by_kernel: &[&[Prepared]],
    kernels: &[KernelBackend],
    schedule: &[Request],
    workers: usize,
    batch: usize,
    watchdog_period: usize,
    reps: usize,
) -> Vec<RunRecord> {
    let config = ServeConfig {
        workers,
        batch,
        queue_depth: 1024,
        watchdog_period,
        ..ServeConfig::default()
    };
    let mut totals = vec![std::time::Duration::ZERO; kernels.len()];
    let mut approx_nanos = vec![u64::MAX; kernels.len()];
    let mut last: Vec<Option<mithra_serve::ServeReport>> =
        (0..kernels.len()).map(|_| None).collect();
    for rep in 0..=reps {
        for (k, prepared) in prepared_by_kernel.iter().enumerate() {
            let (elapsed, report) = run_engine(prepared, schedule, &config);
            if rep > 0 {
                // Rep 0 is the warmup: first-touch page faults and
                // thread spin-up land there, not in the measurement.
                totals[k] += elapsed;
                // Fastest rep: a scheduler timeslice landing inside one
                // timed call swamps the microsecond-scale segments, so
                // the spike-free floor — not the mean — estimates the
                // kernel's cost (see `RunRecord::approx_wall_ms`).
                let rep_nanos = report
                    .endpoints
                    .iter()
                    .map(|e| e.counters.approx_wall_nanos)
                    .sum::<u64>();
                approx_nanos[k] = approx_nanos[k].min(rep_nanos);
            }
            last[k] = Some(report);
        }
    }

    let n = schedule.len();
    kernels
        .iter()
        .enumerate()
        .map(|(k, &kernel)| {
            let report = last[k].take().expect("at least one rep ran");
            let wall_s = totals[k].as_secs_f64();
            let mut cycles = 0.0;
            let mut served = 0;
            let mut approx = 0;
            let mut fallback = 0;
            let mut rejected_queue_full = 0;
            let mut config_bursts = 0;
            let mut watchdog_samples = 0;
            let mut watchdog_breaches = 0;
            let mut merged = mithra_serve::EndpointCounters::default();
            for endpoint in &report.endpoints {
                let result = endpoint
                    .result
                    .expect("the schedule covers every invocation");
                cycles += result.accelerated_cycles;
                served += endpoint.counters.served;
                approx += endpoint.counters.approx;
                fallback += endpoint.counters.fallback;
                rejected_queue_full += endpoint.counters.rejected_queue_full;
                config_bursts += endpoint.counters.config_bursts;
                watchdog_samples += endpoint.counters.watchdog.samples;
                watchdog_breaches += endpoint.counters.watchdog.breaches;
                merged.absorb(&endpoint.counters);
            }
            assert_eq!(served as usize, n, "full coverage per engine run");
            RunRecord {
                kernel: kernel.to_string(),
                workers,
                batch,
                reps,
                wall_ms: wall_s * 1e3,
                invocations_per_sec: (n * reps) as f64 / wall_s,
                cycles_per_invocation: cycles / n as f64,
                speedup_vs_baseline: 0.0, // filled once the baseline is known
                approx_wall_ms: approx_nanos[k] as f64 / 1e6,
                // Decisions are deterministic per schedule, so every
                // timed rep accelerated the same `approx` invocations.
                approx_ns_per_invocation: if approx > 0 {
                    approx_nanos[k] as f64 / approx as f64
                } else {
                    0.0
                },
                served,
                approx,
                fallback,
                rejected_queue_full,
                config_bursts,
                watchdog_samples,
                watchdog_breaches,
                p50_cycles: merged.latency.percentile(0.50),
                p99_cycles: merged.latency.percentile(0.99),
                p999_cycles: merged.latency.percentile(0.999),
            }
        })
        .collect()
}

/// The worker × batch grid over one offered load, every kernel measured
/// at each point with interleaved reps. Speedups are judged against the
/// *same kernel's* 1-worker/batch-1 point, so the batching and scaling
/// dimensions read independently per backend; cross-kernel gain is the
/// ratio of matching grid points. Output runs are grouped by kernel
/// (scalar block first), each block in grid order.
fn sweep_runs(
    prepared_by_kernel: &[&[Prepared]],
    kernels: &[KernelBackend],
    schedule: &[Request],
    worker_counts: &[usize],
    serve: &ServeArgs,
    watchdog_period: usize,
) -> Vec<RunRecord> {
    let mut by_kernel: Vec<Vec<RunRecord>> = (0..kernels.len()).map(|_| Vec::new()).collect();
    for &workers in worker_counts {
        for &batch in &serve.batches {
            let records = run_point(
                prepared_by_kernel,
                kernels,
                schedule,
                workers,
                batch,
                watchdog_period,
                serve.reps,
            );
            for (k, record) in records.into_iter().enumerate() {
                by_kernel[k].push(record);
            }
        }
    }
    let mut runs = Vec::new();
    for mut kernel_runs in by_kernel {
        let baseline = kernel_runs
            .iter()
            .find(|r| r.workers == 1 && r.batch == 1)
            .expect("the 1-worker/batch-1 baseline is always in the grid")
            .invocations_per_sec;
        for run in &mut kernel_runs {
            run.speedup_vs_baseline = run.invocations_per_sec / baseline;
        }
        runs.append(&mut kernel_runs);
    }
    runs
}

fn print_sweep(sweep: &Sweep) {
    println!(
        "## {} ({} invocations offered)",
        sweep.name, sweep.total_invocations
    );
    println!("kernel  workers  batch  inv/s        cycles/inv     speedup  approx-ns/inv");
    for run in &sweep.runs {
        println!(
            "{:<6}  {:<7}  {:<5}  {:<11.0}  {:<13.1}  {:<6}  {:.0}",
            run.kernel,
            run.workers,
            run.batch,
            run.invocations_per_sec,
            run.cycles_per_invocation,
            format!("{:.2}x", run.speedup_vs_baseline),
            run.approx_ns_per_invocation
        );
    }
    println!();
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let serve = extract_serve_args(&mut args);
    let cfg = match ExperimentConfig::from_arg_list(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "serve flags: --serve-workers 1,2,4 --serve-batches 1,8 \
                 --serve-kernels scalar,simd --arrival-seed N --reps N --out PATH"
            );
            std::process::exit(2);
        }
    };
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    let worker_counts = serve.worker_counts(cfg.threads.unwrap_or_else(default_threads));
    let kernels = serve.kernel_backends();
    eprintln!(
        "serving sweep: kernels {:?} × workers {:?} × batches {:?}, {} reps, cache {}",
        kernels.iter().map(|k| k.as_str()).collect::<Vec<_>>(),
        worker_counts,
        serve.batches,
        serve.reps,
        cfg.cache_dir
            .as_ref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| format!("off (default {DEFAULT_CACHE_DIR})"))
    );

    // One compiled artifact set per kernel backend: a kernel serves the
    // network *it* trained, exactly like a real deployment would.
    let prepared_by_kernel: Vec<Vec<Prepared>> = kernels
        .iter()
        .map(|&kernel| {
            cfg.suite_or_exit()
                .into_iter()
                .enumerate()
                .map(|(i, bench)| {
                    let name = bench.name().to_string();
                    let mut compile_cfg = cfg
                        .compile_config(quality)
                        .unwrap_or_else(|e| panic!("bad quality spec: {e}"));
                    compile_cfg.kernel = kernel;
                    let compiled = compile(bench, &compile_cfg)
                        .unwrap_or_else(|e| panic!("compiling {name} failed: {e}"));
                    let dataset = compiled
                        .function
                        .dataset(SERVE_SEED_BASE + i as u64, cfg.scale);
                    let profile = DatasetProfile::collect(&compiled.function, dataset);
                    Prepared {
                        name,
                        compiled: Arc::new(compiled),
                        profile,
                    }
                })
                .collect()
        })
        .collect();
    let reference = &prepared_by_kernel[0];

    // Arrival schedules are drawn once, from the kernel-independent
    // invocation counts, so every kernel faces the identical offered load.
    let mut rng = StdRng::seed_from_u64(serve.arrival_seed);
    let mut benchmarks = Vec::new();
    for (b, p) in reference.iter().enumerate() {
        let mut schedule: Vec<Request> = (0..p.profile.invocation_count())
            .map(|inv| Request {
                endpoint: 0,
                invocation: inv,
            })
            .collect();
        schedule.shuffle(&mut rng);
        let per_kernel: Vec<&[Prepared]> = (0..kernels.len())
            .map(|k| std::slice::from_ref(&prepared_by_kernel[k][b]))
            .collect();
        let runs = sweep_runs(
            &per_kernel,
            &kernels,
            &schedule,
            &worker_counts,
            &serve,
            cfg.watchdog_period,
        );
        let result = Sweep {
            name: p.name.clone(),
            endpoints: vec![EndpointInfo {
                name: p.name.clone(),
                invocations: p.profile.invocation_count(),
            }],
            total_invocations: schedule.len(),
            runs,
        };
        print_sweep(&result);
        benchmarks.push(result);
    }

    // The mixed-suite sweep: every endpoint behind one engine, arrivals
    // interleaved by the same seeded shuffle.
    let suite = (reference.len() > 1).then(|| {
        let mut schedule: Vec<Request> = reference
            .iter()
            .enumerate()
            .flat_map(|(ep, p)| {
                (0..p.profile.invocation_count()).map(move |inv| Request {
                    endpoint: ep,
                    invocation: inv,
                })
            })
            .collect();
        schedule.shuffle(&mut rng);
        let per_kernel: Vec<&[Prepared]> = prepared_by_kernel.iter().map(Vec::as_slice).collect();
        let runs = sweep_runs(
            &per_kernel,
            &kernels,
            &schedule,
            &worker_counts,
            &serve,
            cfg.watchdog_period,
        );
        let result = Sweep {
            name: "suite".to_string(),
            endpoints: reference
                .iter()
                .map(|p| EndpointInfo {
                    name: p.name.clone(),
                    invocations: p.profile.invocation_count(),
                })
                .collect(),
            total_invocations: schedule.len(),
            runs,
        };
        print_sweep(&result);
        result
    });

    let report = Report {
        scale: format!("{:?}", cfg.scale).to_lowercase(),
        quality,
        watchdog_period: cfg.watchdog_period,
        arrival_seed: serve.arrival_seed,
        host_threads: default_threads(),
        host_simd: host_simd_features().iter().map(|s| s.to_string()).collect(),
        worker_counts: worker_counts.clone(),
        batch_sizes: serve.batches.clone(),
        kernels: kernels.iter().map(|k| k.to_string()).collect(),
        benchmarks,
        suite,
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&serve.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", serve.out.display());
        std::process::exit(1);
    });
    eprintln!("wrote {}", serve.out.display());
}
