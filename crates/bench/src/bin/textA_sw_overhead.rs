//! §V-B text experiment: software-only classifier overhead.
//!
//! "The software implementation of the table-based and neural classifiers
//! slow the average execution time by 2.9× and 9.6×, respectively. These
//! results confirm the necessity of a co-designed hardware-software
//! solution for quality control." We model the classifiers executing as
//! plain core code on every invocation and compare against the
//! hardware-assisted system.

use mithra_bench::{evaluate, prepare, DesignKind, ExperimentConfig, TextTable};
use mithra_sim::software::SoftwareClassifierCosts;
use mithra_stats::descriptive::geomean;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let quality = cfg.quality_levels.get(1).copied().unwrap_or(0.05);
    println!(
        "# Software-only classifier overhead at {:.1}% quality loss",
        quality * 100.0
    );
    println!(
        "# scale={:?} datasets={} validation={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets
    );

    let sw = SoftwareClassifierCosts::paper_default();
    let mut table = TextTable::new([
        "benchmark",
        "hw table cycles/inv",
        "sw table cycles/inv",
        "sw table slowdown",
        "sw neural cycles/inv",
        "sw neural slowdown",
    ]);
    let (mut table_slowdowns, mut neural_slowdowns) = (Vec::new(), Vec::new());

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let input_dim = bench.input_dim();
        let prepared = match prepare(bench, &cfg, quality) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        let hw_table = evaluate(&prepared, DesignKind::Table, quality);
        let hw_neural = evaluate(&prepared, DesignKind::Neural, quality);

        let n_tables = prepared.compiled.table.design().tables;
        let sw_table_cycles = sw.table_cycles(input_dim, n_tables);
        let sw_neural_cycles = sw.neural_cycles(prepared.compiled.neural.topology());

        // Software run: hardware-accelerated cycles plus the classifier
        // executed on the core for every invocation.
        let slowdown = |hw: &mithra_bench::EvalResult, extra_cycles: u64| -> f64 {
            let mut ratio_sum = 0.0;
            for run in &hw.runs {
                let sw_cycles = run.accelerated_cycles + (extra_cycles * run.total as u64) as f64;
                ratio_sum += sw_cycles / run.accelerated_cycles;
            }
            ratio_sum / hw.runs.len() as f64
        };
        let t_slow = slowdown(&hw_table, sw_table_cycles);
        let n_slow = slowdown(&hw_neural, sw_neural_cycles);
        table_slowdowns.push(t_slow);
        neural_slowdowns.push(n_slow);

        table.row([
            name.to_string(),
            "4".to_string(),
            sw_table_cycles.to_string(),
            format!("{t_slow:.2}x"),
            sw_neural_cycles.to_string(),
            format!("{n_slow:.2}x"),
        ]);
    }
    println!("{table}");
    if !table_slowdowns.is_empty() {
        println!(
            "geomean slowdown with software checks: table {:.1}x, neural {:.1}x (paper: 2.9x, 9.6x)",
            geomean(&table_slowdowns).expect("positive"),
            geomean(&neural_slowdowns).expect("positive")
        );
    }
}
