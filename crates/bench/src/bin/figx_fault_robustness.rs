//! Figure X: runtime guardband under injected faults.
//!
//! Sweeps seeded fault rates (bit flips in the accelerator's weights and
//! sigmoid LUT, classifier-table corruption, FIFO stalls/drops) across the
//! benchmarks at the first `--quality` level and compares quality loss and
//! speedup with the runtime quality watchdog off versus on. Rate 0 is the
//! clean baseline (the fault plan is disarmed; the production path runs).
//! `--watchdog-period` caps the sampling period; short datasets sample
//! denser (at least one check per 512 invocations) so detection latency
//! is a bounded fraction of the stream.
//! The footer counts the benchmarks on which the guardband restores the
//! certified quality target that unguarded faulted runs violate.

use mithra_bench::{ExperimentConfig, TextTable};
use mithra_core::watchdog::{self, QualityWatchdog};
use mithra_sim::fault::FaultPlan;
use mithra_sim::report::BenchmarkSummary;
use mithra_sim::system::{run, RunHooks, RunResult, SimOptions};
use mithra_sim::SimError;
use mithra_stats::clopper_pearson::Confidence;

/// Both guard configurations at one fault rate, over every validation
/// dataset. The fault plan is armed once per dataset and shared, so the
/// off/on comparison sees the identical faulted substrate.
struct RatePoint {
    off: BenchmarkSummary,
    on: BenchmarkSummary,
    breaches: u64,
}

/// The watchdog sampling period for one benchmark: `--watchdog-period`
/// caps it, but short datasets sample denser (at least one check per 512
/// invocations) so detection latency is a bounded *fraction* of the
/// stream, not a fixed invocation count.
fn effective_period(cfg: &ExperimentConfig, invocations: usize) -> usize {
    (invocations / 512).clamp(1, cfg.watchdog_period.max(1))
}

fn sweep_rate(
    prepared: &mithra_bench::PreparedBenchmark,
    cfg: &ExperimentConfig,
    rate: f64,
    wconfig: &mithra_core::watchdog::WatchdogConfig,
    quality: f64,
) -> Result<RatePoint, SimError> {
    let options = SimOptions::default();
    let plan = FaultPlan::uniform(cfg.fault_seed, rate);
    let n = prepared.validation.len();
    let mut off_runs: Vec<RunResult> = Vec::with_capacity(n);
    let mut on_runs: Vec<RunResult> = Vec::with_capacity(n);
    let mut breaches = 0u64;
    for profile in &prepared.validation {
        let period = effective_period(cfg, profile.invocation_count());
        let armed = if plan.is_armed() {
            Some(plan.arm(&prepared.compiled, profile.dataset())?)
        } else {
            None
        };
        let (profile, fifo_events): (&_, &[_]) = match &armed {
            Some(a) => (&a.profile, &a.fifo_events),
            None => (profile, &[]),
        };
        let fresh_classifier = || match &armed {
            Some(a) => a.classifier.clone(),
            None => prepared.compiled.table.clone(),
        };

        let mut off_cls = fresh_classifier();
        off_runs.push(run(
            &prepared.compiled,
            profile,
            &mut off_cls,
            &options,
            RunHooks::with_fifo_events(fifo_events),
        )?);

        let mut watchdog = QualityWatchdog::new(*wconfig);
        let mut on_cls = fresh_classifier();
        on_runs.push(run(
            &prepared.compiled,
            profile,
            &mut on_cls,
            &options,
            RunHooks::with_fifo_events(fifo_events).with_watchdog(&mut watchdog, period),
        )?);
        breaches += watchdog.report().breaches;
    }
    Ok(RatePoint {
        off: BenchmarkSummary::try_from_runs(&off_runs, quality)?,
        on: BenchmarkSummary::try_from_runs(&on_runs, quality)?,
        breaches,
    })
}

fn main() {
    let cfg = ExperimentConfig::from_args();
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    println!("# Figure X: fault robustness with the runtime guardband");
    println!(
        "# scale={:?} datasets={} validation={} quality={:.1}% fault-seed={} watchdog-period={}\n",
        cfg.scale,
        cfg.compile_datasets,
        cfg.validation_datasets,
        quality * 100.0,
        cfg.fault_seed,
        cfg.watchdog_period
    );

    let confidence = match Confidence::new(cfg.confidence) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad confidence: {e}");
            std::process::exit(2);
        }
    };

    let mut rates = vec![0.0];
    rates.extend(cfg.fault_rates.iter().copied());

    let mut restored = 0usize;
    let mut judged = 0usize;

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let prepared = match mithra_bench::prepare(bench, &cfg, quality) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        let threshold = prepared.compiled.threshold.threshold;
        let mut calibration_cls = prepared.compiled.table.clone();
        let wconfig = match watchdog::calibrate(
            &mut calibration_cls,
            &prepared.compiled.profiles,
            threshold,
            confidence,
        ) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{name}: calibration failed: {e}");
                continue;
            }
        };
        let period = effective_period(
            &cfg,
            prepared
                .validation
                .first()
                .map_or(512, |p| p.invocation_count()),
        );
        eprintln!(
            "{name}: watchdog limit {:.3} (threshold {threshold:.4}), sampling period {period}",
            wconfig.max_violation_rate
        );

        let mut table = TextTable::new([
            "fault rate",
            "off: quality",
            "off: speedup",
            "on: quality",
            "on: speedup",
            "on: breaches",
        ]);
        // A benchmark is restored if, at every armed rate where the
        // unguarded run violates the target, the guarded run meets it —
        // and at least one such rate exists.
        let mut violated_any = false;
        let mut restored_all = true;
        for &rate in &rates {
            let point = match sweep_rate(&prepared, &cfg, rate, &wconfig, quality) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{name} @ rate {rate}: {e}");
                    continue;
                }
            };
            if rate > 0.0 && point.off.quality_loss > quality {
                violated_any = true;
                if point.on.quality_loss > quality {
                    restored_all = false;
                }
            }
            table.row([
                format!("{rate}"),
                format!("{:.4}", point.off.quality_loss),
                format!("{:.2}x", point.off.speedup),
                format!("{:.4}", point.on.quality_loss),
                format!("{:.2}x", point.on.speedup),
                format!("{}", point.breaches),
            ]);
        }
        judged += 1;
        if violated_any && restored_all {
            restored += 1;
        }
        println!("## {name}\n{table}");
    }

    println!(
        "guardband restored the certified quality target on {restored} of {judged} benchmarks \
         where unguarded faults violated it"
    );
}
