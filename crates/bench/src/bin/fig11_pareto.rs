//! Figure 11: Pareto analysis of the table design space — {1,2,4,8}
//! parallel tables × {0.125, 0.5, 2, 4} KB per table, scored by mean
//! accelerator invocation rate at 5% quality loss.
//!
//! The paper finds (8T × 0.5KB) Pareto-optimal: more tables with distinct
//! hash functions beat one big table because destructive aliasing, not raw
//! capacity, is the limiter.

use mithra_bench::runner::{certify_at, prepare_base};
use mithra_bench::{ExperimentConfig, TextTable};
use mithra_core::pipeline::quantizer_from_profiles;
use mithra_core::table::{TableClassifier, TableDesign};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let quality = cfg.quality_levels.get(1).copied().unwrap_or(0.05);
    println!(
        "# Figure 11: table design space Pareto analysis at {:.1}% quality loss",
        quality * 100.0
    );
    println!(
        "# scale={:?} datasets={} validation={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets
    );

    // Per design point, mean invocation rate and quality across benchmarks.
    let grid = TableDesign::pareto_grid();
    let mut rates = vec![Vec::new(); grid.len()];
    let mut losses = vec![Vec::new(); grid.len()];
    let mut meets = vec![Vec::new(); grid.len()];

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let base = prepare_base(bench, &cfg).expect("NPU training succeeds");
        // The full compile flow at the sweep's spec: its default-design
        // table classifier fixes the hash policy, and its training data
        // and threshold are shared by every grid point.
        let prepared = match certify_at(&base, &cfg, quality) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        let threshold = prepared.compiled.threshold.threshold;
        let training = &prepared.compiled.training_data;
        let quantizer = quantizer_from_profiles(&base.profiles);

        // Choose the hash policy (granularity + vote threshold) once on
        // the default design, then hold it fixed across the grid so the
        // sweep isolates the *geometry* — the quantity Figure 11 varies.
        let levels = prepared.compiled.table.quantizer().levels();
        let vote = prepared.compiled.table.vote_threshold();

        for (g, design) in grid.iter().enumerate() {
            let mut classifier = TableClassifier::train_with_policy(
                *design,
                quantizer.clone().with_levels(levels),
                vote,
                training,
            )
            .expect("grid designs are valid");
            let (mut rate_sum, mut loss_sum, mut ok) = (0.0, 0.0, 0usize);
            for profile in &prepared.validation {
                let replay =
                    profile.replay_with_classifier(&base.function, &mut classifier, threshold, 0);
                rate_sum += replay.invocation_rate();
                loss_sum += replay.quality_loss;
                if replay.quality_loss <= quality {
                    ok += 1;
                }
            }
            let n = prepared.validation.len() as f64;
            rates[g].push(rate_sum / n);
            losses[g].push(loss_sum / n);
            meets[g].push(ok as f64 / n);
        }
    }

    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut points: Vec<(TableDesign, f64, f64, f64)> = grid
        .iter()
        .enumerate()
        .filter(|(g, _)| !rates[*g].is_empty())
        .map(|(g, d)| (*d, mean(&rates[g]), mean(&losses[g]), mean(&meets[g])))
        .collect();
    points.sort_by(|a, b| a.0.total_kb().partial_cmp(&b.0.total_kb()).unwrap());

    // Pareto frontier among quality-respecting designs: smallest size,
    // largest invocation rate, success fraction within 2 points of the
    // best (designs that buy invocations with missed rejects are not
    // comparable points).
    let best_meet = points.iter().map(|p| p.3).fold(0.0f64, f64::max);
    let pareto: Vec<bool> = points
        .iter()
        .map(|(d, r, _, m)| {
            *m >= best_meet - 0.02
                && !points.iter().any(|(d2, r2, _, m2)| {
                    *m2 >= best_meet - 0.02
                        && ((d2.total_kb() < d.total_kb() && r2 >= r)
                            || (d2.total_kb() <= d.total_kb() && r2 > r))
                })
        })
        .collect();

    let mut table = TextTable::new([
        "design",
        "total size (KB)",
        "invocation rate",
        "quality loss",
        "datasets in target",
        "pareto",
    ]);
    for ((design, rate, loss, meet), is_pareto) in points.iter().zip(&pareto) {
        table.row([
            design.to_string(),
            format!("{:.3}", design.total_kb()),
            format!("{:.1}%", rate * 100.0),
            format!("{:.2}%", loss * 100.0),
            format!("{:.0}%", meet * 100.0),
            if *is_pareto {
                "*".to_string()
            } else {
                String::new()
            },
        ]);
    }
    println!("{table}");
    println!("paper: (8T x 0.5KB) is the Pareto-optimal default");
}
