//! Figure 8: per-benchmark speedup, energy reduction and invocation rate
//! for the oracle, table and neural designs across quality levels.

use mithra_bench::{certify_at, evaluate, prepare_base, DesignKind, ExperimentConfig, TextTable};

fn main() {
    let cfg = ExperimentConfig::from_args();
    println!("# Figure 8: per-benchmark results (95% confidence, 90% success rate)");
    println!(
        "# scale={:?} datasets={} validation={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets
    );

    let designs = [DesignKind::Oracle, DesignKind::Table, DesignKind::Neural];
    let mut table = TextTable::new([
        "benchmark",
        "quality",
        "design",
        "speedup",
        "energy red.",
        "invocation",
        "quality loss",
    ]);

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let base = match prepare_base(bench, &cfg) {
            Ok(b) => b,
            Err(e) => {
                table.row([name.to_string(), "-".into(), "-".into(), format!("{e}")]);
                continue;
            }
        };
        for &q in &cfg.quality_levels {
            let prepared = match certify_at(&base, &cfg, q) {
                Ok(p) => p,
                Err(e) => {
                    table.row([
                        name.to_string(),
                        format!("{:.1}%", q * 100.0),
                        "-".into(),
                        format!("uncertifiable: {e}"),
                    ]);
                    continue;
                }
            };
            for design in designs {
                let s = evaluate(&prepared, design, q).summary;
                table.row([
                    name.to_string(),
                    format!("{:.1}%", q * 100.0),
                    design.label().to_string(),
                    format!("{:.2}x", s.speedup),
                    format!("{:.2}x", s.energy_reduction),
                    format!("{:.0}%", s.invocation_rate * 100.0),
                    format!("{:.2}%", s.quality_loss * 100.0),
                ]);
            }
        }
    }
    println!("{table}");
    println!(
        "paper: jmeint and jpeg show the neural design clearly beating the table design \
         in invocation rate (64 and 18 accelerator inputs cause heavy hash conflicts)"
    );
}
