//! Table II: compressed table-classifier sizes and neural topologies.
//!
//! The 8T×0.5KB design is 4 KB uncompressed; BDI shrinks the mostly-zero
//! tables (the paper reports 16× for blackscholes/fft/inversek2j/jmeint,
//! little gain for jpeg/sobel whose tables are dense).

use mithra_bench::{prepare, ExperimentConfig, TextTable};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let quality = cfg.quality_levels.get(1).copied().unwrap_or(0.05);
    println!(
        "# Table II: classifier sizes at {:.1}% quality loss",
        quality * 100.0
    );
    println!(
        "# scale={:?} datasets={} confidence={} success-rate={}\n",
        cfg.scale, cfg.compile_datasets, cfg.confidence, cfg.success_rate
    );

    let mut table = TextTable::new([
        "benchmark",
        "table uncompressed (KB)",
        "table compressed (KB)",
        "ratio",
        "fill",
        "neural topology",
        "neural size (KB)",
    ]);

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        match prepare(bench, &cfg, quality) {
            Ok(prepared) => {
                let stats = prepared.compiled.table.compress().stats();
                table.row([
                    name.to_string(),
                    format!("{:.2}", stats.uncompressed_bytes as f64 / 1024.0),
                    format!("{:.2}", stats.compressed_bytes as f64 / 1024.0),
                    format!("{:.1}x", stats.ratio()),
                    format!("{:.3}%", prepared.compiled.table.fill_ratio() * 100.0),
                    prepared.compiled.neural.topology().to_string(),
                    format!("{:.2}", prepared.compiled.neural.size_kb()),
                ]);
            }
            Err(e) => {
                table.row([name.to_string(), format!("uncertifiable: {e}")]);
            }
        }
    }
    println!("{table}");
    println!("paper: blackscholes/fft/inversek2j/jmeint compress ~16x; jpeg/sobel barely compress");
}
