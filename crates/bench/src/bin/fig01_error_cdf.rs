//! Figure 1: CDF of final per-element error under full approximation.
//!
//! "Only a small fraction (0%–20%) of these elements see large errors" —
//! the observation motivating MITHRA. For each benchmark we run every
//! compilation dataset fully approximated and plot the empirical CDF of
//! per-element final error.

use mithra_bench::{ExperimentConfig, TextTable};
use mithra_core::session::CompileSession;
use mithra_stats::descriptive::EmpiricalCdf;

fn main() {
    let cfg = ExperimentConfig::from_args();
    println!("# Figure 1: CDF of per-element final error, full approximation");
    println!(
        "# scale={:?} datasets={}\n",
        cfg.scale, cfg.compile_datasets
    );

    let probes = [
        0.0, 0.01, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20, 0.30, 0.50, 1.0,
    ];
    let mut table = TextTable::new(
        std::iter::once("benchmark".to_string())
            .chain(probes.iter().map(|p| format!("P(err<={p})"))),
    );

    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let compile_cfg = cfg
            .compile_config(quality)
            .expect("default quality levels are valid");
        let session = CompileSession::new(bench, compile_cfg)
            .train_npu()
            .expect("NPU training succeeds on suite benchmarks")
            .profile()
            .expect("profiling succeeds on suite benchmarks");
        let (function, profiles, report) = session.into_parts();
        eprint!("{report}");

        let mut errors: Vec<f64> = Vec::new();
        for p in &profiles {
            errors.extend(p.full_approx_element_errors(&function));
        }
        let cdf = EmpiricalCdf::new(errors).expect("profiles yield elements");
        table.row(
            std::iter::once(name.to_string())
                .chain(probes.iter().map(|&p| format!("{:.3}", cdf.eval(p)))),
        );
        let tail = 1.0 - cdf.eval(0.10);
        println!(
            "{name}: {} elements, {:.1}% see error > 10% (paper: 0-20%)",
            cdf.len(),
            tail * 100.0
        );
    }
    println!("\n{table}");
}
