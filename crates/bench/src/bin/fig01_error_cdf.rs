//! Figure 1: CDF of final per-element error under full approximation.
//!
//! "Only a small fraction (0%–20%) of these elements see large errors" —
//! the observation motivating MITHRA. For each benchmark we run every
//! compilation dataset fully approximated and plot the empirical CDF of
//! per-element final error.

use mithra_bench::{collect_profiles_parallel, ExperimentConfig, TextTable};
use mithra_core::function::{AcceleratedFunction, NpuTrainConfig};
use mithra_stats::descriptive::EmpiricalCdf;
use std::sync::Arc;

fn main() {
    let cfg = ExperimentConfig::from_args();
    println!("# Figure 1: CDF of per-element final error, full approximation");
    println!(
        "# scale={:?} datasets={}\n",
        cfg.scale, cfg.compile_datasets
    );

    let probes = [0.0, 0.01, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20, 0.30, 0.50, 1.0];
    let mut table = TextTable::new(
        std::iter::once("benchmark".to_string())
            .chain(probes.iter().map(|p| format!("P(err<={p})"))),
    );

    for bench in cfg.suite() {
        let name = bench.name();
        let train_sets: Vec<_> = (0..10.min(cfg.compile_datasets as u64))
            .map(|i| bench.dataset(i, cfg.scale))
            .collect();
        let function =
            AcceleratedFunction::train(Arc::clone(&bench), &train_sets, &NpuTrainConfig::default())
                .expect("NPU training succeeds on suite benchmarks");
        let profiles =
            collect_profiles_parallel(&function, 0, cfg.compile_datasets, cfg.scale);

        let mut errors: Vec<f64> = Vec::new();
        for p in &profiles {
            errors.extend(p.full_approx_element_errors(&function));
        }
        let cdf = EmpiricalCdf::new(errors).expect("profiles yield elements");
        table.row(
            std::iter::once(name.to_string())
                .chain(probes.iter().map(|&p| format!("{:.3}", cdf.eval(p)))),
        );
        let tail = 1.0 - cdf.eval(0.10);
        println!(
            "{name}: {} elements, {:.1}% see error > 10% (paper: 0-20%)",
            cdf.len(),
            tail * 100.0
        );
    }
    println!("\n{table}");
}
