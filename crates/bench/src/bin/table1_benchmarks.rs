//! Table I: the benchmark suite and its error under full approximation.

use mithra_bench::{ExperimentConfig, TextTable};
use mithra_core::session::{profile_validation, CompileSession};

fn main() {
    let cfg = ExperimentConfig::from_args();
    println!("# Table I: benchmarks, quality metric, NPU topology, full-approximation error");
    println!(
        "# scale={:?} validation datasets={}\n",
        cfg.scale, cfg.validation_datasets
    );

    let mut table = TextTable::new([
        "benchmark",
        "type",
        "error metric",
        "npu topology",
        "invocations/ds",
        "error (full approx)",
        "paper",
    ]);

    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    for bench in cfg.suite_or_exit() {
        let compile_cfg = cfg
            .compile_config(quality)
            .expect("default quality levels are valid");
        let session = CompileSession::new(bench, compile_cfg.clone())
            .train_npu()
            .expect("NPU training succeeds on suite benchmarks");
        let (function, mut report) = session.into_parts();
        // Unseen datasets, always invoking the accelerator.
        let (profiles, validation_report) = profile_validation(
            &function,
            &compile_cfg,
            mithra_bench::runner::VALIDATION_SEED_BASE,
            cfg.validation_datasets,
        );
        report.stages.push(validation_report);
        eprint!("{report}");
        let mean_loss: f64 = profiles
            .iter()
            .map(|p| {
                p.replay_with_threshold(&function, f32::INFINITY)
                    .quality_loss
            })
            .sum::<f64>()
            / profiles.len() as f64;

        let bench = function.benchmark();
        table.row([
            bench.name().to_string(),
            bench.domain().to_string(),
            bench.quality_metric().to_string(),
            bench.npu_topology().to_string(),
            profiles[0].invocation_count().to_string(),
            format!("{:.2}%", mean_loss * 100.0),
            format!("{:.2}%", bench.paper_full_approx_error() * 100.0),
        ]);
    }
    println!("{table}");
}
