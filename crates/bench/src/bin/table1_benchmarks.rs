//! Table I: the benchmark suite and its error under full approximation.

use mithra_bench::{collect_profiles_parallel, ExperimentConfig, TextTable};
use mithra_core::function::{AcceleratedFunction, NpuTrainConfig};
use std::sync::Arc;

fn main() {
    let cfg = ExperimentConfig::from_args();
    println!("# Table I: benchmarks, quality metric, NPU topology, full-approximation error");
    println!(
        "# scale={:?} validation datasets={}\n",
        cfg.scale, cfg.validation_datasets
    );

    let mut table = TextTable::new([
        "benchmark",
        "type",
        "error metric",
        "npu topology",
        "invocations/ds",
        "error (full approx)",
        "paper",
    ]);

    for bench in cfg.suite() {
        let train_sets: Vec<_> = (0..10u64).map(|i| bench.dataset(i, cfg.scale)).collect();
        let function =
            AcceleratedFunction::train(Arc::clone(&bench), &train_sets, &NpuTrainConfig::default())
                .expect("NPU training succeeds on suite benchmarks");
        // Unseen datasets, always invoking the accelerator.
        let profiles = collect_profiles_parallel(
            &function,
            mithra_bench::runner::VALIDATION_SEED_BASE,
            cfg.validation_datasets,
            cfg.scale,
        );
        let mean_loss: f64 = profiles
            .iter()
            .map(|p| p.replay_with_threshold(&function, f32::INFINITY).quality_loss)
            .sum::<f64>()
            / profiles.len() as f64;

        table.row([
            bench.name().to_string(),
            bench.domain().to_string(),
            bench.quality_metric().to_string(),
            bench.npu_topology().to_string(),
            profiles[0].invocation_count().to_string(),
            format!("{:.2}%", mean_loss * 100.0),
            format!("{:.2}%", bench.paper_full_approx_error() * 100.0),
        ]);
    }
    println!("{table}");
}
