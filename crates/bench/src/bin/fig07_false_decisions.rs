//! Figure 7a/7b/7c: false positives and false negatives of the table and
//! neural designs.
//!
//! False positive: the classifier rejected an invocation the oracle would
//! have approximated (quality-safe but benefit lost). False negative: the
//! classifier approximated an invocation the oracle would have rejected
//! (benefit kept but quality risked). Both designs are conservative, so
//! FP > FN throughout.

use mithra_bench::{certify_at, evaluate, prepare_base, DesignKind, ExperimentConfig, TextTable};

fn main() {
    let cfg = ExperimentConfig::from_args();
    println!("# Figure 7: false decisions vs quality-loss level");
    println!(
        "# scale={:?} datasets={} validation={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets
    );

    let mut table_fp =
        TextTable::new(["quality", "table FP", "table FN", "neural FP", "neural FN"]);

    let bases: Vec<_> = cfg
        .suite_or_exit()
        .into_iter()
        .filter_map(|bench| {
            let name = bench.name();
            prepare_base(bench, &cfg)
                .map_err(|e| eprintln!("{name}: {e}"))
                .ok()
        })
        .collect();

    for &q in &cfg.quality_levels {
        let (mut tfp, mut tfn, mut nfp, mut nfn) = (0.0, 0.0, 0.0, 0.0);
        let mut count = 0.0;
        for base in &bases {
            let name = base.name;
            let prepared = match certify_at(base, &cfg, q) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{name} @ {:.1}%: {e}", q * 100.0);
                    continue;
                }
            };
            let t = evaluate(&prepared, DesignKind::Table, q).summary;
            let n = evaluate(&prepared, DesignKind::Neural, q).summary;
            tfp += t.false_positive_rate;
            tfn += t.false_negative_rate;
            nfp += n.false_positive_rate;
            nfn += n.false_negative_rate;
            count += 1.0;
        }
        if count == 0.0 {
            continue;
        }
        table_fp.row([
            format!("{:.1}%", q * 100.0),
            format!("{:.1}%", tfp / count * 100.0),
            format!("{:.1}%", tfn / count * 100.0),
            format!("{:.1}%", nfp / count * 100.0),
            format!("{:.1}%", nfn / count * 100.0),
        ]);
    }
    println!("{table_fp}");
    println!("paper @5%: table 22% FP / 5% FN; neural 18% FP / 9% FN");
}
