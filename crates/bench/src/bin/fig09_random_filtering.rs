//! Figure 9: MITHRA's input-conscious designs versus random filtering at
//! matched invocation rates (5% quality loss).
//!
//! Random filtering drops the same *number* of invocations but not the
//! *right* ones: quality suffers at equal gains, or equivalently, at equal
//! quality the random filter must drop far more. We report both designs'
//! speedup/energy relative to a random filter matched to their invocation
//! rate, plus the quality each achieves.

use mithra_bench::{evaluate, prepare, DesignKind, ExperimentConfig, TextTable};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let quality = cfg.quality_levels.get(1).copied().unwrap_or(0.05);
    println!(
        "# Figure 9: table/neural vs random filtering at {:.1}% quality loss",
        quality * 100.0
    );
    println!(
        "# scale={:?} datasets={} validation={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets
    );

    let mut table = TextTable::new([
        "benchmark",
        "design",
        "invocation",
        "speedup vs random",
        "energy vs random",
        "quality (design)",
        "quality (random)",
    ]);

    let mut rel_speedups = Vec::new();
    let mut rel_energies = Vec::new();

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let prepared = match prepare(bench, &cfg, quality) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        for design in [DesignKind::Table, DesignKind::Neural] {
            let s = evaluate(&prepared, design, quality).summary;
            let random =
                evaluate(&prepared, DesignKind::Random(s.invocation_rate), quality).summary;
            // At matched invocation rates the cycles are comparable; the
            // interesting comparison the paper plots is gains at equal
            // quality. Derive the random rate that matches the design's
            // quality by scaling: random quality grows ~linearly with its
            // invocation rate.
            let quality_matched_rate = if random.quality_loss > 1e-12 {
                (s.quality_loss / random.quality_loss * s.invocation_rate).clamp(0.0, 1.0)
            } else {
                s.invocation_rate
            };
            let random_qm =
                evaluate(&prepared, DesignKind::Random(quality_matched_rate), quality).summary;
            let rel_speed = s.speedup / random_qm.speedup;
            let rel_energy = s.energy_reduction / random_qm.energy_reduction;
            rel_speedups.push(rel_speed);
            rel_energies.push(rel_energy);
            table.row([
                name.to_string(),
                design.label().to_string(),
                format!("{:.0}%", s.invocation_rate * 100.0),
                format!("{rel_speed:.2}x"),
                format!("{rel_energy:.2}x"),
                format!("{:.2}%", s.quality_loss * 100.0),
                format!("{:.2}%", random.quality_loss * 100.0),
            ]);
        }
    }
    println!("{table}");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean gain over quality-matched random filtering: {:.0}% speedup, {:.0}% energy",
        (mean(&rel_speedups) - 1.0) * 100.0,
        (mean(&rel_energies) - 1.0) * 100.0
    );
    println!("paper: table +41% speedup / +50% energy; neural +46% / +76% over random");
}
