//! Figure V: automated design-space exploration emitting certified
//! per-benchmark Pareto pools.
//!
//! Per benchmark this binary enumerates pool compositions (member count,
//! hidden-width divisor ladders, router kind, labeling margins), ranks
//! every candidate with cheap probe-trained predictors, pays full
//! `CompileSession` compilation plus deployed-in-the-loop certification
//! only for the survivors of the evaluation budget, re-validates every
//! certificate on unseen datasets through `mithra-conform`, and prints
//! the nondominated frontier over (speedup, energy reduction, certified
//! rate). The fixed PR-6 ÷4/÷2/accurate tiering and the pool of one are
//! always force-evaluated as measured anchors, so the headline — how
//! often a *discovered* composition dominates the hand-fixed tiering —
//! is read off the same sweep.
//!
//! Bench-specific flags, consumed before the shared experiment flags:
//! `--budget N` (full evaluations per benchmark; 0 = a quarter of the
//! enumerated space), `--probe-datasets N`, `--probe-epochs N`,
//! `--trials M` (conformance datasets per point), `--test-confidence C`,
//! `--space full|smoke`, `--mutate inverted-cost|off-by-one-quality`
//! (predictor honesty check), `--out PATH` (the machine-readable
//! `BENCH_explore.json`). Shared `--scale`, `--quality`, `--bench`,
//! `--threads`, `--cache-dir` flags work like every other figure binary;
//! the sweep is bit-identical at any `--threads` setting.

use mithra_bench::runner::VALIDATION_SEED_BASE;
use mithra_bench::{ExperimentConfig, TextTable};
use mithra_conform::CONFORM_SEED_BASE;
use mithra_explore::{
    explore, BenchmarkExploration, DesignSpace, ExploreConfig, PredictorMutation,
};
use serde::Serialize;
use std::path::PathBuf;

/// The whole `BENCH_explore.json` document.
#[derive(Debug, Serialize)]
struct JsonReport {
    scale: String,
    quality: f64,
    space: String,
    budget: usize,
    probe_datasets: usize,
    probe_epochs: usize,
    trials: usize,
    validation_datasets: usize,
    conform_seed_base: u64,
    validation_seed_base: u64,
    test_confidence: f64,
    mutation: Option<PredictorMutation>,
    benchmarks: Vec<BenchmarkExploration>,
}

/// Bench-specific options, extracted ahead of the shared parser.
struct BenchArgs {
    budget: usize,
    probe_datasets: usize,
    probe_epochs: usize,
    trials: usize,
    test_confidence: f64,
    space: String,
    mutation: Option<PredictorMutation>,
    out: PathBuf,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            budget: 0,
            probe_datasets: 5,
            probe_epochs: 8,
            trials: 100,
            test_confidence: 0.95,
            space: String::from("full"),
            mutation: None,
            out: PathBuf::from("BENCH_explore.json"),
        }
    }
}

/// Pulls the bench-specific flags out of `args`, leaving the shared
/// experiment flags for [`ExperimentConfig::from_arg_list`].
fn extract_bench_args(args: &mut Vec<String>) -> BenchArgs {
    let mut bench = BenchArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take_value = || -> String {
            if i + 1 >= args.len() {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        };
        let parse = |flag: &str, value: &str| -> f64 {
            value.trim().parse().unwrap_or_else(|_| {
                eprintln!("malformed value `{value}` for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--budget" => bench.budget = parse(&flag, &take_value()) as usize,
            "--probe-datasets" => bench.probe_datasets = parse(&flag, &take_value()) as usize,
            "--probe-epochs" => bench.probe_epochs = parse(&flag, &take_value()) as usize,
            "--trials" => bench.trials = parse(&flag, &take_value()) as usize,
            "--test-confidence" => bench.test_confidence = parse(&flag, &take_value()),
            "--space" => bench.space = take_value(),
            "--mutate" => {
                bench.mutation = Some(match take_value().as_str() {
                    "inverted-cost" => PredictorMutation::InvertedCost,
                    "off-by-one-quality" => PredictorMutation::OffByOneQualityRank,
                    other => {
                        eprintln!("unknown --mutate `{other}`");
                        std::process::exit(2);
                    }
                });
            }
            "--out" => bench.out = PathBuf::from(take_value()),
            _ => i += 1,
        }
    }
    if bench.space != "full" && bench.space != "smoke" {
        eprintln!("--space must be `full` or `smoke`");
        std::process::exit(2);
    }
    bench
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_args = extract_bench_args(&mut args);
    let cfg = match ExperimentConfig::from_arg_list(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "bench flags: --budget N --probe-datasets N --probe-epochs N --trials M \
                 --test-confidence C --space full|smoke \
                 --mutate inverted-cost|off-by-one-quality --out PATH"
            );
            std::process::exit(2);
        }
    };
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    let space = if bench_args.space == "smoke" {
        DesignSpace::smoke()
    } else {
        DesignSpace::full()
    };
    println!("# Figure V: design-space exploration over certified approximator pools");
    println!(
        "# scale={:?} quality={:.1}% confidence={:.0}% success-rate={:.0}% space={} ({}) \
         budget={} probes={}x{}ep validation={} trials={} test-confidence={:.0}%\n",
        cfg.scale,
        quality * 100.0,
        cfg.confidence * 100.0,
        cfg.success_rate * 100.0,
        bench_args.space,
        space.candidates.len(),
        if bench_args.budget == 0 {
            String::from("auto")
        } else {
            bench_args.budget.to_string()
        },
        bench_args.probe_datasets,
        bench_args.probe_epochs,
        cfg.validation_datasets,
        bench_args.trials,
        bench_args.test_confidence * 100.0,
    );

    let mut table = TextTable::new([
        "benchmark",
        "enumerated",
        "evaluated",
        "pruned",
        "frontier",
        "holds",
        "beats fixed",
        "best point",
        "speedup",
        "fixed speedup",
    ]);
    let mut reports = Vec::new();
    let mut benchmarks_beating_fixed = 0usize;
    let mut all_frontier_hold = true;

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let compile = match cfg.compile_config(quality) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        let config = ExploreConfig {
            compile,
            validation_datasets: cfg.validation_datasets,
            validation_seed_base: VALIDATION_SEED_BASE,
            trials: bench_args.trials,
            test_confidence: bench_args.test_confidence,
            probe_datasets: bench_args.probe_datasets,
            probe_epochs: bench_args.probe_epochs,
            budget: (bench_args.budget > 0).then_some(bench_args.budget),
            mutation: bench_args.mutation,
        };
        let report = match explore(&bench, &space, &config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        // Warm-rerun observability (stderr, like the compile-session
        // stage reports elsewhere): the text table is byte-pinned, so
        // run-dependent cache counters live here and in the JSON.
        eprintln!(
            "explore [{name}]: {} probe members, {} full evaluations, \
             cache {} hits / {} misses, {} invocations",
            report.probe_members,
            report.evaluated,
            report.cache_hits,
            report.cache_misses,
            report.compile_invocations,
        );

        let holds = report.points.iter().filter(|p| p.holds).count();
        let beats = report.points.iter().filter(|p| p.dominates_fixed).count();
        if beats > 0 {
            benchmarks_beating_fixed += 1;
        }
        for &i in &report.frontier {
            if !report.points[i].holds {
                all_frontier_hold = false;
                eprintln!(
                    "{name}: frontier point `{}` does not hold on unseen data",
                    report.points[i].label
                );
            }
        }
        let fixed_speedup = report
            .fixed_tiering_index
            .map(|i| report.points[i].speedup)
            .unwrap_or(f64::NAN);
        // Best = the frontier point with the highest speedup.
        let best = report
            .frontier
            .iter()
            .map(|&i| &report.points[i])
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup));
        for &i in &report.frontier {
            let p = &report.points[i];
            println!(
                "{name}: frontier `{}` speedup {:.2}x energy {:.2}x certified S>={:.3} [{}]{}",
                p.label,
                p.speedup,
                p.energy_reduction,
                p.certified_rate,
                p.verdict,
                if p.dominates_fixed {
                    " dominates fixed tiering"
                } else {
                    ""
                },
            );
        }
        table.row([
            name.to_string(),
            format!("{}", report.enumerated),
            format!("{}", report.evaluated),
            format!("{}", report.pruned),
            format!("{}", report.frontier.len()),
            format!("{holds}/{}", report.evaluated),
            format!("{beats}"),
            best.map(|p| p.label.clone()).unwrap_or_else(|| "-".into()),
            best.map(|p| format!("{:.2}x", p.speedup))
                .unwrap_or_else(|| "-".into()),
            format!("{fixed_speedup:.2}x"),
        ]);
        reports.push(report);
    }

    println!("\n{table}");
    let total_enumerated: usize = reports.iter().map(|r| r.enumerated).sum();
    let total_evaluated: usize = reports.iter().map(|r| r.evaluated).sum();
    println!(
        "a discovered composition dominates the fixed tiering on {benchmarks_beating_fixed} of \
         {} benchmarks; predictors pruned {} of {total_enumerated} enumerated points \
         ({total_evaluated} fully evaluated); every frontier certificate holds on unseen data: \
         {}",
        reports.len(),
        total_enumerated - total_evaluated,
        if all_frontier_hold { "yes" } else { "NO" },
    );

    let json = JsonReport {
        scale: format!("{:?}", cfg.scale).to_lowercase(),
        quality,
        space: bench_args.space.clone(),
        budget: bench_args.budget,
        probe_datasets: bench_args.probe_datasets,
        probe_epochs: bench_args.probe_epochs,
        trials: bench_args.trials,
        validation_datasets: cfg.validation_datasets,
        conform_seed_base: CONFORM_SEED_BASE,
        validation_seed_base: VALIDATION_SEED_BASE,
        test_confidence: bench_args.test_confidence,
        mutation: bench_args.mutation,
        benchmarks: reports,
    };
    let json = serde_json::to_string(&json).expect("report serializes");
    std::fs::write(&bench_args.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", bench_args.out.display());
        std::process::exit(1);
    });
    eprintln!("wrote {}", bench_args.out.display());
}
