//! Figure Z: the routed multi-approximator Pareto frontier against the
//! binary accept/reject baseline, at the same certified `(S, β)`.
//!
//! Per benchmark this binary compiles both decision paths — the classic
//! binary pipeline and a routed pool of cheap/medium/accurate NPU
//! topologies certified over the *mixture* — then puts both on equal
//! footing twice:
//!
//! * **frontier arm** (validation seed space): simulate every unseen
//!   validation dataset under each path and compare mean speedup,
//!   energy reduction and invocation rate. The routed path wins the
//!   frontier when it improves both axes at the same certificate.
//! * **guarantee arm** (conformance seed space): validate both
//!   certificates on `--trials` unseen Monte-Carlo datasets through the
//!   conformance harness, then run the routed mutation self-check
//!   (including the route-misattribution defect) on the real losses.
//!
//! Bench-specific flags, consumed before the shared experiment flags:
//! `--trials M` (conformance datasets per benchmark), `--pool K` (pool
//! size before topology dedup), `--pool-check` (additionally compile a
//! pool of one and require its conformance report to be byte-identical
//! to the binary baseline's), `--epsilon E`, `--test-confidence C`,
//! `--out PATH` (the machine-readable `BENCH_route.json`). Shared
//! `--scale`, `--quality`, `--bench`, `--threads`, `--cache-dir` flags
//! work like every other figure binary; both arms are bit-identical at
//! any `--threads` setting.

use mithra_bench::runner::VALIDATION_SEED_BASE;
use mithra_bench::{ExperimentConfig, TextTable};
use mithra_conform::selfcheck::{self_check_routed, SelfCheckReport};
use mithra_conform::{
    validate_profiles, validate_routed, GuaranteeReport, ValidatorConfig, Verdict,
    CONFORM_SEED_BASE,
};
use mithra_core::pipeline::{compile_routed_with_report, compile_with_report, Compiled};
use mithra_core::profile::DatasetProfile;
use mithra_core::route::{PoolSpec, RoutedCompiled};
use mithra_core::session::{profile_pool_validation, profile_validation};
use mithra_core::Result;
use mithra_sim::system::{run_routed, simulate, SimOptions};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// Mean frontier metrics of one decision path over the validation sets.
#[derive(Debug, Clone, Copy, Serialize)]
struct FrontierSummary {
    speedup: f64,
    energy_reduction: f64,
    invocation_rate: f64,
    mean_quality_loss: f64,
}

/// One benchmark's full comparison in `BENCH_route.json`.
#[derive(Debug, Serialize)]
struct BenchmarkRecord {
    name: String,
    pool_size: usize,
    topologies: Vec<String>,
    binary_frontier: FrontierSummary,
    routed_frontier: FrontierSummary,
    /// Fraction of all invocations served per pool member (cheapest
    /// first) on the frontier arm; sums to `routed_frontier
    /// .invocation_rate`.
    member_share: Vec<f64>,
    frontier_improved: bool,
    binary_report: GuaranteeReport,
    routed_report: GuaranteeReport,
    selfcheck: SelfCheckReport,
    /// `Some(true)` when `--pool-check` ran and the pool-of-one
    /// conformance report matched the binary baseline byte for byte.
    pool1_parity: Option<bool>,
}

/// The whole `BENCH_route.json` document.
#[derive(Debug, Serialize)]
struct JsonReport {
    scale: String,
    quality: f64,
    pool: usize,
    trials: usize,
    validation_datasets: usize,
    conform_seed_base: u64,
    validation_seed_base: u64,
    test_confidence: f64,
    epsilon: f64,
    benchmarks: Vec<BenchmarkRecord>,
}

/// Bench-specific options, extracted ahead of the shared parser.
struct BenchArgs {
    trials: usize,
    pool: usize,
    pool_check: bool,
    epsilon: f64,
    test_confidence: f64,
    out: PathBuf,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            trials: 100,
            pool: 3,
            pool_check: false,
            epsilon: 0.005,
            test_confidence: 0.95,
            out: PathBuf::from("BENCH_route.json"),
        }
    }
}

/// Pulls the bench-specific flags out of `args`, leaving the shared
/// experiment flags for [`ExperimentConfig::from_arg_list`].
fn extract_bench_args(args: &mut Vec<String>) -> BenchArgs {
    let mut bench = BenchArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take_value = || -> String {
            if i + 1 >= args.len() {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        };
        let parse = |flag: &str, value: &str| -> f64 {
            value.trim().parse().unwrap_or_else(|_| {
                eprintln!("malformed value `{value}` for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--trials" => bench.trials = parse(&flag, &take_value()) as usize,
            "--pool" => bench.pool = parse(&flag, &take_value()) as usize,
            "--pool-check" => {
                bench.pool_check = true;
                args.remove(i);
            }
            "--epsilon" => bench.epsilon = parse(&flag, &take_value()),
            "--test-confidence" => bench.test_confidence = parse(&flag, &take_value()),
            "--out" => bench.out = PathBuf::from(take_value()),
            _ => i += 1,
        }
    }
    if bench.pool == 0 {
        eprintln!("--pool must be at least 1");
        std::process::exit(2);
    }
    bench
}

/// Simulates the binary path over every validation profile (in seed
/// order) and folds the frontier means.
fn binary_frontier(compiled: &Compiled, validation: &[DatasetProfile]) -> FrontierSummary {
    let options = SimOptions::default();
    let mut speedup = 0.0;
    let mut energy = 0.0;
    let mut rate = 0.0;
    let mut loss = 0.0;
    for profile in validation {
        let mut classifier = compiled.table.clone();
        let r = simulate(compiled, profile, &mut classifier, &options);
        speedup += r.speedup();
        energy += r.energy_reduction();
        rate += r.invocation_rate();
        loss += r.quality_loss;
    }
    let n = validation.len() as f64;
    FrontierSummary {
        speedup: speedup / n,
        energy_reduction: energy / n,
        invocation_rate: rate / n,
        mean_quality_loss: loss / n,
    }
}

/// Simulates the routed path over the same validation datasets
/// (`pool_profiles[m][i]` = member `m`'s profile of dataset `i`) and
/// folds the frontier means plus the per-member serving shares.
fn routed_frontier(
    routed: &RoutedCompiled,
    pool_profiles: &[Vec<DatasetProfile>],
    datasets: usize,
) -> (FrontierSummary, Vec<f64>) {
    let options = SimOptions::default();
    let mut speedup = 0.0;
    let mut energy = 0.0;
    let mut rate = 0.0;
    let mut loss = 0.0;
    let mut member_served = vec![0usize; routed.pool.len()];
    let mut total = 0usize;
    for i in 0..datasets {
        let refs: Vec<&DatasetProfile> = pool_profiles.iter().map(|m| &m[i]).collect();
        let mut router = routed.router.clone();
        let r = run_routed(routed, &refs, &mut router, &options)
            .unwrap_or_else(|e| panic!("routed frontier simulation failed: {e}"));
        speedup += r.run.speedup();
        energy += r.run.energy_reduction();
        rate += r.run.invocation_rate();
        loss += r.run.quality_loss;
        total += r.run.total;
        for (m, served) in r.member_invocations.iter().enumerate() {
            member_served[m] += served;
        }
    }
    let n = datasets as f64;
    let summary = FrontierSummary {
        speedup: speedup / n,
        energy_reduction: energy / n,
        invocation_rate: rate / n,
        mean_quality_loss: loss / n,
    };
    let shares = member_served
        .iter()
        .map(|&s| s as f64 / total.max(1) as f64)
        .collect();
    (summary, shares)
}

/// Compiles, simulates and validates both decision paths for one
/// benchmark.
fn run_benchmark(
    bench: &Arc<dyn mithra_axbench::benchmark::Benchmark>,
    cfg: &ExperimentConfig,
    bench_args: &BenchArgs,
    quality: f64,
) -> Result<BenchmarkRecord> {
    let name = bench.name();
    let compile_cfg = cfg.compile_config(quality)?;
    let spec = cfg.spec(quality)?;
    let vconfig = ValidatorConfig {
        trials: bench_args.trials,
        scale: cfg.scale,
        threads: cfg.threads,
        test_confidence: bench_args.test_confidence,
        ..ValidatorConfig::default()
    };

    // Binary baseline: compile, frontier arm, guarantee arm.
    let (compiled, mut report) = compile_with_report(Arc::clone(bench), &compile_cfg)?;
    let (validation, validation_report) = profile_validation(
        &compiled.function,
        &compile_cfg,
        VALIDATION_SEED_BASE,
        cfg.validation_datasets,
    );
    report.stages.push(validation_report);
    let (conform_profiles, conform_report) = profile_validation(
        &compiled.function,
        &compile_cfg,
        CONFORM_SEED_BASE,
        bench_args.trials,
    );
    report.stages.push(conform_report);
    eprint!("{report}");
    let binary = binary_frontier(&compiled, &validation);
    let binary_report = validate_profiles(&compiled, &spec, &conform_profiles, &vconfig)
        .unwrap_or_else(|e| panic!("{name}: binary conformance validation failed: {e}"));

    // Routed pool: compile, frontier arm, guarantee arm, self-check.
    let pool_spec = PoolSpec::sized(&bench.npu_topology(), bench_args.pool);
    let (routed, mut rreport) =
        compile_routed_with_report(Arc::clone(bench), &compile_cfg, &pool_spec)?;
    let (pool_profiles, pool_validation_report) = profile_pool_validation(
        &routed.pool,
        &compile_cfg,
        VALIDATION_SEED_BASE,
        cfg.validation_datasets,
    );
    rreport.stages.push(pool_validation_report);
    eprint!("{rreport}");
    let (routed_front, member_share) =
        routed_frontier(&routed, &pool_profiles, cfg.validation_datasets);
    let routed_report = validate_routed(&routed, &spec, &vconfig)
        .unwrap_or_else(|e| panic!("{name}: routed conformance validation failed: {e}"));
    let losses: Vec<f64> = routed_report
        .trial_records
        .iter()
        .map(|t| t.quality_loss)
        .collect();
    let routes: Vec<usize> = routed_report
        .trial_records
        .iter()
        .map(|t| t.worst_route)
        .collect();
    let selfcheck = self_check_routed(
        &losses,
        &routes,
        routed.pool.len(),
        &spec,
        bench_args.epsilon,
        1.0 - bench_args.test_confidence,
    )
    .unwrap_or_else(|e| panic!("{name}: routed self-check failed: {e}"));

    // Pool-of-one parity: the routed machinery must reproduce the binary
    // pipeline's conformance report byte for byte.
    let pool1_parity = if bench_args.pool_check {
        let single = PoolSpec::single(bench.npu_topology());
        let (pool1, _) = compile_routed_with_report(Arc::clone(bench), &compile_cfg, &single)?;
        let pool1_report = validate_routed(&pool1, &spec, &vconfig)
            .unwrap_or_else(|e| panic!("{name}: pool-of-one validation failed: {e}"));
        let parity = serde_json::to_string(&binary_report).expect("report serializes")
            == serde_json::to_string(&pool1_report).expect("report serializes");
        if parity {
            println!("{name}: pool1 parity OK");
        } else {
            eprintln!("{name}: POOL1 PARITY BROKEN: the pool-of-one conformance report diverged from the binary baseline");
            std::process::exit(1);
        }
        Some(parity)
    } else {
        None
    };

    // A frontier improvement at the same certificate: strictly better on
    // both axes (cheap members must pay for their routing bits).
    let frontier_improved = routed_front.speedup > binary.speedup
        && routed_front.energy_reduction > binary.energy_reduction;

    Ok(BenchmarkRecord {
        name: name.to_string(),
        pool_size: routed.pool.len(),
        topologies: routed
            .pool
            .topologies()
            .iter()
            .map(|t| t.to_string())
            .collect(),
        binary_frontier: binary,
        routed_frontier: routed_front,
        member_share,
        frontier_improved,
        binary_report,
        routed_report,
        selfcheck,
        pool1_parity,
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_args = extract_bench_args(&mut args);
    let cfg = match ExperimentConfig::from_arg_list(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "bench flags: --trials M --pool K --pool-check --epsilon E \
                 --test-confidence C --out PATH"
            );
            std::process::exit(2);
        }
    };
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    println!("# Figure Z: does a routed approximator pool beat the binary frontier?");
    println!(
        "# scale={:?} quality={:.1}% confidence={:.0}% success-rate={:.0}% pool={} \
         validation={} trials={} test-confidence={:.0}%\n",
        cfg.scale,
        quality * 100.0,
        cfg.confidence * 100.0,
        cfg.success_rate * 100.0,
        bench_args.pool,
        cfg.validation_datasets,
        bench_args.trials,
        bench_args.test_confidence * 100.0,
    );

    let mut table = TextTable::new([
        "benchmark",
        "pool",
        "speedup bin",
        "speedup routed",
        "energy bin",
        "energy routed",
        "inv rate bin",
        "inv rate routed",
        "frontier",
        "verdict bin",
        "verdict routed",
        "self-check",
    ]);
    let mut records = Vec::new();
    let mut improved = 0usize;
    let mut routed_holds = 0usize;
    let mut mutations_planted = 0usize;
    let mut mutations_detected = 0usize;

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let record = match run_benchmark(&bench, &cfg, &bench_args, quality) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        println!("{}", record.binary_report.summary_line());
        println!("{}", record.routed_report.summary_line());
        if record.frontier_improved {
            improved += 1;
        }
        if record.routed_report.verdict == Verdict::Holds {
            routed_holds += 1;
        }
        let detected = record
            .selfcheck
            .outcomes
            .iter()
            .filter(|o| o.detected)
            .count();
        mutations_planted += record.selfcheck.outcomes.len();
        mutations_detected += detected;
        for outcome in record.selfcheck.outcomes.iter().filter(|o| !o.detected) {
            eprintln!(
                "{name}: planted mutation {:?} ESCAPED the audits",
                outcome.mutation
            );
        }
        table.row([
            record.name.clone(),
            format!("{}", record.pool_size),
            format!("{:.2}x", record.binary_frontier.speedup),
            format!("{:.2}x", record.routed_frontier.speedup),
            format!("{:.2}x", record.binary_frontier.energy_reduction),
            format!("{:.2}x", record.routed_frontier.energy_reduction),
            format!("{:.1}%", record.binary_frontier.invocation_rate * 100.0),
            format!("{:.1}%", record.routed_frontier.invocation_rate * 100.0),
            if record.frontier_improved {
                "improved"
            } else {
                "-"
            }
            .to_string(),
            record.binary_report.verdict.label().to_string(),
            record.routed_report.verdict.label().to_string(),
            format!("{detected}/{} detected", record.selfcheck.outcomes.len()),
        ]);
        records.push(record);
    }

    println!("\n{table}");
    println!(
        "routed pool improves the frontier on {improved} of {} benchmarks at the same \
         certified (S, beta); routed mixture verdict holds outright on {routed_holds}; \
         mutation self-check detected {mutations_detected}/{mutations_planted} planted defects",
        records.len()
    );

    let json = JsonReport {
        scale: format!("{:?}", cfg.scale).to_lowercase(),
        quality,
        pool: bench_args.pool,
        trials: bench_args.trials,
        validation_datasets: cfg.validation_datasets,
        conform_seed_base: CONFORM_SEED_BASE,
        validation_seed_base: VALIDATION_SEED_BASE,
        test_confidence: bench_args.test_confidence,
        epsilon: bench_args.epsilon,
        benchmarks: records,
    };
    let json = serde_json::to_string(&json).expect("report serializes");
    std::fs::write(&bench_args.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", bench_args.out.display());
        std::process::exit(1);
    });
    eprintln!("wrote {}", bench_args.out.display());
}
