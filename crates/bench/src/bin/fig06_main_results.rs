//! Figure 6a/6b/6c: geomean speedup, energy reduction and invocation rate
//! for the oracle, table and neural designs across quality-loss levels,
//! at 95% confidence / 90% success rate.

use mithra_bench::{evaluate, DesignKind, ExperimentConfig, TextTable};
use mithra_sim::report::SuiteSummary;

fn main() {
    let cfg = ExperimentConfig::from_args();
    println!("# Figure 6: suite-wide results vs quality-loss level");
    println!(
        "# scale={:?} datasets={} validation={} confidence={} success-rate={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets, cfg.confidence, cfg.success_rate
    );

    let designs = [DesignKind::Oracle, DesignKind::Table, DesignKind::Neural];
    let mut speedup = TextTable::new(["quality", "oracle", "table", "neural"]);
    let mut energy = TextTable::new(["quality", "oracle", "table", "neural"]);
    let mut invocation = TextTable::new(["quality", "oracle", "table", "neural"]);
    let mut guarantee = TextTable::new([
        "quality",
        "threshold (mean)",
        "compile successes",
        "certified rate",
        "validation successes (table)",
    ]);

    // Train + profile each benchmark once; re-certify per quality level.
    let bases: Vec<_> = cfg
        .suite_or_exit()
        .into_iter()
        .filter_map(|bench| {
            let name = bench.name();
            match mithra_bench::prepare_base(bench, &cfg) {
                Ok(b) => Some(b),
                Err(e) => {
                    eprintln!("{name}: {e}");
                    None
                }
            }
        })
        .collect();

    for &q in &cfg.quality_levels {
        let mut per_design: Vec<Vec<_>> = vec![Vec::new(); designs.len()];
        let mut thresholds = Vec::new();
        let mut successes = 0u64;
        let mut trials = 0u64;
        let mut bounds = Vec::new();
        let mut val_success = 0usize;
        let mut val_total = 0usize;

        for base in &bases {
            let name = base.name;
            let prepared = match mithra_bench::certify_at(base, &cfg, q) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{name} @ {:.1}%: {e}", q * 100.0);
                    continue;
                }
            };
            thresholds.push(f64::from(prepared.compiled.threshold.threshold));
            successes += prepared.compiled.threshold.successes;
            trials += prepared.compiled.threshold.trials;
            bounds.push(prepared.compiled.threshold.certified_rate);
            for (d, design) in designs.iter().enumerate() {
                let eval = evaluate(&prepared, *design, q);
                if *design == DesignKind::Table {
                    val_success += eval.runs.iter().filter(|r| r.quality_loss <= q).count();
                    val_total += eval.runs.len();
                }
                per_design[d].push(eval.summary);
            }
        }
        if per_design[0].is_empty() {
            continue;
        }
        let suites: Vec<SuiteSummary> = per_design
            .iter()
            .map(|v| SuiteSummary::from_benchmarks(v))
            .collect();
        let qlabel = format!("{:.1}%", q * 100.0);
        speedup.row([
            qlabel.clone(),
            format!("{:.2}x", suites[0].speedup),
            format!("{:.2}x", suites[1].speedup),
            format!("{:.2}x", suites[2].speedup),
        ]);
        energy.row([
            qlabel.clone(),
            format!("{:.2}x", suites[0].energy_reduction),
            format!("{:.2}x", suites[1].energy_reduction),
            format!("{:.2}x", suites[2].energy_reduction),
        ]);
        invocation.row([
            qlabel.clone(),
            format!("{:.0}%", suites[0].invocation_rate * 100.0),
            format!("{:.0}%", suites[1].invocation_rate * 100.0),
            format!("{:.0}%", suites[2].invocation_rate * 100.0),
        ]);
        let mean_th = thresholds.iter().sum::<f64>() / thresholds.len() as f64;
        let mean_bound = bounds.iter().sum::<f64>() / bounds.len() as f64;
        guarantee.row([
            qlabel,
            format!("{mean_th:.4}"),
            format!("{successes}/{trials}"),
            format!("{:.1}%", mean_bound * 100.0),
            format!("{val_success}/{val_total}"),
        ]);
    }

    println!("## Figure 6a: speedup (geomean)\n{speedup}");
    println!("## Figure 6b: energy reduction (geomean)\n{energy}");
    println!("## Figure 6c: accelerator invocation rate (mean)\n{invocation}");
    println!("## Statistical guarantee bookkeeping\n{guarantee}");
    println!(
        "paper @5%: table 2.5x speedup / 2.6x energy / 64% invocation; \
         neural similar speedup, +13% energy, 73% invocation; \
         oracle +26%/+36% over table"
    );
}
