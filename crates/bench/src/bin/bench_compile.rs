//! Cold-compile performance benchmark: sweeps benchmark × thread count
//! over the staged [`CompileSession`] pipeline and writes
//! `BENCH_compile.json` with per-stage wall times.
//!
//! Two presets mirror the repo's two compile-cost anchors:
//!
//! * `table1` — NPU training plus validation-set profiling, the flow
//!   `table1_benchmarks` times (the quality-independent half of the
//!   pipeline);
//! * `fig09` — the full five-stage flow (`train_npu → profile → certify
//!   → train_classifiers` plus validation profiling), the per-benchmark
//!   compile cost `fig09_random_filtering` reports.
//!
//! Every timed rep is **cold**: the artifact cache is forcibly disabled
//! regardless of `--cache-dir`, so the numbers measure the kernels, not
//! the cache. Each (preset, benchmark) gets one untimed warmup pass
//! (first-touch page faults, lazy dataset generation) before the thread
//! sweep; each grid point then averages `--reps` timed passes. Thread
//! counts above `host_threads` are still measured — results are
//! bit-identical at every thread count, only wall time moves — but only
//! counts up to `host_threads` can show wall-clock speedup.
//!
//! Bench-specific flags (all optional) are consumed before the shared
//! experiment flags: `--compile-threads 1,2,4`, `--presets table1,fig09`,
//! `--reps N`, `--out PATH`, `--kernels scalar,simd` (default: scalar
//! plus simd when the host supports it). The shared `--scale`, `--datasets`,
//! `--validation`, `--quality`, `--bench`, and `--npu-*` flags are
//! honored like every other figure binary.

use mithra_bench::runner::VALIDATION_SEED_BASE;
use mithra_bench::{default_threads, ExperimentConfig};
use mithra_core::session::{profile_validation, CompileSession, SessionReport};
use mithra_core::Result;
use mithra_npu::kernel::{host_simd_features, KernelBackend};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// Mean per-stage timing over the timed reps of one grid point.
#[derive(Debug, Serialize)]
struct StageTime {
    stage: String,
    wall_ms: f64,
    invocations: u64,
    /// Artifact-cache lookups satisfied from disk in the last rep (0 on
    /// these cold passes by construction — recorded so warm reruns of
    /// the JSON are self-describing).
    cache_hits: u32,
    cache_misses: u32,
}

/// One (benchmark, kernel, threads) grid point.
#[derive(Debug, Serialize)]
struct RunRecord {
    kernel: String,
    threads: usize,
    total_wall_ms: f64,
    total_invocations: u64,
    total_cache_hits: u32,
    total_cache_misses: u32,
    speedup_vs_single_thread: f64,
    stages: Vec<StageTime>,
}

/// The thread sweep of one benchmark under one preset.
#[derive(Debug, Serialize)]
struct BenchmarkSweep {
    name: String,
    runs: Vec<RunRecord>,
}

/// All benchmarks under one preset.
#[derive(Debug, Serialize)]
struct PresetReport {
    name: String,
    description: String,
    compile_datasets: usize,
    validation_datasets: usize,
    benchmarks: Vec<BenchmarkSweep>,
}

/// Cold walls of the two presets measured at the seed commit on the same
/// host, before the kernel overhaul — the fixed reference point the
/// measured grid is compared against (see EXPERIMENTS.md).
#[derive(Debug, Serialize)]
struct SeedBaseline {
    commit: String,
    host_threads: usize,
    table1_cold_wall_s: f64,
    fig09_cold_wall_s: f64,
    note: String,
}

/// The whole `BENCH_compile.json` document.
#[derive(Debug, Serialize)]
struct Report {
    scale: String,
    quality: f64,
    reps: usize,
    /// Available parallelism of the measuring host — recorded honestly;
    /// thread counts beyond it cannot show wall-clock speedup.
    host_threads: usize,
    /// SIMD feature set of the measuring host (empty = scalar-only host).
    host_simd: Vec<String>,
    thread_counts: Vec<usize>,
    /// Kernel backends swept; each (benchmark, threads) point is measured
    /// once per backend.
    kernels: Vec<String>,
    presets: Vec<PresetReport>,
    seed_baseline: SeedBaseline,
}

/// Which slice of the pipeline a preset times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Preset {
    Table1,
    Fig09,
}

impl Preset {
    fn name(self) -> &'static str {
        match self {
            Preset::Table1 => "table1",
            Preset::Fig09 => "fig09",
        }
    }

    fn description(self) -> &'static str {
        match self {
            Preset::Table1 => "npu-training + validation-profiling (table1_benchmarks flow)",
            Preset::Fig09 => {
                "full compile: npu-training, profiling, certification, \
                 classifier-training + validation-profiling (fig09 prepare flow)"
            }
        }
    }
}

/// Bench-specific options, extracted ahead of the shared parser.
struct BenchArgs {
    /// `None` = derive from `host_threads` (always includes the
    /// 1-thread sequential baseline).
    threads: Option<Vec<usize>>,
    presets: Vec<Preset>,
    reps: usize,
    out: PathBuf,
    /// `None` = scalar plus simd when the host supports it.
    kernels: Option<Vec<KernelBackend>>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            threads: None,
            presets: vec![Preset::Table1, Preset::Fig09],
            reps: 1,
            out: PathBuf::from("BENCH_compile.json"),
            kernels: None,
        }
    }
}

impl BenchArgs {
    /// The thread-count sweep, anchored at the sequential baseline and
    /// topping out past `host_threads` by default so the parallel axes
    /// are exercised even on a single-core host.
    fn thread_counts(&self, host_threads: usize) -> Vec<usize> {
        let mut counts = self
            .threads
            .clone()
            .unwrap_or_else(|| vec![1, 2, host_threads]);
        if !counts.contains(&1) {
            counts.insert(0, 1);
        }
        counts.retain(|&t| t > 0);
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// The kernel sweep: scalar first (the reference every speedup is
    /// judged against), then simd when the host can run it.
    fn kernel_backends(&self) -> Vec<KernelBackend> {
        let mut kernels = self.kernels.clone().unwrap_or_else(|| {
            if KernelBackend::simd_available() {
                vec![KernelBackend::Scalar, KernelBackend::Simd]
            } else {
                vec![KernelBackend::Scalar]
            }
        });
        kernels.dedup();
        kernels
    }
}

fn parse_list(flag: &str, value: &str) -> Vec<usize> {
    value
        .split(',')
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| {
                eprintln!("malformed value `{value}` for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn parse_presets(value: &str) -> Vec<Preset> {
    value
        .split(',')
        .map(|s| match s.trim() {
            "table1" => Preset::Table1,
            "fig09" => Preset::Fig09,
            other => {
                eprintln!("unknown preset `{other}` (table1|fig09)");
                std::process::exit(2);
            }
        })
        .collect()
}

/// Pulls the bench-specific flags out of `args`, leaving the shared
/// experiment flags for [`ExperimentConfig::from_arg_list`].
fn extract_bench_args(args: &mut Vec<String>) -> BenchArgs {
    let mut bench = BenchArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take_value = || -> String {
            if i + 1 >= args.len() {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        };
        match flag.as_str() {
            "--compile-threads" => bench.threads = Some(parse_list(&flag, &take_value())),
            "--presets" => bench.presets = parse_presets(&take_value()),
            "--reps" => bench.reps = parse_list(&flag, &take_value())[0].max(1),
            "--out" => bench.out = PathBuf::from(take_value()),
            "--kernels" => {
                bench.kernels = Some(
                    take_value()
                        .split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|e: String| {
                                eprintln!("{e}");
                                std::process::exit(2);
                            })
                        })
                        .collect(),
                );
            }
            _ => i += 1,
        }
    }
    bench
}

/// One cold pass of `preset` at `threads`; returns the per-stage
/// instrumentation (validation profiling appended as a fifth stage).
fn run_pass(
    bench: &Arc<dyn mithra_axbench::benchmark::Benchmark>,
    cfg: &ExperimentConfig,
    quality: f64,
    preset: Preset,
    threads: usize,
    kernel: KernelBackend,
) -> Result<SessionReport> {
    let mut compile_cfg = cfg.compile_config(quality)?;
    // Every pass is cold by construction: timing the cache would measure
    // disk I/O, not the compile kernels.
    compile_cfg.cache = None;
    compile_cfg.threads = Some(threads);
    compile_cfg.kernel = kernel;
    match preset {
        Preset::Table1 => {
            let session =
                CompileSession::new(Arc::clone(bench), compile_cfg.clone()).train_npu()?;
            let (function, mut report) = session.into_parts();
            let (_, validation_report) = profile_validation(
                &function,
                &compile_cfg,
                VALIDATION_SEED_BASE,
                cfg.validation_datasets,
            );
            report.stages.push(validation_report);
            Ok(report)
        }
        Preset::Fig09 => {
            let session = CompileSession::new(Arc::clone(bench), compile_cfg.clone())
                .train_npu()?
                .profile()?
                .certify()?
                .train_classifiers()?;
            let (compiled, mut report) = session.finish();
            let (_, validation_report) = profile_validation(
                &compiled.function,
                &compile_cfg,
                VALIDATION_SEED_BASE,
                cfg.validation_datasets,
            );
            report.stages.push(validation_report);
            Ok(report)
        }
    }
}

/// Averages `reps` cold passes into one grid-point record. The stage
/// list is identical across reps (the pipeline is deterministic), so
/// stages are folded positionally.
fn run_point(
    bench: &Arc<dyn mithra_axbench::benchmark::Benchmark>,
    cfg: &ExperimentConfig,
    quality: f64,
    preset: Preset,
    threads: usize,
    kernel: KernelBackend,
    reps: usize,
) -> Result<RunRecord> {
    let mut stages: Vec<StageTime> = Vec::new();
    for rep in 0..reps {
        let report = run_pass(bench, cfg, quality, preset, threads, kernel)?;
        if rep == 0 {
            stages = report
                .stages
                .iter()
                .map(|s| StageTime {
                    stage: s.stage.label().to_string(),
                    wall_ms: s.wall.as_secs_f64() * 1e3,
                    invocations: s.invocations,
                    cache_hits: s.cache_hits,
                    cache_misses: s.cache_misses,
                })
                .collect();
        } else {
            for (acc, s) in stages.iter_mut().zip(&report.stages) {
                acc.wall_ms += s.wall.as_secs_f64() * 1e3;
            }
        }
    }
    for stage in &mut stages {
        stage.wall_ms /= reps as f64;
    }
    Ok(RunRecord {
        kernel: kernel.to_string(),
        threads,
        total_wall_ms: stages.iter().map(|s| s.wall_ms).sum(),
        total_invocations: stages.iter().map(|s| s.invocations).sum(),
        total_cache_hits: stages.iter().map(|s| s.cache_hits).sum(),
        total_cache_misses: stages.iter().map(|s| s.cache_misses).sum(),
        speedup_vs_single_thread: 0.0, // filled once the baseline is known
        stages,
    })
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_args = extract_bench_args(&mut args);
    let cfg = match ExperimentConfig::from_arg_list(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            eprintln!(
                "bench flags: --compile-threads 1,2,4 --presets table1,fig09 \
                 --reps N --out PATH --kernels scalar,simd"
            );
            std::process::exit(2);
        }
    };
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    let host_threads = default_threads();
    let thread_counts = bench_args.thread_counts(host_threads);
    let kernels = bench_args.kernel_backends();
    eprintln!(
        "compile sweep: presets {:?} × kernels {:?} × threads {:?}, {} timed rep(s), host_threads {}",
        bench_args
            .presets
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>(),
        kernels.iter().map(|k| k.as_str()).collect::<Vec<_>>(),
        thread_counts,
        bench_args.reps,
        host_threads
    );

    let suite = cfg.suite_or_exit();
    let mut presets = Vec::new();
    for &preset in &bench_args.presets {
        let mut benchmarks = Vec::new();
        for bench in &suite {
            let name = bench.name().to_string();
            // Untimed warmup: first-touch page faults and allocator
            // arena growth land here, not in the measurement.
            let warm_start = std::time::Instant::now();
            run_pass(bench, &cfg, quality, preset, thread_counts[0], kernels[0])
                .unwrap_or_else(|e| panic!("{}/{name} warmup failed: {e}", preset.name()));
            eprintln!(
                "{} [{name}] warmup: {:.2}s",
                preset.name(),
                warm_start.elapsed().as_secs_f64()
            );
            let mut runs: Vec<RunRecord> = Vec::new();
            for &kernel in &kernels {
                for &threads in &thread_counts {
                    runs.push(
                        run_point(
                            bench,
                            &cfg,
                            quality,
                            preset,
                            threads,
                            kernel,
                            bench_args.reps,
                        )
                        .unwrap_or_else(|e| panic!("{}/{name} failed: {e}", preset.name())),
                    );
                }
            }
            // Speedups are judged within a kernel: each backend's runs
            // against its own 1-thread baseline.
            for &kernel in &kernels {
                let baseline = runs
                    .iter()
                    .find(|r| r.threads == 1 && r.kernel == kernel.as_str())
                    .expect("the 1-thread baseline is always in the grid")
                    .total_wall_ms;
                for run in &mut runs {
                    if run.kernel == kernel.as_str() {
                        run.speedup_vs_single_thread = baseline / run.total_wall_ms;
                    }
                }
            }
            for run in &runs {
                eprintln!(
                    "{} [{name}] kernel={} threads={}: {:.2}s total ({:.2}x vs 1 thread)",
                    preset.name(),
                    run.kernel,
                    run.threads,
                    run.total_wall_ms / 1e3,
                    run.speedup_vs_single_thread
                );
            }
            benchmarks.push(BenchmarkSweep { name, runs });
        }
        presets.push(PresetReport {
            name: preset.name().to_string(),
            description: preset.description().to_string(),
            compile_datasets: cfg.compile_datasets,
            validation_datasets: cfg.validation_datasets,
            benchmarks,
        });
    }

    let report = Report {
        scale: format!("{:?}", cfg.scale).to_lowercase(),
        quality,
        reps: bench_args.reps,
        host_threads,
        host_simd: host_simd_features().iter().map(|s| s.to_string()).collect(),
        thread_counts,
        kernels: kernels.iter().map(|k| k.to_string()).collect(),
        presets,
        seed_baseline: SeedBaseline {
            commit: "65a455a".to_string(),
            host_threads: 1,
            table1_cold_wall_s: 15.7,
            fig09_cold_wall_s: 92.5,
            note: "cold end-to-end walls of the table1_benchmarks and \
                   fig09_random_filtering binaries (cache off, full scale, \
                   defaults) at the pre-overhaul seed commit on the same \
                   single-core host; they slightly over-cover the matching \
                   preset's summed total_wall_ms (the binaries also simulate \
                   and print)"
                .to_string(),
        },
    };
    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(&bench_args.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", bench_args.out.display());
        std::process::exit(1);
    });
    eprintln!("wrote {}", bench_args.out.display());
}
