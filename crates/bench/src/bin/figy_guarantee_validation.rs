//! Figure Y: Monte-Carlo validation of the Clopper–Pearson guarantee on
//! unseen datasets.
//!
//! The compiler certifies "with confidence β, at least a fraction S of
//! unseen datasets meets the quality target". This binary puts that
//! sentence on trial: per benchmark it reuses the cached compile
//! artifact, draws `--trials` datasets from the conformance seed space
//! (`CONFORM_SEED_BASE` — disjoint from every compile, validation and
//! serving seed), simulates each under the deployed table classifier,
//! and tests the observed success fraction against the certificate with
//! an exact one-sided binomial test. It then runs the harness's mutation
//! self-check on the same losses: four planted defects (target ±ε,
//! swapped bound direction, off-by-one violation count) must each be
//! detected, or the verdicts above it are not to be trusted.
//!
//! Bench-specific flags, consumed before the shared experiment flags:
//! `--trials M` (unseen datasets per benchmark), `--epsilon E` (target
//! perturbation of the self-check), `--test-confidence C` (the harness's
//! own test level), `--out PATH` (the machine-readable
//! `BENCH_conform.json`). Shared `--scale`, `--quality`, `--bench`,
//! `--threads`, `--cache-dir` flags work like every other figure binary;
//! trial fan-out is bit-identical at any `--threads` setting.

use mithra_bench::{ExperimentConfig, TextTable};
use mithra_conform::selfcheck::{self_check, SelfCheckReport};
use mithra_conform::{
    validate_profiles, GuaranteeReport, ValidatorConfig, Verdict, CONFORM_SEED_BASE,
};
use mithra_core::session::{profile_validation, CompileSession};
use mithra_core::Result;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;

/// One benchmark's conformance result in `BENCH_conform.json`.
#[derive(Debug, Serialize)]
struct BenchmarkRecord {
    report: GuaranteeReport,
    selfcheck: SelfCheckReport,
}

/// The whole `BENCH_conform.json` document.
#[derive(Debug, Serialize)]
struct JsonReport {
    scale: String,
    quality: f64,
    trials: usize,
    seed_base: u64,
    test_confidence: f64,
    epsilon: f64,
    benchmarks: Vec<BenchmarkRecord>,
}

/// Bench-specific options, extracted ahead of the shared parser.
struct BenchArgs {
    trials: usize,
    epsilon: f64,
    test_confidence: f64,
    out: PathBuf,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            trials: 100,
            epsilon: 0.005,
            test_confidence: 0.95,
            out: PathBuf::from("BENCH_conform.json"),
        }
    }
}

/// Pulls the bench-specific flags out of `args`, leaving the shared
/// experiment flags for [`ExperimentConfig::from_arg_list`].
fn extract_bench_args(args: &mut Vec<String>) -> BenchArgs {
    let mut bench = BenchArgs::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let mut take_value = || -> String {
            if i + 1 >= args.len() {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            }
            let value = args.remove(i + 1);
            args.remove(i);
            value
        };
        let parse = |flag: &str, value: &str| -> f64 {
            value.trim().parse().unwrap_or_else(|_| {
                eprintln!("malformed value `{value}` for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--trials" => bench.trials = parse(&flag, &take_value()) as usize,
            "--epsilon" => bench.epsilon = parse(&flag, &take_value()),
            "--test-confidence" => bench.test_confidence = parse(&flag, &take_value()),
            "--out" => bench.out = PathBuf::from(take_value()),
            _ => i += 1,
        }
    }
    bench
}

/// Compiles one benchmark (cache-backed: a warm artifact cache makes
/// this a pure load), profiles `trials` conformance datasets (also
/// cached, keyed by the conformance seed base), and validates the
/// certificate.
fn validate_benchmark(
    bench: &Arc<dyn mithra_axbench::benchmark::Benchmark>,
    cfg: &ExperimentConfig,
    bench_args: &BenchArgs,
    quality: f64,
) -> Result<(GuaranteeReport, SelfCheckReport)> {
    let compile_cfg = cfg.compile_config(quality)?;
    let session = CompileSession::new(Arc::clone(bench), compile_cfg.clone())
        .train_npu()?
        .profile()?
        .certify()?
        .train_classifiers()?;
    let (compiled, mut report) = session.finish();
    let (profiles, profiling_report) = profile_validation(
        &compiled.function,
        &compile_cfg,
        CONFORM_SEED_BASE,
        bench_args.trials,
    );
    report.stages.push(profiling_report);
    eprint!("{report}");

    let spec = cfg.spec(quality)?;
    let vconfig = ValidatorConfig {
        trials: bench_args.trials,
        scale: cfg.scale,
        threads: cfg.threads,
        test_confidence: bench_args.test_confidence,
        ..ValidatorConfig::default()
    };
    let guarantee = validate_profiles(&compiled, &spec, &profiles, &vconfig)
        .unwrap_or_else(|e| panic!("{}: conformance validation failed: {e}", bench.name()));
    let losses: Vec<f64> = guarantee
        .trial_records
        .iter()
        .map(|t| t.quality_loss)
        .collect();
    let selfcheck = self_check(
        &losses,
        &spec,
        bench_args.epsilon,
        1.0 - bench_args.test_confidence,
    )
    .unwrap_or_else(|e| panic!("{}: self-check failed: {e}", bench.name()));
    Ok((guarantee, selfcheck))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let bench_args = extract_bench_args(&mut args);
    let cfg = match ExperimentConfig::from_arg_list(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("bench flags: --trials M --epsilon E --test-confidence C --out PATH");
            std::process::exit(2);
        }
    };
    let quality = cfg.quality_levels.first().copied().unwrap_or(0.05);
    println!("# Figure Y: does the certified guarantee hold on unseen datasets?");
    println!(
        "# scale={:?} quality={:.1}% confidence={:.0}% success-rate={:.0}% \
         trials={} seed-base={} test-confidence={:.0}% epsilon={}\n",
        cfg.scale,
        quality * 100.0,
        cfg.confidence * 100.0,
        cfg.success_rate * 100.0,
        bench_args.trials,
        CONFORM_SEED_BASE,
        bench_args.test_confidence * 100.0,
        bench_args.epsilon
    );

    let mut table = TextTable::new([
        "benchmark",
        "certified",
        "observed",
        "unseen CP lower",
        "p-value",
        "verdict",
        "invocation rate",
        "self-check",
    ]);
    let mut records = Vec::new();
    let mut holds = 0usize;
    let mut marginal = 0usize;
    let mut violated = 0usize;
    let mut mutations_planted = 0usize;
    let mut mutations_detected = 0usize;

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let (report, selfcheck) = match validate_benchmark(&bench, &cfg, &bench_args, quality) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        println!("{}", report.summary_line());
        match report.verdict {
            Verdict::Holds => holds += 1,
            Verdict::Marginal => marginal += 1,
            Verdict::Violated => violated += 1,
        }
        let detected = selfcheck.outcomes.iter().filter(|o| o.detected).count();
        mutations_planted += selfcheck.outcomes.len();
        mutations_detected += detected;
        for outcome in selfcheck.outcomes.iter().filter(|o| !o.detected) {
            eprintln!(
                "{name}: planted mutation {:?} ESCAPED the audits",
                outcome.mutation
            );
        }
        table.row([
            name.to_string(),
            format!("{:.1}%", report.certified_rate * 100.0),
            format!(
                "{}/{} ({:.1}%)",
                report.successes,
                report.trials,
                report.observed_rate * 100.0
            ),
            format!("{:.1}%", report.unseen_lower_bound * 100.0),
            format!("{:.4}", report.p_value),
            report.verdict.label().to_string(),
            format!("{:.1}%", report.mean_invocation_rate * 100.0),
            format!("{detected}/{} detected", selfcheck.outcomes.len()),
        ]);
        records.push(BenchmarkRecord { report, selfcheck });
    }

    println!("\n{table}");
    println!(
        "guarantee holds outright on {holds} of {} benchmarks \
         ({marginal} marginal, {violated} violated at the exact binomial test); \
         mutation self-check detected {mutations_detected}/{mutations_planted} planted defects",
        records.len()
    );

    let json = JsonReport {
        scale: format!("{:?}", cfg.scale).to_lowercase(),
        quality,
        trials: bench_args.trials,
        seed_base: CONFORM_SEED_BASE,
        test_confidence: bench_args.test_confidence,
        epsilon: bench_args.epsilon,
        benchmarks: records,
    };
    let json = serde_json::to_string(&json).expect("report serializes");
    std::fs::write(&bench_args.out, json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", bench_args.out.display());
        std::process::exit(1);
    });
    eprintln!("wrote {}", bench_args.out.display());
}
