//! Design-space ablation: MITHRA's binary classifiers versus the
//! Rumba-style alternatives the paper's §VI argues against.
//!
//! Five runtime mechanisms drive the same quality-control decision:
//!
//! * MITHRA's **table** (MISR multi-table, binary classification)
//! * MITHRA's **neural** MLP (binary classification)
//! * a **decision tree** (Rumba's classifier mechanism)
//! * an **error regressor** (Rumba's value-prediction mechanism)
//! * the **oracle** upper bound
//!
//! The paper's claim to verify: error-value regression is "significantly
//! more demanding and less reliable than MITHRA's binary classification".

use mithra_bench::{evaluate, prepare, DesignKind, ExperimentConfig, TextTable};
use mithra_core::regression::{RegressionFilter, RegressionTrainConfig};
use mithra_core::tree::{TreeClassifier, TreeTrainConfig};
use mithra_sim::system::{simulate, SimOptions};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let quality = cfg.quality_levels.get(1).copied().unwrap_or(0.05);
    println!(
        "# Ablation: binary classification vs regression/tree at {:.1}% quality loss",
        quality * 100.0
    );
    println!(
        "# scale={:?} datasets={} validation={}\n",
        cfg.scale, cfg.compile_datasets, cfg.validation_datasets
    );

    let mut table = TextTable::new([
        "benchmark",
        "design",
        "invocation",
        "quality loss",
        "FP",
        "FN",
        "speedup",
    ]);

    for bench in cfg.suite_or_exit() {
        let name = bench.name();
        let prepared = match prepare(bench, &cfg, quality) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{name}: {e}");
                continue;
            }
        };
        let mut row = |design: &str, s: &mithra_sim::report::BenchmarkSummary| {
            table.row([
                name.to_string(),
                design.to_string(),
                format!("{:.0}%", s.invocation_rate * 100.0),
                format!("{:.2}%", s.quality_loss * 100.0),
                format!("{:.1}%", s.false_positive_rate * 100.0),
                format!("{:.1}%", s.false_negative_rate * 100.0),
                format!("{:.2}x", s.speedup),
            ]);
        };

        for design in [DesignKind::Oracle, DesignKind::Table, DesignKind::Neural] {
            row(
                design.label(),
                &evaluate(&prepared, design, quality).summary,
            );
        }

        // Decision tree, trained on the same labeled tuples.
        match TreeClassifier::train(
            &prepared.compiled.training_data,
            &TreeTrainConfig::default(),
        ) {
            Ok(tree) => {
                let runs: Vec<_> = prepared
                    .validation
                    .iter()
                    .map(|p| {
                        let mut t = tree.clone();
                        simulate(&prepared.compiled, p, &mut t, &SimOptions::default())
                    })
                    .collect();
                row(
                    "tree",
                    &mithra_sim::report::BenchmarkSummary::from_runs(&runs, quality),
                );
            }
            Err(e) => eprintln!("{name} tree: {e}"),
        }

        // Error regressor, trained on the same profiles.
        match RegressionFilter::train(
            &prepared.compiled.profiles,
            prepared.compiled.threshold.threshold,
            &RegressionTrainConfig::default(),
        ) {
            Ok(reg) => {
                let runs: Vec<_> = prepared
                    .validation
                    .iter()
                    .map(|p| {
                        let mut r = reg.clone();
                        simulate(&prepared.compiled, p, &mut r, &SimOptions::default())
                    })
                    .collect();
                row(
                    "regression",
                    &mithra_sim::report::BenchmarkSummary::from_runs(&runs, quality),
                );
            }
            Err(e) => eprintln!("{name} regression: {e}"),
        }
    }
    println!("{table}");
    println!(
        "paper §VI: error-value regression is more demanding and less reliable than \
         MITHRA's binary classification"
    );
}
