//! Design-space ablation benchmarks: how the table classifier's cost
//! scales with the choices DESIGN.md calls out (ensemble size, table
//! size, quantization granularity, conservative vs vote training).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mithra_core::classifier::Classifier;
use mithra_core::misr::InputQuantizer;
use mithra_core::table::{TableClassifier, TableDesign};
use mithra_core::training::TrainingExample;

fn examples(n: usize) -> Vec<TrainingExample> {
    (0..n)
        .map(|i| {
            let x = (i as f32 * 0.618) % 1.0;
            TrainingExample {
                input: vec![x, 1.0 - x, (x * 3.0) % 1.0],
                reject: x > 0.9,
            }
        })
        .collect()
}

fn quantizer() -> InputQuantizer {
    InputQuantizer::new(vec![0.0; 3], vec![1.0; 3])
}

fn bench_ensemble_size(c: &mut Criterion) {
    let ex = examples(2000);
    let mut group = c.benchmark_group("ablation_ensemble_size_classify");
    for tables in [1usize, 2, 4, 8] {
        let design = TableDesign {
            tables,
            entries_per_table: 4096,
        };
        let mut classifier =
            TableClassifier::train_with_quantizer(design, quantizer(), &ex).unwrap();
        let input = [0.3f32, 0.7, 0.9];
        group.bench_function(format!("{tables}_tables"), |b| {
            b.iter(|| classifier.classify(0, black_box(&input)))
        });
    }
    group.finish();
}

fn bench_table_size_training(c: &mut Criterion) {
    let ex = examples(2000);
    let mut group = c.benchmark_group("ablation_table_size_train");
    group.sample_size(10);
    for entries in [1024usize, 4096, 16384] {
        let design = TableDesign {
            tables: 8,
            entries_per_table: entries,
        };
        group.bench_function(format!("{entries}_entries"), |b| {
            b.iter(|| {
                TableClassifier::train_with_quantizer(design, quantizer(), black_box(&ex)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_quantization_granularity(c: &mut Criterion) {
    let ex = examples(2000);
    let mut group = c.benchmark_group("ablation_quant_levels_train");
    group.sample_size(10);
    for levels in [2u16, 16, 256] {
        group.bench_function(format!("{levels}_levels"), |b| {
            b.iter(|| {
                TableClassifier::train_with_policy(
                    TableDesign::paper_default(),
                    quantizer().with_levels(levels),
                    0.0,
                    black_box(&ex),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_policy_search_vs_fixed(c: &mut Criterion) {
    let ex = examples(2000);
    let mut group = c.benchmark_group("ablation_training_policy");
    group.sample_size(10);
    group.bench_function("conservative_fixed", |b| {
        b.iter(|| {
            TableClassifier::train_with_quantizer(
                TableDesign::paper_default(),
                quantizer(),
                black_box(&ex),
            )
            .unwrap()
        })
    });
    group.bench_function("full_policy_search", |b| {
        b.iter(|| {
            TableClassifier::train(TableDesign::paper_default(), quantizer(), black_box(&ex))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_ensemble_size,
    bench_table_size_training,
    bench_quantization_granularity,
    bench_policy_search_vs_fixed
);
criterion_main!(ablations);
