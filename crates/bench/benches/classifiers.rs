//! Classifier decision-path and training microbenchmarks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mithra_core::classifier::Classifier;
use mithra_core::misr::InputQuantizer;
use mithra_core::neural::{NeuralClassifier, NeuralTrainConfig};
use mithra_core::table::{TableClassifier, TableDesign};
use mithra_core::training::TrainingExample;

fn synthetic_examples(dims: usize, n: usize) -> Vec<TrainingExample> {
    (0..n)
        .map(|i| {
            let x = i as f32 / n as f32;
            TrainingExample {
                input: (0..dims).map(|d| (x + d as f32 * 0.01) % 1.0).collect(),
                reject: x > 0.85,
            }
        })
        .collect()
}

fn quantizer(dims: usize) -> InputQuantizer {
    InputQuantizer::new(vec![0.0; dims], vec![1.0; dims])
}

fn bench_table_decide(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_classify");
    for dims in [2usize, 9, 18, 64] {
        let examples = synthetic_examples(dims, 2000);
        let mut classifier =
            TableClassifier::train(TableDesign::paper_default(), quantizer(dims), &examples)
                .unwrap();
        let input: Vec<f32> = (0..dims).map(|d| d as f32 * 0.013).collect();
        group.bench_function(format!("{dims}_inputs"), |b| {
            b.iter(|| classifier.classify(0, black_box(&input)))
        });
    }
    group.finish();
}

fn bench_table_online_update(c: &mut Criterion) {
    let examples = synthetic_examples(9, 2000);
    let mut classifier =
        TableClassifier::train(TableDesign::paper_default(), quantizer(9), &examples).unwrap();
    let input = vec![0.4f32; 9];
    c.bench_function("table_observe", |b| {
        b.iter(|| classifier.observe(0, black_box(&input), true))
    });
}

fn bench_table_train(c: &mut Criterion) {
    let examples = synthetic_examples(9, 2000);
    let mut group = c.benchmark_group("table_train_2000_examples");
    group.sample_size(10);
    for design in [
        TableDesign {
            tables: 1,
            entries_per_table: 4096,
        },
        TableDesign::paper_default(),
    ] {
        group.bench_function(design.to_string(), |b| {
            b.iter(|| TableClassifier::train(design, quantizer(9), black_box(&examples)).unwrap())
        });
    }
    group.finish();
}

fn bench_neural_decide(c: &mut Criterion) {
    let examples = synthetic_examples(9, 1000);
    let cfg = NeuralTrainConfig {
        hidden_candidates: vec![8],
        epochs: 30,
        ..NeuralTrainConfig::default()
    };
    let mut classifier = NeuralClassifier::train(9, &examples, &cfg).unwrap();
    let input = vec![0.4f32; 9];
    c.bench_function("neural_classify_9_inputs", |b| {
        b.iter(|| classifier.classify(0, black_box(&input)))
    });
}

fn bench_tree_decide(c: &mut Criterion) {
    use mithra_core::tree::{TreeClassifier, TreeTrainConfig};
    let examples = synthetic_examples(9, 2000);
    let mut tree = TreeClassifier::train(&examples, &TreeTrainConfig::default()).unwrap();
    let input = vec![0.4f32; 9];
    c.bench_function("tree_classify_9_inputs", |b| {
        b.iter(|| tree.classify(0, black_box(&input)))
    });
}

criterion_group!(
    classifiers,
    bench_table_decide,
    bench_table_online_update,
    bench_table_train,
    bench_neural_decide,
    bench_tree_decide
);
criterion_main!(classifiers);
