//! Microbenchmarks of the hot computational kernels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mithra_axbench::blackscholes::price_option;
use mithra_axbench::fft::{fft_with_twiddles, generate_signal, twiddle};
use mithra_axbench::jmeint::tri_tri_intersect;
use mithra_axbench::jpeg::{decode_block, encode_block};
use mithra_axbench::sobel::gradient_magnitude;
use mithra_bdi::{compress, decompress, CompressedTable};
use mithra_core::misr::{Misr, MisrConfig};
use mithra_npu::mlp::{Activation, Mlp};
use mithra_npu::topology::Topology;
use mithra_stats::clopper_pearson::{lower_bound, Confidence};

fn bench_misr(c: &mut Criterion) {
    let mut group = c.benchmark_group("misr_hash");
    for dims in [2usize, 9, 18, 64] {
        let elements: Vec<u8> = (0..dims).map(|i| (i * 37) as u8).collect();
        let cfg = MisrConfig::pool()[3];
        group.bench_function(format!("{dims}_elements"), |b| {
            b.iter(|| Misr::hash(black_box(cfg), 12, black_box(&elements)))
        });
    }
    group.finish();
}

fn mlp_for(topology: &Topology) -> Mlp {
    let w = vec![0.1f32; topology.weight_count()];
    let biases = vec![0.01f32; topology.bias_count()];
    Mlp::from_parameters(topology.clone(), &w, &biases, Activation::Linear).unwrap()
}

fn bench_mlp_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("npu_forward");
    for shape in [
        "6->8->8->1",
        "1->4->4->2",
        "2->8->2",
        "18->32->8->2",
        "64->16->64",
        "9->8->1",
    ] {
        let topology: Topology = shape.parse().unwrap();
        let mlp = mlp_for(&topology);
        let input = vec![0.5f32; topology.inputs()];
        let mut out = Vec::new();
        group.bench_function(shape, |b| {
            b.iter(|| mlp.run_into(black_box(&input), &mut out).unwrap())
        });
    }
    group.finish();
}

fn bench_bdi(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdi");
    let zero_line = [0u8; 64];
    group.bench_function("compress_zero_line", |b| {
        b.iter(|| compress(black_box(&zero_line)))
    });
    let mut ramp = [0u8; 64];
    for (i, v) in ramp.iter_mut().enumerate() {
        *v = i as u8;
    }
    group.bench_function("compress_ramp_line", |b| {
        b.iter(|| compress(black_box(&ramp)))
    });
    let enc = compress(&ramp);
    group.bench_function("decompress_ramp_line", |b| {
        b.iter(|| decompress(black_box(&enc)))
    });
    let sparse_table = {
        let mut t = vec![0u8; 4096];
        t[10] = 1;
        t[3000] = 1;
        t
    };
    group.bench_function("compress_4kb_table", |b| {
        b.iter(|| CompressedTable::new(black_box(&sparse_table)))
    });
    group.finish();
}

fn bench_clopper_pearson(c: &mut Criterion) {
    let conf = Confidence::new(0.95).unwrap();
    c.bench_function("clopper_pearson_lower_bound_235_250", |b| {
        b.iter(|| lower_bound(black_box(235), black_box(250), conf).unwrap())
    });
}

fn bench_precise_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("precise_kernels");
    group.bench_function("blackscholes_option", |b| {
        b.iter(|| price_option(black_box(100.0), black_box(105.0), 0.05, 0.3, 1.0, 0.0))
    });
    let window = [10.0f32, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0];
    group.bench_function("sobel_window", |b| {
        b.iter(|| gradient_magnitude(black_box(&window)))
    });
    let t1 = [[0.0f32, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]];
    let t2 = [[0.2f32, 0.2, -0.5], [0.2, 0.2, 0.5], [0.8, 0.8, 0.0]];
    group.bench_function("jmeint_tri_tri", |b| {
        b.iter(|| tri_tri_intersect(black_box(t1), black_box(t2)))
    });
    group.bench_function("fft_twiddle", |b| b.iter(|| twiddle(black_box(0.37))));
    let mut block = [0.0f32; 64];
    for (i, v) in block.iter_mut().enumerate() {
        *v = ((i * 13) % 256) as f32;
    }
    group.bench_function("jpeg_encode_block", |b| {
        b.iter(|| encode_block(black_box(&block)))
    });
    let coeffs = encode_block(&block);
    group.bench_function("jpeg_decode_block", |b| {
        b.iter(|| decode_block(black_box(&coeffs)))
    });
    group.finish();
}

fn bench_fft_application(c: &mut Criterion) {
    let signal = generate_signal(7, 2048);
    let twiddles: Vec<(f32, f32)> = (0..1024).map(|k| twiddle(k as f32 / 2048.0)).collect();
    c.bench_function("fft_2048_application", |b| {
        b.iter(|| fft_with_twiddles(black_box(&signal), black_box(&twiddles)))
    });
}

criterion_group!(
    kernels,
    bench_misr,
    bench_mlp_forward,
    bench_bdi,
    bench_clopper_pearson,
    bench_precise_kernels,
    bench_fft_application
);
criterion_main!(kernels);
