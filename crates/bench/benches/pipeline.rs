//! End-to-end compile-pipeline stage benchmarks (smoke scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mithra_axbench::benchmark::Benchmark;
use mithra_axbench::dataset::DatasetScale;
use mithra_axbench::suite;
use mithra_core::function::{AcceleratedFunction, NpuTrainConfig};
use mithra_core::profile::DatasetProfile;
use mithra_core::threshold::{QualitySpec, ThresholdOptimizer};
use std::sync::Arc;

fn trained_sobel() -> AcceleratedFunction {
    let bench: Arc<dyn Benchmark> = suite::by_name("sobel").unwrap().into();
    let datasets: Vec<_> = (0..3)
        .map(|s| bench.dataset(s, DatasetScale::Smoke))
        .collect();
    AcceleratedFunction::train(
        bench,
        &datasets,
        &NpuTrainConfig {
            epochs: Some(20),
            max_samples: 1000,
            seed: 1,
        },
    )
    .unwrap()
}

fn bench_profile_collection(c: &mut Criterion) {
    let f = trained_sobel();
    let mut group = c.benchmark_group("profiling");
    group.sample_size(20);
    group.bench_function("collect_smoke_dataset", |b| {
        b.iter(|| {
            let ds = f.dataset(black_box(99), DatasetScale::Smoke);
            DatasetProfile::collect(&f, ds)
        })
    });
    group.finish();
}

fn bench_threshold_machinery(c: &mut Criterion) {
    let f = trained_sobel();
    let profiles: Vec<DatasetProfile> = (100..120)
        .map(|s| DatasetProfile::collect(&f, f.dataset(s, DatasetScale::Smoke)))
        .collect();
    let spec = QualitySpec::new(0.10, 0.9, 0.5).unwrap();
    let optimizer = ThresholdOptimizer::new(spec);

    let mut group = c.benchmark_group("threshold");
    group.sample_size(20);
    group.bench_function("certify_one_candidate", |b| {
        b.iter(|| optimizer.certify(&f, black_box(&profiles), 0.05).unwrap())
    });
    group.bench_function("optimize_bisection_20_datasets", |b| {
        b.iter(|| optimizer.optimize(&f, black_box(&profiles)).unwrap())
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let f = trained_sobel();
    let profile = DatasetProfile::collect(&f, f.dataset(7, DatasetScale::Smoke));
    c.bench_function("replay_with_threshold", |b| {
        b.iter(|| profile.replay_with_threshold(&f, black_box(0.05)))
    });
}

criterion_group!(
    pipeline,
    bench_profile_collection,
    bench_threshold_machinery,
    bench_replay
);
criterion_main!(pipeline);
