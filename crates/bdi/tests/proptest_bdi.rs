//! Property tests: BDI is lossless and never expands accounting.

use mithra_bdi::{compress, decompress, CompressedTable, LINE_BYTES};
use proptest::prelude::*;

proptest! {
    #[test]
    fn any_line_round_trips(line in prop::array::uniform32(any::<u8>())) {
        // Build a 64-byte line from two copies of the 32-byte array with a
        // tweak so both halves are exercised.
        let mut full = [0u8; LINE_BYTES];
        full[..32].copy_from_slice(&line);
        full[32..].copy_from_slice(&line);
        full[63] ^= 0x5A;
        let enc = compress(&full);
        prop_assert_eq!(decompress(&enc), full);
    }

    #[test]
    fn compressed_len_never_exceeds_line(seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut full = [0u8; LINE_BYTES];
        for b in full.iter_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *b = (state >> 56) as u8;
        }
        let enc = compress(&full);
        prop_assert!(enc.compressed_len() <= LINE_BYTES);
    }

    #[test]
    fn table_round_trips(content in prop::collection::vec(any::<u8>(), 0..2048)) {
        let c = CompressedTable::new(&content);
        prop_assert_eq!(c.decompress(), content);
    }

    #[test]
    fn sparse_tables_compress(bit_positions in prop::collection::vec(0usize..4096, 0..20)) {
        let mut table = vec![0u8; 4096];
        for &p in &bit_positions {
            table[p] = 1;
        }
        let c = CompressedTable::new(&table);
        prop_assert_eq!(c.decompress(), table);
        // At most 20 dirty lines out of 64; compression must win.
        prop_assert!(c.stats().ratio() > 2.0);
    }
}
