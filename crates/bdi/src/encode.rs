//! Per-line BDI encoding and decoding.

use bytes::{BufMut, Bytes, BytesMut};

/// Size of a BDI line in bytes (one cache line).
pub const LINE_BYTES: usize = 64;

/// The encoding chosen for a single 64-byte line.
///
/// The numeric suffixes follow the BDI paper's naming: `BaseBDeltaD` views
/// the line as `64/B` words of `B` bytes and stores each as a `D`-byte
/// signed delta from the line's first word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Encoding {
    /// The entire line is zero. Stored as the tag alone.
    Zeros,
    /// The line is one 8-byte value repeated. Stored as that value.
    Repeated,
    /// 8-byte base, 1-byte deltas.
    Base8Delta1,
    /// 8-byte base, 2-byte deltas.
    Base8Delta2,
    /// 8-byte base, 4-byte deltas.
    Base8Delta4,
    /// 4-byte base, 1-byte deltas.
    Base4Delta1,
    /// 4-byte base, 2-byte deltas.
    Base4Delta2,
    /// 2-byte base, 1-byte deltas.
    Base2Delta1,
    /// No format applied; the line is stored verbatim.
    Uncompressed,
}

impl Encoding {
    /// Number of payload bytes this encoding stores for one line
    /// (excluding the per-line tag, which hardware holds in metadata).
    pub fn payload_len(&self) -> usize {
        match self {
            Encoding::Zeros => 1,
            Encoding::Repeated => 8,
            Encoding::Base8Delta1 => 8 + 8,
            Encoding::Base8Delta2 => 8 + 16,
            Encoding::Base8Delta4 => 8 + 32,
            Encoding::Base4Delta1 => 4 + 16,
            Encoding::Base4Delta2 => 4 + 32,
            Encoding::Base2Delta1 => 2 + 32,
            Encoding::Uncompressed => LINE_BYTES,
        }
    }

    /// All base+delta candidate formats, cheapest payload first.
    fn base_delta_candidates() -> [(Encoding, usize, usize); 6] {
        [
            (Encoding::Base8Delta1, 8, 1),
            (Encoding::Base2Delta1, 2, 1),
            (Encoding::Base4Delta1, 4, 1),
            (Encoding::Base8Delta2, 8, 2),
            (Encoding::Base4Delta2, 4, 2),
            (Encoding::Base8Delta4, 8, 4),
        ]
    }
}

/// A single line after BDI encoding: the chosen format plus its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedLine {
    encoding: Encoding,
    payload: Bytes,
}

impl EncodedLine {
    /// The format this line was stored with.
    pub fn encoding(&self) -> Encoding {
        self.encoding
    }

    /// The stored payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total compressed size in bytes (payload only, matching how the
    /// paper's Table II accounts for table size).
    pub fn compressed_len(&self) -> usize {
        self.encoding.payload_len()
    }
}

fn read_word(line: &[u8], base: usize, idx: usize) -> i64 {
    let mut v: u64 = 0;
    for b in 0..base {
        v |= u64::from(line[idx * base + b]) << (8 * b);
    }
    // Sign-extend so deltas behave for values near the top of the range.
    let shift = 64 - base * 8;
    ((v << shift) as i64) >> shift
}

fn delta_fits(delta: i128, delta_bytes: usize) -> bool {
    let bits = delta_bytes * 8;
    let min = -(1i128 << (bits - 1));
    let max = (1i128 << (bits - 1)) - 1;
    (min..=max).contains(&delta)
}

/// Compresses one 64-byte line, choosing the cheapest applicable format.
///
/// # Panics
///
/// Panics if `line` is not exactly [`LINE_BYTES`] long; lines are a hardware
/// fixed size and a mismatch is a programming error.
///
/// # Example
///
/// ```
/// # use mithra_bdi::{compress, Encoding};
/// let mut line = [7u8; 64]; // repeated byte pattern -> repeated 8-byte word
/// let enc = compress(&line);
/// assert_eq!(enc.encoding(), Encoding::Repeated);
/// ```
pub fn compress(line: &[u8]) -> EncodedLine {
    assert_eq!(
        line.len(),
        LINE_BYTES,
        "BDI lines are exactly {LINE_BYTES} bytes"
    );

    if line.iter().all(|&b| b == 0) {
        return EncodedLine {
            encoding: Encoding::Zeros,
            payload: Bytes::from_static(&[0]),
        };
    }

    if line.chunks_exact(8).all(|c| c == &line[..8]) {
        return EncodedLine {
            encoding: Encoding::Repeated,
            payload: Bytes::copy_from_slice(&line[..8]),
        };
    }

    let mut best: Option<EncodedLine> = None;
    for (encoding, base, delta_bytes) in Encoding::base_delta_candidates() {
        let words = LINE_BYTES / base;
        let base_val = i128::from(read_word(line, base, 0));
        let mut ok = true;
        for i in 1..words {
            let delta = i128::from(read_word(line, base, i)) - base_val;
            if !delta_fits(delta, delta_bytes) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        if best
            .as_ref()
            .is_some_and(|b| b.compressed_len() <= encoding.payload_len())
        {
            continue;
        }
        let mut payload = BytesMut::with_capacity(encoding.payload_len());
        payload.put_slice(&line[..base]);
        for i in 1..words {
            let delta = i128::from(read_word(line, base, i)) - base_val;
            payload.put_slice(&delta.to_le_bytes()[..delta_bytes]);
        }
        best = Some(EncodedLine {
            encoding,
            payload: payload.freeze(),
        });
    }

    best.unwrap_or_else(|| EncodedLine {
        encoding: Encoding::Uncompressed,
        payload: Bytes::copy_from_slice(line),
    })
}

/// Decompresses an encoded line back to its 64 bytes.
///
/// Lossless inverse of [`compress`].
pub fn decompress(encoded: &EncodedLine) -> [u8; LINE_BYTES] {
    let mut out = [0u8; LINE_BYTES];
    match encoded.encoding {
        Encoding::Zeros => {}
        Encoding::Repeated => {
            for chunk in out.chunks_exact_mut(8) {
                chunk.copy_from_slice(&encoded.payload[..8]);
            }
        }
        Encoding::Uncompressed => out.copy_from_slice(&encoded.payload),
        enc => {
            let (base, delta_bytes) = match enc {
                Encoding::Base8Delta1 => (8, 1),
                Encoding::Base8Delta2 => (8, 2),
                Encoding::Base8Delta4 => (8, 4),
                Encoding::Base4Delta1 => (4, 1),
                Encoding::Base4Delta2 => (4, 2),
                Encoding::Base2Delta1 => (2, 1),
                _ => unreachable!("handled above"),
            };
            let words = LINE_BYTES / base;
            out[..base].copy_from_slice(&encoded.payload[..base]);
            let base_val = i128::from(read_word(&out, base, 0));
            for i in 1..words {
                let start = base + (i - 1) * delta_bytes;
                let mut delta: i64 = 0;
                for b in 0..delta_bytes {
                    delta |= i64::from(encoded.payload[start + b]) << (8 * b);
                }
                // Sign-extend the delta.
                let shift = 64 - delta_bytes * 8;
                let delta = i128::from((delta << shift) >> shift);
                let value = (base_val + delta) as u64;
                for b in 0..base {
                    out[i * base + b] = ((value >> (8 * b)) & 0xff) as u8;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(line: &[u8; LINE_BYTES]) -> Encoding {
        let enc = compress(line);
        assert_eq!(&decompress(&enc), line, "round trip failed for {enc:?}");
        enc.encoding()
    }

    #[test]
    fn zeros_line() {
        let enc = compress(&[0u8; 64]);
        assert_eq!(enc.encoding(), Encoding::Zeros);
        assert_eq!(enc.compressed_len(), 1);
        assert_eq!(decompress(&enc), [0u8; 64]);
    }

    #[test]
    fn repeated_line() {
        let mut line = [0u8; 64];
        for chunk in line.chunks_exact_mut(8) {
            chunk.copy_from_slice(&0xDEAD_BEEF_u64.to_le_bytes());
        }
        assert_eq!(round_trip(&line), Encoding::Repeated);
    }

    #[test]
    fn small_deltas_pick_base8_delta1() {
        let mut line = [0u8; 64];
        for (i, chunk) in line.chunks_exact_mut(8).enumerate() {
            chunk.copy_from_slice(&(1000u64 + i as u64).to_le_bytes());
        }
        let enc = compress(&line);
        assert_eq!(enc.encoding(), Encoding::Base8Delta1);
        assert_eq!(decompress(&enc), line);
    }

    #[test]
    fn negative_deltas_round_trip() {
        let mut line = [0u8; 64];
        for (i, chunk) in line.chunks_exact_mut(8).enumerate() {
            let v = 5000i64 - 3 * i as i64;
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        let enc = compress(&line);
        assert_ne!(enc.encoding(), Encoding::Uncompressed);
        assert_eq!(decompress(&enc), line);
    }

    #[test]
    fn incompressible_line_stored_verbatim() {
        let mut line = [0u8; 64];
        // A pseudo-random pattern with large word-to-word distances.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for chunk in line.chunks_exact_mut(8) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        assert_eq!(round_trip(&line), Encoding::Uncompressed);
    }

    #[test]
    fn sparse_bitmap_lines_compress_well() {
        // A classifier table line with a single set bit: all words are 0
        // except one — fits base8-delta1 (base 0, one small delta) or better.
        // The set bit lands high inside its 8-byte word, so the best fit is
        // a 4-byte base with 2-byte deltas (36 bytes) — still a win.
        let mut line = [0u8; 64];
        line[37] = 0x01;
        let enc = compress(&line);
        assert!(enc.compressed_len() <= 36, "got {}", enc.compressed_len());
        assert_eq!(decompress(&enc), line);
    }

    #[test]
    fn base2_delta1_applies_to_16bit_ramps() {
        let mut line = [0u8; 64];
        for (i, chunk) in line.chunks_exact_mut(2).enumerate() {
            let v = 300u16 + i as u16;
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        let enc = compress(&line);
        assert_ne!(enc.encoding(), Encoding::Uncompressed);
        assert_eq!(decompress(&enc), line);
        assert!(enc.compressed_len() <= 34);
    }

    #[test]
    fn payload_len_is_honest() {
        for line in [[0u8; 64], [0xFFu8; 64]] {
            let enc = compress(&line);
            assert_eq!(enc.compressed_len(), enc.encoding().payload_len());
        }
    }

    #[test]
    #[should_panic(expected = "BDI lines are exactly 64 bytes")]
    fn wrong_length_panics() {
        let _ = compress(&[0u8; 32]);
    }
}
