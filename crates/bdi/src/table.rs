//! Whole-table compression: the form in which MITHRA tables ship in the
//! program binary (paper §IV-C1: "we compress the content of these tables
//! using the Base-Delta-Immediate compression algorithm and encode the
//! compressed values in the binary").

use crate::encode::{compress, decompress, EncodedLine, LINE_BYTES};

/// A bit-table compressed line-by-line with BDI.
///
/// The uncompressed content is padded with zeros to a whole number of
/// 64-byte lines (zero padding costs one byte per padded line, matching how
/// hardware would round a table up to line granularity).
///
/// # Example
///
/// ```
/// use mithra_bdi::CompressedTable;
///
/// let table = vec![0u8; 4096]; // a freshly initialized 4 KB classifier
/// let compressed = CompressedTable::new(&table);
/// assert!(compressed.stats().compressed_bytes < 100);
/// assert_eq!(compressed.decompress(), table);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedTable {
    lines: Vec<EncodedLine>,
    original_len: usize,
}

/// Size accounting for a compressed table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Bytes before compression (line-padded).
    pub uncompressed_bytes: usize,
    /// Bytes after compression (sum of per-line payloads).
    pub compressed_bytes: usize,
    /// Number of 64-byte lines.
    pub lines: usize,
}

impl CompressionStats {
    /// Compression ratio, `uncompressed / compressed` (≥ 1 for compressible
    /// content, < 1 never — BDI falls back to verbatim storage).
    pub fn ratio(&self) -> f64 {
        self.uncompressed_bytes as f64 / self.compressed_bytes as f64
    }
}

impl CompressedTable {
    /// Compresses `content` line-by-line.
    pub fn new(content: &[u8]) -> Self {
        let mut lines = Vec::with_capacity(content.len().div_ceil(LINE_BYTES));
        for chunk in content.chunks(LINE_BYTES) {
            if chunk.len() == LINE_BYTES {
                lines.push(compress(chunk));
            } else {
                let mut padded = [0u8; LINE_BYTES];
                padded[..chunk.len()].copy_from_slice(chunk);
                lines.push(compress(&padded));
            }
        }
        Self {
            lines,
            original_len: content.len(),
        }
    }

    /// Size accounting for this table.
    pub fn stats(&self) -> CompressionStats {
        CompressionStats {
            uncompressed_bytes: self.lines.len() * LINE_BYTES,
            compressed_bytes: self.lines.iter().map(EncodedLine::compressed_len).sum(),
            lines: self.lines.len(),
        }
    }

    /// Recovers the original table content (without line padding).
    pub fn decompress(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.lines.len() * LINE_BYTES);
        for line in &self.lines {
            out.extend_from_slice(&decompress(line));
        }
        out.truncate(self.original_len);
        out
    }

    /// Iterates over the encoded lines (e.g. to model per-line
    /// decompression latency).
    pub fn iter(&self) -> std::slice::Iter<'_, EncodedLine> {
        self.lines.iter()
    }

    /// Number of encoded lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the table holds no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

impl<'a> IntoIterator for &'a CompressedTable {
    type Item = &'a EncodedLine;
    type IntoIter = std::slice::Iter<'a, EncodedLine>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_table_compresses_16x_or_better() {
        // The paper's Table II: blackscholes/fft/inversek2j/jmeint achieve
        // 16x reduction on their mostly-zero 4 KB tables.
        let table = vec![0u8; 4096];
        let c = CompressedTable::new(&table);
        assert!(c.stats().ratio() >= 16.0);
    }

    #[test]
    fn sparse_table_round_trips() {
        let mut table = vec![0u8; 4096];
        table[100] = 1;
        table[2049] = 1;
        table[4000] = 1;
        let c = CompressedTable::new(&table);
        assert_eq!(c.decompress(), table);
        assert!(c.stats().ratio() > 4.0);
    }

    #[test]
    fn dense_random_table_does_not_shrink_much() {
        let mut table = vec![0u8; 1024];
        let mut state = 123456789u64;
        for b in table.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (state >> 33) as u8;
        }
        let c = CompressedTable::new(&table);
        assert_eq!(c.decompress(), table);
        assert!(c.stats().ratio() < 2.0);
    }

    #[test]
    fn non_line_multiple_content_is_padded_and_recovered() {
        let table = vec![3u8; 100];
        let c = CompressedTable::new(&table);
        assert_eq!(c.len(), 2);
        assert_eq!(c.decompress(), table);
    }

    #[test]
    fn empty_table() {
        let c = CompressedTable::new(&[]);
        assert!(c.is_empty());
        assert_eq!(c.decompress(), Vec::<u8>::new());
        assert_eq!(c.stats().compressed_bytes, 0);
    }

    #[test]
    fn stats_lines_match_iteration() {
        let c = CompressedTable::new(&vec![0u8; 640]);
        assert_eq!(c.stats().lines, c.iter().count());
        assert_eq!(c.stats().lines, 10);
    }
}
