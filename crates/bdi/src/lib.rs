//! Base-Delta-Immediate (BDI) compression.
//!
//! MITHRA's table-based classifier is mostly zeros (only the small fraction
//! of accelerator inputs that cause large errors set entries to `1`), so the
//! paper compresses the trained tables with BDI — a low-latency cache-line
//! compression scheme (Pekhimenko et al., PACT 2012) — before encoding them
//! into the program binary (paper §IV-C1, §V-B3, Table II).
//!
//! BDI operates on 64-byte lines. Each line is encoded with the cheapest of
//! a fixed menu of formats: all-zeros, a repeated 8-byte value, or a *base +
//! deltas* layout where the line is viewed as an array of `base`-byte words
//! and each word is stored as a small signed delta from the first word. A
//! line that fits none of the formats is stored verbatim.
//!
//! # Example
//!
//! ```
//! use mithra_bdi::{compress, decompress};
//!
//! let line = [0u8; 64]; // an all-zero line: 1 byte + tag after compression
//! let encoded = compress(&line);
//! assert!(encoded.compressed_len() < 64);
//! assert_eq!(decompress(&encoded), line);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod encode;
mod table;

pub use encode::{compress, decompress, EncodedLine, Encoding, LINE_BYTES};
pub use table::{CompressedTable, CompressionStats};
