//! Property-based tests for the statistical kernels.

use mithra_stats::beta::Beta;
use mithra_stats::clopper_pearson::{interval, lower_bound, upper_bound, Confidence};
use mithra_stats::descriptive::{geomean, mean, EmpiricalCdf};
use mithra_stats::special::betainc;
use proptest::prelude::*;

/// `P[X <= k]` for `X ~ Binomial(n, p)` by direct summation with exact
/// binomial coefficients — an independent oracle for coverage checks
/// (exact in f64 for the `n <= 30` range it is used on).
fn binomial_cdf_bruteforce(k: u64, n: u64, p: f64) -> f64 {
    let mut acc = 0.0f64;
    let mut choose = 1.0f64; // C(n, 0)
    for i in 0..=k {
        if i > 0 {
            choose = choose * (n - i + 1) as f64 / i as f64;
        }
        acc += choose * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32);
    }
    acc
}

proptest! {
    #[test]
    fn betainc_in_unit_interval(x in 0.0f64..=1.0, a in 0.01f64..50.0, b in 0.01f64..50.0) {
        let v = betainc(x, a, b).unwrap();
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn betainc_monotone_in_x(x1 in 0.0f64..1.0, dx in 0.0f64..1.0, a in 0.1f64..30.0, b in 0.1f64..30.0) {
        let x2 = (x1 + dx).min(1.0);
        let v1 = betainc(x1, a, b).unwrap();
        let v2 = betainc(x2, a, b).unwrap();
        prop_assert!(v2 >= v1 - 1e-12);
    }

    #[test]
    fn betainc_complement_symmetry(x in 0.001f64..0.999, a in 0.1f64..30.0, b in 0.1f64..30.0) {
        let lhs = betainc(x, a, b).unwrap();
        let rhs = 1.0 - betainc(1.0 - x, b, a).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    // Shapes below 0.5 with extreme p push the quantile into the region
    // where a single f64 ulp in x moves the CDF by more than any useful
    // tolerance (the density is singular at the boundary), so the test
    // domain is restricted to the regime the Clopper-Pearson code uses:
    // shape parameters >= 0.5 (they are success/failure counts there).
    #[test]
    fn beta_quantile_round_trips(p in 0.001f64..0.999, a in 0.5f64..40.0, b in 0.5f64..40.0) {
        let d = Beta::new(a, b).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x).unwrap() - p).abs() < 5e-6);
    }

    #[test]
    fn clopper_pearson_brackets_point_estimate(k in 0u64..200, extra in 1u64..200) {
        let n = k + extra;
        let c = Confidence::new(0.95).unwrap();
        let lo = lower_bound(k, n, c).unwrap();
        let hi = upper_bound(k, n, c).unwrap();
        let p_hat = k as f64 / n as f64;
        prop_assert!(lo <= p_hat + 1e-12);
        prop_assert!(hi >= p_hat - 1e-12);
        prop_assert!(lo <= hi);
    }

    #[test]
    fn two_sided_tighter_than_nothing(k in 0u64..100, extra in 0u64..100) {
        let n = k + extra + 1;
        let k = k.min(n);
        let iv = interval(k, n, Confidence::new(0.9).unwrap()).unwrap();
        prop_assert!(iv.lower >= 0.0 && iv.upper <= 1.0);
        prop_assert!(iv.lower <= iv.upper);
    }

    #[test]
    fn lower_bound_monotone_in_confidence(k in 1u64..100, extra in 0u64..100, c1 in 0.5f64..0.98) {
        let n = k + extra;
        let c2 = c1 + 0.01;
        let loose = lower_bound(k, n, Confidence::new(c1).unwrap()).unwrap();
        let tight = lower_bound(k, n, Confidence::new(c2).unwrap()).unwrap();
        prop_assert!(tight <= loose + 1e-12);
    }

    #[test]
    fn upper_bound_monotone_in_successes(k in 0u64..150, extra in 1u64..150, c in 0.55f64..0.99) {
        // One more observed success can never lower the upper bound.
        let n = k + extra; // k + 1 <= n
        let conf = Confidence::new(c).unwrap();
        let at_k = upper_bound(k, n, conf).unwrap();
        let at_k1 = upper_bound(k + 1, n, conf).unwrap();
        prop_assert!(at_k1 >= at_k - 1e-12, "U({},{n})={at_k1} < U({k},{n})={at_k}", k + 1);
    }

    #[test]
    fn upper_bound_nonincreasing_in_n_at_fixed_ratio(k in 1u64..40, extra in 1u64..40, m in 2u64..8, c in 0.55f64..0.99) {
        // More evidence at the same observed rate tightens the interval:
        // scaling (k, n) -> (mk, mn) cannot raise the upper bound.
        let n = k + extra;
        let conf = Confidence::new(c).unwrap();
        let small = upper_bound(k, n, conf).unwrap();
        let large = upper_bound(m * k, m * n, conf).unwrap();
        prop_assert!(large <= small + 1e-12, "U({},{})={large} > U({k},{n})={small}", m * k, m * n);
    }

    #[test]
    fn small_n_coverage_matches_bruteforce_enumeration(n in 1u64..=30, k_raw in 0u64..=30, c in 0.55f64..0.99) {
        // The defining coverage property of the one-sided exact bounds,
        // checked against an independent brute-force binomial-CDF
        // enumeration: at the upper bound U(k, n), P[X <= k] = alpha
        // (for k < n), and at the lower bound L(k, n), P[X >= k] = alpha
        // (for k > 0). The degenerate counts give the exact endpoints.
        let k = k_raw % (n + 1);
        let conf = Confidence::new(c).unwrap();
        let alpha = conf.alpha();
        let hi = upper_bound(k, n, conf).unwrap();
        if k == n {
            prop_assert_eq!(hi, 1.0);
        } else {
            let tail = binomial_cdf_bruteforce(k, n, hi);
            prop_assert!((tail - alpha).abs() < 1e-8, "P[X<=k]={tail} at U({k},{n})={hi}, alpha={alpha}");
        }
        let lo = lower_bound(k, n, conf).unwrap();
        if k == 0 {
            prop_assert_eq!(lo, 0.0);
        } else {
            let tail = 1.0 - binomial_cdf_bruteforce(k - 1, n, lo);
            prop_assert!((tail - alpha).abs() < 1e-8, "P[X>=k]={tail} at L({k},{n})={lo}, alpha={alpha}");
        }
    }

    #[test]
    fn geomean_bounded_by_extremes(values in prop::collection::vec(0.01f64..100.0, 1..50)) {
        let g = geomean(&values).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn geomean_le_mean(values in prop::collection::vec(0.01f64..100.0, 1..50)) {
        prop_assert!(geomean(&values).unwrap() <= mean(&values).unwrap() + 1e-9);
    }

    #[test]
    fn empirical_cdf_is_a_cdf(sample in prop::collection::vec(-1e3f64..1e3, 1..200), probe in -2e3f64..2e3) {
        let cdf = EmpiricalCdf::new(sample.clone()).unwrap();
        let f = cdf.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        // Evaluating at the max always yields 1.
        let max = sample.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(cdf.eval(max), 1.0);
    }
}
