//! Regression tests for Beta/F quantile edge cases.
//!
//! The Clopper–Pearson code leans on these quantiles at its extremes —
//! `k = 0`, `k = n`, and validation sets large enough that a shape
//! parameter reaches into the hundreds of thousands. The contract pinned
//! here: `p = 0` and `p = 1` return the exact support endpoints, the
//! degenerate-count bounds are exact, and no valid input ever produces a
//! NaN or a failed bisection.

use mithra_stats::beta::Beta;
use mithra_stats::clopper_pearson::{interval, lower_bound, upper_bound, Confidence};
use mithra_stats::fdist::FDistribution;

const SHAPES: &[f64] = &[1e-3, 0.5, 1.0, 2.0, 37.0, 1_500.0, 250_000.0, 1e6];
const PROBS: &[f64] = &[1e-15, 1e-9, 1e-4, 0.05, 0.5, 0.95, 1.0 - 1e-9, 1.0 - 1e-15];

#[test]
fn beta_quantile_exact_endpoints() {
    for &a in SHAPES {
        for &b in SHAPES {
            let d = Beta::new(a, b).unwrap();
            assert_eq!(d.quantile(0.0).unwrap(), 0.0, "Beta({a},{b}) at p=0");
            assert_eq!(d.quantile(1.0).unwrap(), 1.0, "Beta({a},{b}) at p=1");
        }
    }
}

#[test]
fn beta_quantile_never_nan_or_nonconvergent() {
    for &a in SHAPES {
        for &b in SHAPES {
            let d = Beta::new(a, b).unwrap();
            for &p in PROBS {
                let x = d
                    .quantile(p)
                    .unwrap_or_else(|e| panic!("Beta({a},{b}).quantile({p}): {e}"));
                assert!(
                    x.is_finite() && (0.0..=1.0).contains(&x),
                    "Beta({a},{b}).quantile({p}) = {x}"
                );
            }
        }
    }
}

#[test]
fn beta_quantile_closed_form_when_one_shape_is_one() {
    // Beta(a, 1) has CDF x^a and Beta(1, b) has CDF 1 − (1−x)^b; the
    // quantile must match the closed form to full precision, because the
    // k = n (and symmetric k = 0) Clopper–Pearson bounds route through
    // these shapes with `a` as large as the trial count.
    for &a in &[2.0, 60.0, 1_500.0, 1e6] {
        for &p in &[1e-12, 0.05, 0.5, 0.95, 1.0 - 1e-12] {
            let direct = Beta::new(a, 1.0).unwrap().quantile(p).unwrap();
            assert_eq!(direct, p.powf(1.0 / a), "Beta({a},1) at p={p}");
            let mirrored = Beta::new(1.0, a).unwrap().quantile(p).unwrap();
            assert_eq!(
                mirrored,
                1.0 - (1.0 - p).powf(1.0 / a),
                "Beta(1,{a}) at p={p}"
            );
        }
    }
    // Beta(1, 1) is the uniform distribution: the quantile is the identity,
    // exactly.
    let uniform = Beta::new(1.0, 1.0).unwrap();
    for &p in PROBS {
        assert_eq!(uniform.quantile(p).unwrap(), p);
    }
}

#[test]
fn clopper_pearson_degenerate_counts_are_exact() {
    let beta = Confidence::new(0.95).unwrap();
    for &n in &[1u64, 10, 250, 1_500, 1_000_000] {
        assert_eq!(lower_bound(0, n, beta).unwrap(), 0.0, "k=0, n={n}");
        assert_eq!(upper_bound(n, n, beta).unwrap(), 1.0, "k=n={n}");
        let iv0 = interval(0, n, beta).unwrap();
        assert_eq!(iv0.lower, 0.0, "two-sided lower at k=0, n={n}");
        let ivn = interval(n, n, beta).unwrap();
        assert_eq!(ivn.upper, 1.0, "two-sided upper at k=n={n}");
    }
}

#[test]
fn clopper_pearson_extreme_counts_match_closed_forms() {
    // k = n: lower bound is alpha^(1/n) ("rule of three" family);
    // k = 0: upper bound is 1 − alpha^(1/n). Both must hold without
    // convergence failures even for very large n.
    let beta = Confidence::new(0.95).unwrap();
    for &n in &[1u64, 60, 1_500, 1_000_000] {
        let lo = lower_bound(n, n, beta).unwrap();
        let expect = 0.05f64.powf(1.0 / n as f64);
        assert!((lo - expect).abs() < 1e-12, "n={n}: {lo} vs {expect}");
        let hi = upper_bound(0, n, beta).unwrap();
        let expect = 1.0 - 0.05f64.powf(1.0 / n as f64);
        assert!((hi - expect).abs() < 1e-12, "n={n}: {hi} vs {expect}");
    }
}

#[test]
fn f_quantile_exact_endpoints() {
    for &(d1, d2) in &[(1.0, 1.0), (2.0, 10.0), (500.0, 3_000.0)] {
        let f = FDistribution::new(d1, d2).unwrap();
        assert_eq!(f.quantile(0.0).unwrap(), 0.0, "F({d1},{d2}) at p=0");
        // The F support is unbounded: the exact p = 1 endpoint is +inf,
        // not an error and never NaN.
        assert_eq!(
            f.quantile(1.0).unwrap(),
            f64::INFINITY,
            "F({d1},{d2}) at p=1"
        );
    }
}

#[test]
fn f_quantile_never_nan_near_one() {
    let f = FDistribution::new(8.0, 12.0).unwrap();
    for &p in &[0.999, 1.0 - 1e-9, 1.0 - 1e-12] {
        let x = f.quantile(p).unwrap();
        assert!(x.is_finite() && x > 0.0, "F quantile at p={p} = {x}");
    }
    assert!(f.quantile(1.0 + 1e-9).is_err());
    assert!(f.quantile(f64::NAN).is_err());
}
