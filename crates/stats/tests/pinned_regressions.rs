//! Named regression pins promoted from recorded proptest failures.
//!
//! Proptest's `.proptest-regressions` sidecar replays shrunken failures
//! silently inside the property run; promoting them to named tests
//! keeps the exact failing point under version control with an
//! explanation, survives edits to the property's input strategy, and
//! shows up by name when it breaks again.

use mithra_stats::beta::Beta;

/// The shrunken point from `beta_quantile_round_trips`'s recorded
/// regression (`proptest_stats.proptest-regressions`):
/// `p = 0.9955…, a = 10.43…, b = 0.2`.
///
/// `b = 0.2` sits *outside* the property's current domain — shapes
/// below 0.5 were carved out because the Beta density is singular at
/// the upper boundary there, where one f64 ulp in `x` moves the CDF by
/// more than any useful tolerance. The Clopper-Pearson call sites never
/// produce such shapes (their parameters are success/failure counts),
/// but the quantile must still behave at the point that once failed:
/// stay finite, stay inside the open unit interval, and round-trip
/// through the CDF within the same 5e-6 the in-domain property demands
/// (measured error today: ~3.5e-7, so the pin has ~14x headroom).
#[test]
fn beta_quantile_survives_singular_shape_regression_point() {
    let p = 0.9955442920023898_f64;
    let a = 10.433428103414583_f64;
    let b = 0.2_f64;

    let d = Beta::new(a, b).expect("shapes are positive");
    let x = d.quantile(p).expect("quantile must not error");
    assert!(x.is_finite(), "quantile diverged: {x}");
    assert!((0.0..1.0).contains(&x), "quantile escaped [0, 1): {x}");
    // The point lives deep in the singular regime: the mass piles up
    // against 1 (b < 1), so the quantile is within ~1e-13 of it.
    assert!(x > 0.9999, "quantile left the singular boundary: {x}");

    let back = d.cdf(x).expect("cdf must not error");
    let err = (back - p).abs();
    assert!(
        err < 5e-6,
        "round trip degraded at the regression point: |cdf(quantile(p)) - p| = {err:.3e}"
    );
}
