//! The F distribution, via its relationship to the Beta distribution.
//!
//! The paper's Equation (3) states the Clopper–Pearson bound in terms of
//! F-critical values. The Beta-quantile form used in
//! [`crate::clopper_pearson`] is mathematically identical; this module
//! exists so the Equation (3) form can be evaluated and cross-checked
//! directly, and to document the equivalence in executable form.

use crate::beta::Beta;
use crate::{Result, StatsError};

/// An F(d1, d2) distribution with positive degrees of freedom.
///
/// If `X ~ F(d1, d2)` then `Y = (d1 X) / (d1 X + d2) ~ Beta(d1/2, d2/2)`,
/// which is the identity used for both the CDF and the quantile.
///
/// # Example
///
/// ```
/// # use mithra_stats::fdist::FDistribution;
/// let f = FDistribution::new(4.0, 10.0)?;
/// let q = f.quantile(0.95)?;
/// assert!((f.cdf(q)? - 0.95).abs() < 1e-9);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FDistribution {
    d1: f64,
    d2: f64,
}

impl FDistribution {
    /// Creates an F distribution with degrees of freedom `d1, d2 > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if either degree of freedom
    /// is not positive and finite.
    pub fn new(d1: f64, d2: f64) -> Result<Self> {
        if !d1.is_finite() || d1 <= 0.0 {
            return Err(StatsError::InvalidArgument {
                parameter: "d1",
                constraint: "finite and > 0",
                value: d1,
            });
        }
        if !d2.is_finite() || d2 <= 0.0 {
            return Err(StatsError::InvalidArgument {
                parameter: "d2",
                constraint: "finite and > 0",
                value: d2,
            });
        }
        Ok(Self { d1, d2 })
    }

    /// Numerator degrees of freedom.
    pub fn d1(&self) -> f64 {
        self.d1
    }

    /// Denominator degrees of freedom.
    pub fn d2(&self) -> f64 {
        self.d2
    }

    /// Cumulative distribution function at `x >= 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `x` is negative or not
    /// finite.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        if !x.is_finite() || x < 0.0 {
            return Err(StatsError::InvalidArgument {
                parameter: "x",
                constraint: "finite and >= 0",
                value: x,
            });
        }
        let y = (self.d1 * x) / (self.d1 * x + self.d2);
        Beta::new(self.d1 / 2.0, self.d2 / 2.0)?.cdf(y)
    }

    /// Quantile function (the F-critical value) at probability `p ∈ [0, 1]`.
    ///
    /// The endpoints are exact: `p = 0` yields 0 and `p = 1` yields
    /// `f64::INFINITY` — the F distribution has unbounded support, so the
    /// upper endpoint of its support is the only faithful answer (never a
    /// NaN, never an error for an in-range `p`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] for `p` outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidArgument {
                parameter: "p",
                constraint: "0 <= p <= 1",
                value: p,
            });
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        let y = Beta::new(self.d1 / 2.0, self.d2 / 2.0)?.quantile(p)?;
        // Invert y = d1 x / (d1 x + d2).
        Ok(self.d2 * y / (self.d1 * (1.0 - y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_quantile_round_trip() {
        for &(d1, d2) in &[(1.0, 1.0), (5.0, 2.0), (10.0, 20.0), (22.0, 180.0)] {
            let f = FDistribution::new(d1, d2).unwrap();
            for i in 1..10 {
                let p = f64::from(i) / 10.0;
                let x = f.quantile(p).unwrap();
                assert!(
                    (f.cdf(x).unwrap() - p).abs() < 1e-8,
                    "round trip failed for F({d1},{d2}) at p={p}"
                );
            }
        }
    }

    #[test]
    fn known_critical_value() {
        // F(0.95; 5, 10) ≈ 3.3258 (standard tables).
        let f = FDistribution::new(5.0, 10.0).unwrap();
        let q = f.quantile(0.95).unwrap();
        assert!((q - 3.3258).abs() < 5e-3, "got {q}");
    }

    #[test]
    fn median_of_f_1_1() {
        // F(1,1) median is 1.0.
        let f = FDistribution::new(1.0, 1.0).unwrap();
        assert!((f.quantile(0.5).unwrap() - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(FDistribution::new(0.0, 1.0).is_err());
        assert!(FDistribution::new(1.0, -1.0).is_err());
        let f = FDistribution::new(2.0, 2.0).unwrap();
        assert!(f.cdf(-1.0).is_err());
        assert!(f.quantile(1.5).is_err());
        assert!(f.quantile(-0.1).is_err());
    }
}
