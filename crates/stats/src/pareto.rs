//! Nondominated-set (Pareto frontier) extraction for design-space sweeps.
//!
//! The explorer scores every certified pool composition on several
//! maximization objectives (speedup, energy reduction, certified success
//! rate) and keeps only the nondominated points. Extraction is a pure
//! sequential fold over the candidate list, so the emitted set is a
//! deterministic function of the input order — the deterministic
//! tie-breaking rule below is what keeps committed frontiers byte-stable
//! across reruns and thread counts.
//!
//! Conventions:
//!
//! * every objective is **maximized**; negate an objective to minimize it;
//! * a point with any non-finite coordinate is excluded outright (it can
//!   neither dominate nor join the frontier);
//! * of several points equal on every objective, only the **first** (the
//!   lowest input index) survives — duplicates never inflate a frontier.

/// Whether `a` dominates `b`: at least as large on every objective and
/// strictly larger on at least one. Points of mismatched dimensionality
/// never dominate each other.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    if a.len() != b.len() || a.is_empty() {
        return false;
    }
    let mut strictly = false;
    for (x, y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the nondominated points of `points`, ascending.
///
/// A point is kept when no other point dominates it, no earlier point
/// equals it on every objective, and all its coordinates are finite.
pub fn nondominated_indices(points: &[Vec<f64>]) -> Vec<usize> {
    let mut kept = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        if p.iter().any(|v| !v.is_finite()) {
            continue;
        }
        for (j, q) in points.iter().enumerate() {
            if i == j || q.iter().any(|v| !v.is_finite()) {
                continue;
            }
            if dominates(q, p) {
                continue 'outer;
            }
            // Exact duplicate: the lowest index wins the tie.
            if j < i && q == p {
                continue 'outer;
            }
        }
        kept.push(i);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_is_strict_on_at_least_one_axis() {
        assert!(dominates(&[2.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[2.0, 0.5], &[1.0, 1.0]));
        assert!(!dominates(&[1.0], &[1.0, 1.0]));
        assert!(!dominates(&[], &[]));
    }

    #[test]
    fn simple_frontier() {
        let pts = vec![
            vec![1.0, 4.0], // kept
            vec![2.0, 3.0], // kept
            vec![1.5, 2.0], // dominated by [2,3]
            vec![3.0, 1.0], // kept
            vec![0.5, 0.5], // dominated
        ];
        assert_eq!(nondominated_indices(&pts), vec![0, 1, 3]);
    }

    #[test]
    fn duplicates_keep_lowest_index() {
        let pts = vec![vec![1.0, 1.0], vec![2.0, 2.0], vec![2.0, 2.0]];
        assert_eq!(nondominated_indices(&pts), vec![1]);
    }

    #[test]
    fn non_finite_points_are_excluded() {
        let pts = vec![
            vec![f64::NAN, 9.0],
            vec![1.0, f64::INFINITY],
            vec![0.0, 0.0],
        ];
        assert_eq!(nondominated_indices(&pts), vec![2]);
    }

    #[test]
    fn empty_input_yields_empty_frontier() {
        assert_eq!(nondominated_indices(&[]), Vec::<usize>::new());
    }

    fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
        prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 0..24)
    }

    proptest! {
        /// No kept point is dominated by any input point.
        #[test]
        fn frontier_contains_no_dominated_point(pts in arb_points()) {
            let kept = nondominated_indices(&pts);
            for &i in &kept {
                for q in &pts {
                    prop_assert!(!dominates(q, &pts[i]));
                }
            }
        }

        /// Every excluded finite point is dominated by (or duplicates) a
        /// kept point.
        #[test]
        fn every_dominated_candidate_is_excluded(pts in arb_points()) {
            let kept = nondominated_indices(&pts);
            for (i, p) in pts.iter().enumerate() {
                if kept.contains(&i) {
                    continue;
                }
                let explained = kept.iter().any(|&k| {
                    dominates(&pts[k], p) || (pts[k] == *p && k < i)
                });
                prop_assert!(explained, "point {i} excluded without cause");
            }
        }

        /// Extraction is a pure function: rerunning yields the same set.
        #[test]
        fn extraction_is_deterministic(pts in arb_points()) {
            prop_assert_eq!(nondominated_indices(&pts), nondominated_indices(&pts));
        }
    }
}
