//! Special functions: log-gamma and the regularized incomplete beta.
//!
//! These are the numerical primitives behind exact binomial confidence
//! intervals. `ln_gamma` uses the Lanczos approximation; `betainc` uses the
//! Lentz continued-fraction evaluation with the standard symmetry switch for
//! numerical stability.

use crate::{Result, StatsError};

/// Coefficients for the Lanczos approximation (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Accurate to roughly 1e-13 relative error over the domain used by the
/// binomial interval computations.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] if `x <= 0` or is not finite.
///
/// # Example
///
/// ```
/// # use mithra_stats::special::ln_gamma;
/// // Γ(5) = 24
/// let v = ln_gamma(5.0)?;
/// assert!((v - 24f64.ln()).abs() < 1e-12);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
pub fn ln_gamma(x: f64) -> Result<f64> {
    if !x.is_finite() || x <= 0.0 {
        return Err(StatsError::InvalidArgument {
            parameter: "x",
            constraint: "finite and > 0",
            value: x,
        });
    }
    Ok(ln_gamma_unchecked(x))
}

/// `ln Γ(x)` without domain validation; callers guarantee `x > 0`.
fn ln_gamma_unchecked(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma_unchecked(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the complete beta function, `ln B(a, b)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] if `a` or `b` is not positive and
/// finite.
pub fn ln_beta(a: f64, b: f64) -> Result<f64> {
    Ok(ln_gamma(a)? + ln_gamma(b)? - ln_gamma(a + b)?)
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0` and
/// `0 <= x <= 1`.
///
/// This equals the CDF of a Beta(a, b) distribution evaluated at `x`, which
/// is in turn the bridge between binomial tail probabilities and the exact
/// Clopper–Pearson interval:
/// `P[X <= k] = I_{1-p}(n-k, k+1)` for `X ~ Binomial(n, p)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] for out-of-domain arguments, and
/// [`StatsError::NoConvergence`] if the continued fraction fails to settle
/// (practically unreachable for sane inputs).
///
/// # Example
///
/// ```
/// # use mithra_stats::special::betainc;
/// // I_x(1, 1) is the identity: Beta(1,1) is uniform.
/// assert!((betainc(0.3, 1.0, 1.0)? - 0.3).abs() < 1e-14);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
pub fn betainc(x: f64, a: f64, b: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&x) || !x.is_finite() {
        return Err(StatsError::InvalidArgument {
            parameter: "x",
            constraint: "0 <= x <= 1",
            value: x,
        });
    }
    if !a.is_finite() || a <= 0.0 {
        return Err(StatsError::InvalidArgument {
            parameter: "a",
            constraint: "finite and > 0",
            value: a,
        });
    }
    if !b.is_finite() || b <= 0.0 {
        return Err(StatsError::InvalidArgument {
            parameter: "b",
            constraint: "finite and > 0",
            value: b,
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }

    // Prefactor: x^a (1-x)^b / (a B(a,b)).
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)?;

    // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) so the continued fraction
    // converges quickly.
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok((ln_front.exp() * beta_cf(x, a, b)?) / a)
    } else {
        let ln_front_sym = b * (1.0 - x).ln() + a * x.ln() - ln_beta(a, b)?;
        Ok(1.0 - (ln_front_sym.exp() * beta_cf(1.0 - x, b, a)?) / b)
    }
}

/// Continued-fraction evaluation for the incomplete beta (Lentz's method).
fn beta_cf(x: f64, a: f64, b: f64) -> Result<f64> {
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    // The fraction settles in a few dozen terms for small shapes but needs
    // on the order of sqrt(max(a, b)) terms when x sits near the symmetry
    // switch point a/(a+b) with large shapes (e.g. a confidence bound over
    // hundreds of thousands of trials), so the budget scales with the
    // shapes instead of failing there.
    let max_iter: u32 = 300 + (4.0 * a.max(b).sqrt()) as u32;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;

    for m in 1..=max_iter {
        let m = f64::from(m);
        let m2 = 2.0 * m;

        // Even step of the recurrence.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;

        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;

        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence {
        kernel: "betainc continued fraction",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integer n.
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            assert_close(ln_gamma(f64::from(n)).unwrap(), fact.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert_close(
            ln_gamma(0.5).unwrap(),
            std::f64::consts::PI.sqrt().ln(),
            1e-12,
        );
        // Γ(3/2) = sqrt(pi)/2
        assert_close(
            ln_gamma(1.5).unwrap(),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_rejects_nonpositive() {
        assert!(ln_gamma(0.0).is_err());
        assert!(ln_gamma(-1.0).is_err());
        assert!(ln_gamma(f64::NAN).is_err());
    }

    #[test]
    fn betainc_uniform_is_identity() {
        for i in 0..=10 {
            let x = f64::from(i) / 10.0;
            assert_close(betainc(x, 1.0, 1.0).unwrap(), x, 1e-13);
        }
    }

    #[test]
    fn betainc_boundaries() {
        assert_eq!(betainc(0.0, 3.0, 4.0).unwrap(), 0.0);
        assert_eq!(betainc(1.0, 3.0, 4.0).unwrap(), 1.0);
    }

    #[test]
    fn betainc_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        for &(x, a, b) in &[(0.3, 2.0, 5.0), (0.7, 4.5, 1.5), (0.5, 10.0, 10.0)] {
            let lhs = betainc(x, a, b).unwrap();
            let rhs = 1.0 - betainc(1.0 - x, b, a).unwrap();
            assert_close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn betainc_known_values() {
        // Beta(2,2) CDF is 3x^2 - 2x^3.
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let expected = 3.0 * x * x - 2.0 * x * x * x;
            assert_close(betainc(x, 2.0, 2.0).unwrap(), expected, 1e-12);
        }
        // Beta(1,3) CDF is 1 - (1-x)^3.
        for &x in &[0.2, 0.5, 0.8] {
            let expected = 1.0 - (1.0f64 - x).powi(3);
            assert_close(betainc(x, 1.0, 3.0).unwrap(), expected, 1e-12);
        }
    }

    #[test]
    fn betainc_binomial_tail_identity() {
        // P[X <= k] for X ~ Binomial(n, p) equals I_{1-p}(n-k, k+1).
        // Check against direct summation for a small case.
        let (n, k, p) = (12u32, 4u32, 0.35f64);
        let mut direct = 0.0;
        for i in 0..=k {
            let comb = (0..i).fold(1.0f64, |acc, j| acc * f64::from(n - j) / f64::from(j + 1));
            direct += comb * p.powi(i as i32) * (1.0 - p).powi((n - i) as i32);
        }
        let via_beta = betainc(1.0 - p, f64::from(n - k), f64::from(k + 1)).unwrap();
        assert_close(via_beta, direct, 1e-12);
    }

    #[test]
    fn betainc_rejects_bad_domain() {
        assert!(betainc(-0.1, 1.0, 1.0).is_err());
        assert!(betainc(1.1, 1.0, 1.0).is_err());
        assert!(betainc(0.5, 0.0, 1.0).is_err());
        assert!(betainc(0.5, 1.0, -2.0).is_err());
        assert!(betainc(f64::NAN, 1.0, 1.0).is_err());
    }
}
