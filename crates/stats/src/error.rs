use std::error::Error;
use std::fmt;

/// Errors produced by the statistical routines in this crate.
///
/// Every fallible public function in `mithra-stats` returns this type. The
/// variants distinguish domain errors (arguments outside the mathematical
/// domain of the function) from convergence failures in the iterative
/// numerical kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatsError {
    /// An argument was outside the domain of the requested function.
    InvalidArgument {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable description of the constraint that was violated.
        constraint: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// A success count exceeded its trial count.
    SuccessesExceedTrials {
        /// Number of successes supplied.
        successes: u64,
        /// Number of trials supplied.
        trials: u64,
    },
    /// An iterative numerical kernel failed to converge.
    NoConvergence {
        /// Which kernel failed.
        kernel: &'static str,
        /// Number of iterations attempted before giving up.
        iterations: u32,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidArgument {
                parameter,
                constraint,
                value,
            } => write!(
                f,
                "invalid argument `{parameter}` = {value}: expected {constraint}"
            ),
            StatsError::SuccessesExceedTrials { successes, trials } => {
                write!(f, "successes ({successes}) exceed trials ({trials})")
            }
            StatsError::NoConvergence { kernel, iterations } => write!(
                f,
                "{kernel} failed to converge after {iterations} iterations"
            ),
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = StatsError::InvalidArgument {
            parameter: "x",
            constraint: "0 <= x <= 1",
            value: 2.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("invalid argument"));
        assert!(msg.contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }

    #[test]
    fn debug_is_never_empty() {
        let err = StatsError::NoConvergence {
            kernel: "betainc",
            iterations: 100,
        };
        assert!(!format!("{err:?}").is_empty());
    }
}
