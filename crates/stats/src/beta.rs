//! The Beta distribution: CDF and quantile (inverse CDF).
//!
//! The Clopper–Pearson exact interval is most directly expressed through
//! Beta quantiles: with `k` successes in `n` trials, the lower bound at
//! significance `α` is the `α` quantile of `Beta(k, n−k+1)`. This module
//! provides the quantile via a bracketed Newton iteration on the regularized
//! incomplete beta function.

use crate::special::betainc;
use crate::{Result, StatsError};

/// A Beta(a, b) distribution with strictly positive shape parameters.
///
/// # Example
///
/// ```
/// # use mithra_stats::beta::Beta;
/// let d = Beta::new(2.0, 3.0)?;
/// let median = d.quantile(0.5)?;
/// assert!((d.cdf(median)? - 0.5).abs() < 1e-10);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Creates a Beta distribution with shape parameters `a, b > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if either parameter is not
    /// positive and finite.
    pub fn new(a: f64, b: f64) -> Result<Self> {
        if !a.is_finite() || a <= 0.0 {
            return Err(StatsError::InvalidArgument {
                parameter: "a",
                constraint: "finite and > 0",
                value: a,
            });
        }
        if !b.is_finite() || b <= 0.0 {
            return Err(StatsError::InvalidArgument {
                parameter: "b",
                constraint: "finite and > 0",
                value: b,
            });
        }
        Ok(Self { a, b })
    }

    /// First shape parameter.
    pub fn a(&self) -> f64 {
        self.a
    }

    /// Second shape parameter.
    pub fn b(&self) -> f64 {
        self.b
    }

    /// Mean of the distribution, `a / (a + b)`.
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }

    /// Cumulative distribution function at `x ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Propagates domain errors from the incomplete beta evaluation.
    pub fn cdf(&self, x: f64) -> Result<f64> {
        betainc(x, self.a, self.b)
    }

    /// Quantile function (inverse CDF) at probability `p ∈ [0, 1]`.
    ///
    /// `p = 0` and `p = 1` return the exact support endpoints, and shapes
    /// with `a = 1` or `b = 1` use the exact closed form. Otherwise uses
    /// bisection to bracket the root, then Newton steps (the PDF is the
    /// analytic derivative of the CDF) with fallback to bisection whenever a
    /// Newton step leaves the bracket. Converges to ~1e-12 in `x`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] for `p` outside `[0, 1]` and
    /// [`StatsError::NoConvergence`] if iteration stalls (practically
    /// unreachable).
    pub fn quantile(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidArgument {
                parameter: "p",
                constraint: "0 <= p <= 1",
                value: p,
            });
        }
        if p == 0.0 {
            return Ok(0.0);
        }
        if p == 1.0 {
            return Ok(1.0);
        }
        // Closed forms when one shape is 1: Beta(a, 1) has CDF x^a and
        // Beta(1, b) has CDF 1 − (1−x)^b. These are exactly the shapes the
        // Clopper–Pearson bounds use at k = n and k = 0, where `a` (the
        // trial count) can be large enough to make the general iteration
        // ill-conditioned — the closed form is exact at any scale.
        if self.b == 1.0 {
            return Ok(p.powf(1.0 / self.a));
        }
        if self.a == 1.0 {
            return Ok(1.0 - (1.0 - p).powf(1.0 / self.b));
        }

        const MAX_ITER: u32 = 200;
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        // Start from the mean: a cheap, always-in-bracket initial guess.
        let mut x = self.mean().clamp(1e-12, 1.0 - 1e-12);

        for _ in 0..MAX_ITER {
            let f = self.cdf(x)? - p;
            if f.abs() < 1e-14 {
                return Ok(x);
            }
            if f > 0.0 {
                hi = x;
            } else {
                lo = x;
            }

            // Newton step using the analytic PDF.
            let ln_pdf = (self.a - 1.0) * x.ln() + (self.b - 1.0) * (1.0 - x).ln()
                - crate::special::ln_beta(self.a, self.b)?;
            let pdf = ln_pdf.exp();
            let mut next = if pdf > 1e-300 { x - f / pdf } else { f64::NAN };
            if !next.is_finite() || next <= lo || next >= hi {
                next = 0.5 * (lo + hi);
            }
            if (next - x).abs() < 1e-14 {
                return Ok(next);
            }
            x = next;
        }
        // The bracket shrinks monotonically; its midpoint is a fine answer
        // if we somehow exhaust iterations without meeting the tolerance.
        if hi - lo < 1e-9 {
            return Ok(0.5 * (lo + hi));
        }
        Err(StatsError::NoConvergence {
            kernel: "beta quantile",
            iterations: MAX_ITER,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_uniform_is_identity() {
        let d = Beta::new(1.0, 1.0).unwrap();
        for i in 1..10 {
            let p = f64::from(i) / 10.0;
            assert!((d.quantile(p).unwrap() - p).abs() < 1e-10);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &(a, b) in &[(2.0, 5.0), (0.5, 0.5), (10.0, 3.0), (90.0, 11.0)] {
            let d = Beta::new(a, b).unwrap();
            for i in 1..20 {
                let p = f64::from(i) / 20.0;
                let x = d.quantile(p).unwrap();
                assert!(
                    (d.cdf(x).unwrap() - p).abs() < 1e-9,
                    "round trip failed for Beta({a},{b}) at p={p}"
                );
            }
        }
    }

    #[test]
    fn quantile_boundaries() {
        let d = Beta::new(3.0, 2.0).unwrap();
        assert_eq!(d.quantile(0.0).unwrap(), 0.0);
        assert_eq!(d.quantile(1.0).unwrap(), 1.0);
    }

    #[test]
    fn quantile_rejects_bad_probability() {
        let d = Beta::new(1.0, 1.0).unwrap();
        assert!(d.quantile(-0.5).is_err());
        assert!(d.quantile(1.5).is_err());
        assert!(d.quantile(f64::NAN).is_err());
    }

    #[test]
    fn new_rejects_bad_shapes() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Beta::new(1.0, f64::INFINITY).is_err());
        assert!(Beta::new(-2.0, 1.0).is_err());
    }

    #[test]
    fn mean_is_a_over_a_plus_b() {
        let d = Beta::new(2.0, 6.0).unwrap();
        assert!((d.mean() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn known_median_beta_2_2() {
        // Beta(2,2) is symmetric: median = 0.5.
        let d = Beta::new(2.0, 2.0).unwrap();
        assert!((d.quantile(0.5).unwrap() - 0.5).abs() < 1e-10);
    }
}
