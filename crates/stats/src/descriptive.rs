//! Descriptive statistics used by the evaluation harness.
//!
//! The paper reports geometric means across benchmarks (Figure 6), empirical
//! CDFs of per-element error (Figure 1) and percentile summaries. These are
//! small, but having them in one tested place keeps every experiment binary
//! consistent about e.g. how an empirical CDF treats ties.

use crate::{Result, StatsError};

/// Arithmetic mean of a non-empty slice.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] for an empty slice.
///
/// # Example
///
/// ```
/// # use mithra_stats::descriptive::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0])?, 2.0);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
pub fn mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::InvalidArgument {
            parameter: "values",
            constraint: "non-empty slice",
            value: 0.0,
        });
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Geometric mean of a non-empty slice of positive values.
///
/// Computed in log space for numerical robustness; this is how the paper
/// aggregates per-benchmark speedups and energy reductions.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] if the slice is empty or any
/// value is non-positive.
///
/// # Example
///
/// ```
/// # use mithra_stats::descriptive::geomean;
/// assert!((geomean(&[1.0, 4.0])? - 2.0).abs() < 1e-12);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
pub fn geomean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::InvalidArgument {
            parameter: "values",
            constraint: "non-empty slice",
            value: 0.0,
        });
    }
    let mut acc = 0.0;
    for &v in values {
        if !v.is_finite() || v <= 0.0 {
            return Err(StatsError::InvalidArgument {
                parameter: "values",
                constraint: "all values finite and > 0",
                value: v,
            });
        }
        acc += v.ln();
    }
    Ok((acc / values.len() as f64).exp())
}

/// Population variance of a non-empty slice.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] for an empty slice.
pub fn variance(values: &[f64]) -> Result<f64> {
    let m = mean(values)?;
    Ok(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Linearly interpolated percentile `p ∈ [0, 100]` of a non-empty slice.
///
/// Uses the common "linear interpolation between closest ranks" definition
/// (NumPy's default).
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] if the slice is empty or `p` is
/// outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> Result<f64> {
    if values.is_empty() {
        return Err(StatsError::InvalidArgument {
            parameter: "values",
            constraint: "non-empty slice",
            value: 0.0,
        });
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::InvalidArgument {
            parameter: "p",
            constraint: "0 <= p <= 100",
            value: p,
        });
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// An empirical cumulative distribution function over a sample.
///
/// Built once (sorting the sample), then queried cheaply. Used to produce
/// the paper's Figure 1 — the CDF of per-element final error under full
/// approximation.
///
/// # Example
///
/// ```
/// # use mithra_stats::descriptive::EmpiricalCdf;
/// let cdf = EmpiricalCdf::new(vec![0.0, 1.0, 2.0, 3.0])?;
/// assert_eq!(cdf.eval(1.5), 0.5);
/// assert_eq!(cdf.eval(-1.0), 0.0);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds an empirical CDF from a non-empty sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if the sample is empty or
    /// contains NaN.
    pub fn new(mut sample: Vec<f64>) -> Result<Self> {
        if sample.is_empty() {
            return Err(StatsError::InvalidArgument {
                parameter: "sample",
                constraint: "non-empty",
                value: 0.0,
            });
        }
        if sample.iter().any(|v| v.is_nan()) {
            return Err(StatsError::InvalidArgument {
                parameter: "sample",
                constraint: "free of NaN",
                value: f64::NAN,
            });
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        Ok(Self { sorted: sample })
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no sample points (never true for a constructed
    /// value; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of the sample `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The value at or below which a fraction `q ∈ [0, 1]` of the sample
    /// lies (the inverse of [`eval`](Self::eval), step-function style).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] for `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&q) {
            return Err(StatsError::InvalidArgument {
                parameter: "q",
                constraint: "0 <= q <= 1",
                value: q,
            });
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        Ok(self.sorted[idx])
    }

    /// Samples the CDF at `points` evenly spaced x positions between the
    /// sample min and max, returning `(x, F(x))` pairs — the series plotted
    /// in the paper's Figure 1.
    pub fn series(&self, points: usize) -> Vec<(f64, f64)> {
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if points <= 1 || hi <= lo {
            return vec![(hi, 1.0)];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[2.0, 4.0, 6.0]).unwrap(), 4.0);
        assert!((variance(&[2.0, 4.0, 6.0]).unwrap() - 8.0 / 3.0).abs() < 1e-12);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!(geomean(&[1.0, -1.0]).is_err());
        assert!(geomean(&[]).is_err());
        assert!(geomean(&[0.0]).is_err());
    }

    #[test]
    fn geomean_le_arithmetic_mean() {
        let vals = [1.3, 2.7, 0.9, 5.5, 3.1];
        assert!(geomean(&vals).unwrap() <= mean(&vals).unwrap() + 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 10.0);
        assert_eq!(percentile(&v, 100.0).unwrap(), 40.0);
        assert_eq!(percentile(&v, 50.0).unwrap(), 25.0);
        assert!(percentile(&v, 101.0).is_err());
        assert!(percentile(&[], 50.0).is_err());
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let cdf = EmpiricalCdf::new(vec![3.0, 1.0, 2.0, 2.0, 5.0]).unwrap();
        let mut prev = 0.0;
        for i in 0..60 {
            let x = -1.0 + f64::from(i) * 0.15;
            let f = cdf.eval(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(cdf.eval(5.0), 1.0);
    }

    #[test]
    fn cdf_handles_ties() {
        let cdf = EmpiricalCdf::new(vec![1.0, 1.0, 1.0, 2.0]).unwrap();
        assert_eq!(cdf.eval(1.0), 0.75);
    }

    #[test]
    fn cdf_quantile_round_trip() {
        let cdf = EmpiricalCdf::new((1..=100).map(f64::from).collect()).unwrap();
        assert_eq!(cdf.quantile(0.5).unwrap(), 50.0);
        assert_eq!(cdf.quantile(1.0).unwrap(), 100.0);
        assert_eq!(cdf.quantile(0.0).unwrap(), 1.0);
        assert!(cdf.quantile(1.5).is_err());
    }

    #[test]
    fn cdf_rejects_bad_sample() {
        assert!(EmpiricalCdf::new(vec![]).is_err());
        assert!(EmpiricalCdf::new(vec![1.0, f64::NAN]).is_err());
    }

    #[test]
    fn cdf_series_covers_range() {
        let cdf = EmpiricalCdf::new(vec![0.0, 10.0]).unwrap();
        let series = cdf.series(11);
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].0, 0.0);
        assert_eq!(series[10], (10.0, 1.0));
    }
}
