//! Clopper–Pearson exact binomial confidence intervals.
//!
//! This is the statistical heart of MITHRA's guarantee (paper §III,
//! Equation 3): given `n_trials` representative datasets of which
//! `n_success` met the quality target, the one-sided lower bound tells us —
//! with confidence β — what fraction of *unseen* datasets will meet it. The
//! exact method is conservative: the true coverage is at least the nominal
//! confidence.

use crate::beta::Beta;
use crate::{Result, StatsError};

/// A validated confidence level in the open interval `(0, 1)`.
///
/// Newtype per C-NEWTYPE: a bare `f64` confidence is too easy to confuse
/// with a significance level or a success rate.
///
/// # Example
///
/// ```
/// # use mithra_stats::clopper_pearson::Confidence;
/// let c = Confidence::new(0.95)?;
/// assert_eq!(c.level(), 0.95);
/// assert!((c.alpha() - 0.05).abs() < 1e-15);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Confidence(f64);

impl Confidence {
    /// Creates a confidence level; must satisfy `0 < level < 1`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] outside that range.
    pub fn new(level: f64) -> Result<Self> {
        if !level.is_finite() || level <= 0.0 || level >= 1.0 {
            return Err(StatsError::InvalidArgument {
                parameter: "level",
                constraint: "0 < level < 1",
                value: level,
            });
        }
        Ok(Self(level))
    }

    /// The confidence level β, e.g. `0.95`.
    pub fn level(&self) -> f64 {
        self.0
    }

    /// The significance level α = 1 − β.
    pub fn alpha(&self) -> f64 {
        1.0 - self.0
    }
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

/// A two-sided exact confidence interval on a binomial proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint of the interval.
    pub lower: f64,
    /// Upper endpoint of the interval.
    pub upper: f64,
}

fn validate_counts(successes: u64, trials: u64) -> Result<()> {
    if trials == 0 {
        return Err(StatsError::InvalidArgument {
            parameter: "trials",
            constraint: "> 0",
            value: 0.0,
        });
    }
    if successes > trials {
        return Err(StatsError::SuccessesExceedTrials { successes, trials });
    }
    Ok(())
}

/// One-sided exact lower confidence bound on the success probability.
///
/// With confidence β (`confidence.level()`), at least this fraction of
/// unseen datasets will be successes. This is the `S(q)` lower limit of the
/// paper's Equation (3): the α quantile of `Beta(k, n−k+1)` where `k` is
/// `successes` and `n` is `trials`. When `k = 0` the bound is exactly 0.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] if `trials == 0` and
/// [`StatsError::SuccessesExceedTrials`] if `successes > trials`.
///
/// # Example
///
/// Projecting MITHRA's headline guarantee — certifying "90% of unseen input
/// sets at 95% confidence" with 250 validation datasets. The paper reports
/// 235 of 250 passing; the exact method needs at least 234:
///
/// ```
/// # use mithra_stats::clopper_pearson::{lower_bound, Confidence};
/// let beta = Confidence::new(0.95)?;
/// assert!(lower_bound(235, 250, beta)? >= 0.90); // the paper's observed count
/// assert!(lower_bound(234, 250, beta)? >= 0.90); // the exact minimum
/// assert!(lower_bound(233, 250, beta)? < 0.90);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
pub fn lower_bound(successes: u64, trials: u64, confidence: Confidence) -> Result<f64> {
    validate_counts(successes, trials)?;
    if successes == 0 {
        return Ok(0.0);
    }
    let k = successes as f64;
    let n = trials as f64;
    Beta::new(k, n - k + 1.0)?.quantile(confidence.alpha())
}

/// One-sided exact upper confidence bound on the success probability.
///
/// The β-confidence statement "the true success rate is at most this".
/// When `successes == trials` the bound is exactly 1.
///
/// # Errors
///
/// Same as [`lower_bound`].
pub fn upper_bound(successes: u64, trials: u64, confidence: Confidence) -> Result<f64> {
    validate_counts(successes, trials)?;
    if successes == trials {
        return Ok(1.0);
    }
    let k = successes as f64;
    let n = trials as f64;
    Beta::new(k + 1.0, n - k)?.quantile(confidence.level())
}

/// Two-sided exact confidence interval, splitting α evenly between tails.
///
/// The paper's worked example uses this form: 90/100 successes at 95%
/// confidence gives a lower endpoint of ≈ 82.4%... strictly, the printed
/// 80.7% corresponds to using the 97.5% one-sided tail, i.e. the lower
/// endpoint of this two-sided interval.
///
/// # Errors
///
/// Same as [`lower_bound`].
///
/// # Example
///
/// ```
/// # use mithra_stats::clopper_pearson::{interval, Confidence};
/// let iv = interval(90, 100, Confidence::new(0.95)?)?;
/// assert!((iv.lower - 0.8238).abs() < 5e-4);
/// assert!((iv.upper - 0.9510).abs() < 5e-4);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
pub fn interval(successes: u64, trials: u64, confidence: Confidence) -> Result<Interval> {
    validate_counts(successes, trials)?;
    let half = Confidence::new(1.0 - confidence.alpha() / 2.0)?;
    Ok(Interval {
        lower: lower_bound(successes, trials, half)?,
        upper: upper_bound(successes, trials, half)?,
    })
}

/// Minimum number of successes out of `trials` whose one-sided lower bound
/// at `confidence` reaches `target_rate`.
///
/// Returns `None` if even `trials` successes cannot certify the target
/// (possible for small `trials` and demanding targets). This is the planning
/// companion to [`lower_bound`]: it answers "how many of my validation
/// datasets must pass for the guarantee to hold?".
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] if `trials == 0` or
/// `target_rate` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// # use mithra_stats::clopper_pearson::{required_successes, Confidence};
/// let beta = Confidence::new(0.95)?;
/// // 234 of 250 datasets certify a 90% success rate (the paper observed
/// // 235 passing, comfortably above the minimum).
/// assert_eq!(required_successes(250, 0.90, beta)?, Some(234));
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
pub fn required_successes(
    trials: u64,
    target_rate: f64,
    confidence: Confidence,
) -> Result<Option<u64>> {
    if trials == 0 {
        return Err(StatsError::InvalidArgument {
            parameter: "trials",
            constraint: "> 0",
            value: 0.0,
        });
    }
    if !(0.0..=1.0).contains(&target_rate) {
        return Err(StatsError::InvalidArgument {
            parameter: "target_rate",
            constraint: "0 <= target_rate <= 1",
            value: target_rate,
        });
    }
    // lower_bound is monotone in successes: binary search the smallest k.
    if lower_bound(trials, trials, confidence)? < target_rate {
        return Ok(None);
    }
    let (mut lo, mut hi) = (0u64, trials);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if lower_bound(mid, trials, confidence)? >= target_rate {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(Some(lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conf(level: f64) -> Confidence {
        Confidence::new(level).unwrap()
    }

    #[test]
    fn lower_bound_known_value_90_of_100() {
        // One-sided 95%: alpha quantile of Beta(90, 11) ≈ 0.83628
        // (cross-checked against an independent numerical integration).
        let b = lower_bound(90, 100, conf(0.95)).unwrap();
        assert!((b - 0.83628).abs() < 5e-4, "got {b}");
    }

    #[test]
    fn two_sided_matches_paper_example() {
        // Paper: 90/100 at "95% confidence" prints 80.7% — but the exact
        // two-sided lower endpoint is 82.38%; the paper's figure appears to
        // include additional rounding. We assert the exact value.
        let iv = interval(90, 100, conf(0.95)).unwrap();
        assert!((iv.lower - 0.8238).abs() < 5e-4, "got {}", iv.lower);
    }

    #[test]
    fn zero_successes_bound_is_zero() {
        assert_eq!(lower_bound(0, 50, conf(0.95)).unwrap(), 0.0);
    }

    #[test]
    fn all_successes_upper_bound_is_one() {
        assert_eq!(upper_bound(50, 50, conf(0.95)).unwrap(), 1.0);
    }

    #[test]
    fn all_successes_lower_bound_rule_of_three() {
        // k = n: lower bound at 95% is alpha^(1/n) — the "rule of three"
        // companion. For n = 60: 0.05^(1/60) ≈ 0.9513.
        let b = lower_bound(60, 60, conf(0.95)).unwrap();
        assert!((b - 0.05f64.powf(1.0 / 60.0)).abs() < 1e-9, "got {b}");
    }

    #[test]
    fn lower_bound_monotone_in_successes() {
        let mut prev = -1.0;
        for k in 0..=20 {
            let b = lower_bound(k, 20, conf(0.95)).unwrap();
            assert!(b >= prev, "bound decreased at k={k}");
            prev = b;
        }
    }

    #[test]
    fn lower_bound_below_point_estimate() {
        for &(k, n) in &[(5u64, 10u64), (90, 100), (235, 250), (1, 1000)] {
            let b = lower_bound(k, n, conf(0.95)).unwrap();
            assert!(b <= k as f64 / n as f64 + 1e-12);
        }
    }

    #[test]
    fn higher_confidence_gives_lower_bound() {
        let loose = lower_bound(90, 100, conf(0.90)).unwrap();
        let tight = lower_bound(90, 100, conf(0.99)).unwrap();
        assert!(tight < loose);
    }

    #[test]
    fn interval_contains_point_estimate() {
        let iv = interval(42, 100, conf(0.95)).unwrap();
        assert!(iv.lower < 0.42 && 0.42 < iv.upper);
    }

    #[test]
    fn required_successes_is_minimal() {
        let beta = conf(0.95);
        let k = required_successes(250, 0.90, beta).unwrap().unwrap();
        assert!(lower_bound(k, 250, beta).unwrap() >= 0.90);
        assert!(lower_bound(k - 1, 250, beta).unwrap() < 0.90);
    }

    #[test]
    fn required_successes_unreachable_target() {
        // With 5 trials even 5/5 cannot certify 99% at 95% confidence.
        assert_eq!(required_successes(5, 0.99, conf(0.95)).unwrap(), None);
    }

    #[test]
    fn counts_validation() {
        assert!(lower_bound(3, 0, conf(0.9)).is_err());
        assert!(matches!(
            lower_bound(11, 10, conf(0.9)),
            Err(StatsError::SuccessesExceedTrials { .. })
        ));
    }

    #[test]
    fn confidence_rejects_degenerate_levels() {
        assert!(Confidence::new(0.0).is_err());
        assert!(Confidence::new(1.0).is_err());
        assert!(Confidence::new(f64::NAN).is_err());
    }

    #[test]
    fn matches_f_distribution_form() {
        // Equation (3) of the paper expresses the bound through F-critical
        // values: lower = k / (k + (n-k+1) * F_{1-alpha}(2(n-k+1), 2k)).
        use crate::fdist::FDistribution;
        let (k, n) = (90u64, 100u64);
        let beta = conf(0.95);
        let kf = k as f64;
        let nf = n as f64;
        let f = FDistribution::new(2.0 * (nf - kf + 1.0), 2.0 * kf)
            .unwrap()
            .quantile(beta.level())
            .unwrap();
        let via_f = kf / (kf + (nf - kf + 1.0) * f);
        let via_beta = lower_bound(k, n, beta).unwrap();
        assert!((via_f - via_beta).abs() < 1e-8, "{via_f} vs {via_beta}");
    }
}
