//! Always-valid sequential binomial tests (e-processes).
//!
//! The compile-time certificate uses a *fixed-sample* Clopper–Pearson bound:
//! collect `n` validation datasets once, compute the bound once. The online
//! re-certifier cannot do that — it watches a stream of calibration datasets
//! and wants to stop *the moment* the evidence suffices. Re-running the
//! fixed-sample test after every observation ("peeking") silently spends its
//! α: each look is another chance for a still-violating stream to get lucky,
//! and after enough looks the realized false-certification rate can be far
//! above the nominal 1 − β. (With α = 0.05 and unbounded looks at a
//! borderline stream, the law of the iterated logarithm guarantees the naive
//! monitor eventually "certifies" with probability 1.)
//!
//! The fix is a test that is valid *at every stopping time*: an e-process.
//! For the composite null `H0: p ≤ p0` we track the mixture likelihood
//! ratio
//!
//! ```text
//! E_n(p0) = ∫_{p0}^1 Π_i (q/p0)^{x_i} ((1−q)/(1−p0))^{1−x_i} dq / (1 − p0)
//!         = ∫_{p0}^1 q^k (1−q)^{n−k} dq / ((1 − p0) · p0^k (1−p0)^{n−k})
//! ```
//!
//! where `k` successes were seen in `n` trials. Every component likelihood
//! ratio with alternative `q > p0` has per-step expectation
//! `p·q/p0 + (1−p)(1−q)/(1−p0) ≤ 1` for all `p ≤ p0` (linear in `p`, equal
//! to 1 at `p = p0`, increasing in `p` for `q > p0`), so `E_n(p0)` is a
//! nonnegative supermartingale under the whole null and Ville's inequality
//! gives `P[sup_n E_n(p0) ≥ 1/α] ≤ α` — no matter how often we look or when
//! we stop. Rejecting `H0` when `E_n(p0) ≥ 1/α` therefore certifies
//! `p > p0` with honest confidence `1 − α` under continuous monitoring.
//!
//! The numerator integral has the closed form
//! `B(k+1, n−k+1) · (1 − I_{p0}(k+1, n−k+1))` (regularized incomplete
//! beta), so the whole e-process is computable from the running counts
//! `(k, n)` alone — no per-observation state beyond two integers.
//!
//! Inverting the family `{E_n(p0)}` over `p0` yields an *anytime-valid
//! confidence sequence*: `lower_bound(α) = inf{p0 : E_n(p0) < 1/α}` covers
//! the true `p` at all times simultaneously with probability `1 − α`.

use crate::clopper_pearson::Confidence;
use crate::special::{betainc, ln_beta};
use crate::{Result, StatsError};

/// Bisection iterations for confidence-sequence bound inversion: enough to
/// pin an f64 in `[0, 1]` to ~1e-15.
const BISECT_ITERS: u32 = 60;

/// A streaming Bernoulli record with always-valid (anytime) inference.
///
/// Feed outcomes with [`observe`](Self::observe); query
/// [`e_value`](Self::e_value), [`certifies`](Self::certifies) or the
/// confidence-sequence bounds at *any* time, as often as you like — the
/// error guarantee is not eroded by peeking, unlike a repeated
/// Clopper–Pearson test.
///
/// # Example
///
/// Certifying the paper's `S = 0.9` at `β = 0.95` from a clean stream needs
/// about 29 consecutive successes (`ln 20 / ln(1/0.9) ≈ 28.4`, plus the
/// mixture's overhead):
///
/// ```
/// use mithra_stats::clopper_pearson::Confidence;
/// use mithra_stats::sequential::SequentialBinomial;
///
/// let beta = Confidence::new(0.95)?;
/// let mut test = SequentialBinomial::new();
/// let mut certified_at = None;
/// for n in 1..=60u64 {
///     test.observe(true);
///     if certified_at.is_none() && test.certifies(0.9, beta)? {
///         certified_at = Some(n);
///     }
/// }
/// let n = certified_at.expect("a clean stream certifies");
/// assert!((29..=45).contains(&n), "certified at {n}");
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SequentialBinomial {
    successes: u64,
    trials: u64,
}

impl SequentialBinomial {
    /// An empty record: no observations yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstructs a record from counts (e.g. a deserialized snapshot).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::SuccessesExceedTrials`] if the counts are
    /// inconsistent.
    pub fn from_counts(successes: u64, trials: u64) -> Result<Self> {
        if successes > trials {
            return Err(StatsError::SuccessesExceedTrials { successes, trials });
        }
        Ok(Self { successes, trials })
    }

    /// Records one Bernoulli outcome.
    pub fn observe(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Successes observed so far.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Trials observed so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Discards all observations (a fresh α budget: only sound when the
    /// *hypothesis under test* changes, e.g. a new frozen candidate).
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    /// The one-sided mixture e-value against `H0: p ≤ p0`.
    ///
    /// Values ≥ `1/α` reject the null with anytime validity (see module
    /// docs). Returns `1.0` before any observation (an e-value must start
    /// at its initial wealth).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < p0 < 1`.
    pub fn e_value(&self, p0: f64) -> Result<f64> {
        Ok(self.ln_e_value(p0)?.exp())
    }

    /// `ln` of [`e_value`](Self::e_value), safe against overflow for long
    /// streams (the wealth grows geometrically on a clean stream).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < p0 < 1`.
    pub fn ln_e_value(&self, p0: f64) -> Result<f64> {
        if !p0.is_finite() || p0 <= 0.0 || p0 >= 1.0 {
            return Err(StatsError::InvalidArgument {
                parameter: "p0",
                constraint: "0 < p0 < 1",
                value: p0,
            });
        }
        if self.trials == 0 {
            return Ok(0.0);
        }
        let k = self.successes as f64;
        let n = self.trials as f64;
        // ln ∫_{p0}^1 q^k (1−q)^{n−k} dq
        //   = ln B(k+1, n−k+1) + ln(1 − I_{p0}(k+1, n−k+1)).
        let tail = 1.0 - betainc(p0, k + 1.0, n - k + 1.0)?;
        if tail <= 0.0 {
            // The entire posterior mass sits below p0: no evidence at all.
            return Ok(f64::NEG_INFINITY);
        }
        let ln_numer = ln_beta(k + 1.0, n - k + 1.0)? + tail.ln();
        let ln_denom = (1.0 - p0).ln() + k * p0.ln() + (n - k) * (1.0 - p0).ln();
        Ok(ln_numer - ln_denom)
    }

    /// Does the stream certify a success rate **above** `target_rate` at
    /// `confidence`, anytime-valid?
    ///
    /// `true` exactly when the e-value against `H0: p ≤ target_rate`
    /// reaches `1/α`. Because the e-process is a supermartingale under the
    /// null, the probability that a stream whose true rate is at most
    /// `target_rate` *ever* certifies — over its entire lifetime, however
    /// often this is polled — is at most `α = 1 − confidence`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless
    /// `0 < target_rate < 1`.
    pub fn certifies(&self, target_rate: f64, confidence: Confidence) -> Result<bool> {
        Ok(self.ln_e_value(target_rate)? >= -confidence.alpha().ln())
    }

    /// Anytime-valid lower confidence bound on the success probability.
    ///
    /// The largest rate the stream currently certifies:
    /// `inf{p0 : e_value(p0) < 1/α}`. Simultaneously over all times,
    /// `P[∃n: lower_bound > p] ≤ α` for the true rate `p`. Wider than the
    /// fixed-sample Clopper–Pearson bound at the same `n` — that is the
    /// price of unlimited peeking.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures from the beta primitives.
    pub fn lower_bound(&self, confidence: Confidence) -> Result<f64> {
        if self.trials == 0 || self.successes == 0 {
            return Ok(0.0);
        }
        let threshold = -confidence.alpha().ln();
        // ln E is +∞ at p0 → 0 (for k > 0) and decreases through the
        // threshold at most once before the confidence set begins; bisect
        // the crossing.
        if self.ln_e_value(f64::EPSILON)? < threshold {
            return Ok(0.0);
        }
        let (mut lo, mut hi) = (f64::EPSILON, 1.0 - f64::EPSILON);
        if self.ln_e_value(hi)? >= threshold {
            return Ok(hi);
        }
        for _ in 0..BISECT_ITERS {
            let mid = 0.5 * (lo + hi);
            if self.ln_e_value(mid)? >= threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// Anytime-valid upper confidence bound on the success probability:
    /// the mirror of [`lower_bound`](Self::lower_bound), obtained by
    /// running the same e-process on the failure stream.
    ///
    /// # Errors
    ///
    /// Propagates numerical failures from the beta primitives.
    pub fn upper_bound(&self, confidence: Confidence) -> Result<f64> {
        let mirrored = Self {
            successes: self.trials - self.successes,
            trials: self.trials,
        };
        Ok(1.0 - mirrored.lower_bound(confidence)?)
    }

    /// Does the stream establish that the success rate is **below**
    /// `limit_rate` at `confidence`, anytime-valid? The breach-detection
    /// mirror of [`certifies`](Self::certifies): feed it violation
    /// indicators inverted, or call this with the success stream directly.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] unless `0 < limit_rate < 1`.
    pub fn refutes(&self, limit_rate: f64, confidence: Confidence) -> Result<bool> {
        let mirrored = Self {
            successes: self.trials - self.successes,
            trials: self.trials,
        };
        mirrored.certifies(1.0 - limit_rate, confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clopper_pearson;

    fn conf(level: f64) -> Confidence {
        Confidence::new(level).unwrap()
    }

    /// xorshift64* — deterministic, dependency-free stream for the
    /// stochastic tests.
    struct Rng(u64);
    impl Rng {
        fn new(seed: u64) -> Self {
            Self(seed.max(1))
        }
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 >> 12;
            self.0 ^= self.0 << 25;
            self.0 ^= self.0 >> 27;
            let bits = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
            (bits >> 11) as f64 / (1u64 << 53) as f64
        }
        fn bernoulli(&mut self, p: f64) -> bool {
            self.next_f64() < p
        }
    }

    #[test]
    fn empty_stream_is_neutral() {
        let t = SequentialBinomial::new();
        assert_eq!(t.e_value(0.5).unwrap(), 1.0);
        assert!(!t.certifies(0.5, conf(0.95)).unwrap());
        assert_eq!(t.lower_bound(conf(0.95)).unwrap(), 0.0);
        assert_eq!(t.upper_bound(conf(0.95)).unwrap(), 1.0);
    }

    #[test]
    fn from_counts_validates() {
        assert!(SequentialBinomial::from_counts(5, 4).is_err());
        let t = SequentialBinomial::from_counts(3, 4).unwrap();
        assert_eq!(t.successes(), 3);
        assert_eq!(t.trials(), 4);
    }

    #[test]
    fn clean_stream_certifies_near_theory() {
        // ln(1/α) / ln(1/S) ≈ 28.4 is the information-theoretic floor for
        // S = 0.9, α = 0.05 with point alternatives; the mixture pays a
        // modest logarithmic overhead above it.
        let beta = conf(0.95);
        let mut t = SequentialBinomial::new();
        let mut fired = None;
        for n in 1..=80u64 {
            t.observe(true);
            if fired.is_none() && t.certifies(0.9, beta).unwrap() {
                fired = Some(n);
            }
        }
        let n = fired.expect("clean stream must certify");
        assert!((29..=45).contains(&n), "certified at {n}");
    }

    #[test]
    fn e_value_monotone_in_evidence() {
        // More successes at fixed n → more evidence against p ≤ 0.6.
        let mut prev = 0.0;
        for k in 0..=30u64 {
            let e = SequentialBinomial::from_counts(k, 30)
                .unwrap()
                .e_value(0.6)
                .unwrap();
            assert!(e > prev, "e-value not increasing at k={k}");
            prev = e;
        }
    }

    #[test]
    fn ln_e_value_matches_direct_integration() {
        // Direct Riemann sum of the defining mixture integral.
        let (k, n, p0) = (18u64, 22u64, 0.6f64);
        let t = SequentialBinomial::from_counts(k, n).unwrap();
        let steps = 400_000;
        let mut sum = 0.0f64;
        for i in 0..steps {
            let q = p0 + (1.0 - p0) * (i as f64 + 0.5) / steps as f64;
            sum += q.powi(k as i32) * (1.0 - q).powi((n - k) as i32);
        }
        sum *= (1.0 - p0) / steps as f64;
        let direct = sum / ((1.0 - p0) * p0.powi(k as i32) * (1.0 - p0).powi((n - k) as i32));
        let closed = t.e_value(p0).unwrap();
        assert!(
            (closed / direct - 1.0).abs() < 1e-4,
            "closed {closed} vs direct {direct}"
        );
    }

    #[test]
    fn lower_bound_consistent_with_certifies() {
        let beta = conf(0.95);
        for &(k, n) in &[(40u64, 45u64), (90, 100), (29, 29), (10, 30)] {
            let t = SequentialBinomial::from_counts(k, n).unwrap();
            let lb = t.lower_bound(beta).unwrap();
            if lb > 1e-9 {
                // Just inside the bound: certified. Just above: not.
                assert!(t.certifies(lb * 0.999, beta).unwrap(), "k={k} n={n}");
            }
            if lb < 1.0 - 1e-9 {
                let above = (lb + 1e-6).min(1.0 - 1e-9);
                assert!(!t.certifies(above, beta).unwrap(), "k={k} n={n}");
            }
        }
    }

    #[test]
    fn anytime_bound_wider_than_fixed_sample() {
        // The peeking-safe bound must be more conservative than the
        // fixed-n Clopper–Pearson bound it replaces.
        let beta = conf(0.95);
        for &(k, n) in &[(45u64, 50u64), (90, 100), (230, 250)] {
            let seq = SequentialBinomial::from_counts(k, n)
                .unwrap()
                .lower_bound(beta)
                .unwrap();
            let fixed = clopper_pearson::lower_bound(k, n, beta).unwrap();
            assert!(seq < fixed, "k={k} n={n}: seq {seq} !< fixed {fixed}");
        }
    }

    #[test]
    fn lower_bound_anytime_coverage_under_continuous_monitoring() {
        // The property the naive repeated CP test fails: monitor a
        // borderline stream (true p exactly at the target) at EVERY step
        // and count streams that ever falsely certify. Must stay ≤ α
        // (plus Monte-Carlo slack).
        let beta = conf(0.95);
        let p_true = 0.9;
        let (mut seq_false, mut cp_false) = (0u32, 0u32);
        let runs = 400u32;
        for seed in 0..runs {
            let mut rng = Rng::new(0xA11C_E000 + u64::from(seed));
            let mut t = SequentialBinomial::new();
            let (mut seq_fired, mut cp_fired) = (false, false);
            for _ in 0..400 {
                t.observe(rng.bernoulli(p_true));
                if !seq_fired && t.certifies(p_true, beta).unwrap() {
                    seq_fired = true;
                }
                if !cp_fired
                    && t.successes() > 0
                    && clopper_pearson::lower_bound(t.successes(), t.trials(), beta).unwrap()
                        > p_true
                {
                    cp_fired = true;
                }
            }
            seq_false += u32::from(seq_fired);
            cp_false += u32::from(cp_fired);
        }
        let seq_rate = f64::from(seq_false) / f64::from(runs);
        let cp_rate = f64::from(cp_false) / f64::from(runs);
        assert!(
            seq_rate <= 0.08,
            "e-process false rate {seq_rate} > α+slack"
        );
        // And demonstrate the failure this module exists to prevent: the
        // peeked fixed-sample test blows way past its nominal α.
        assert!(
            cp_rate > 2.0 * 0.05,
            "peeked CP rate {cp_rate} unexpectedly honest — test is vacuous"
        );
    }

    #[test]
    fn refutes_mirrors_certifies() {
        // 2 successes in 40: strong evidence the rate is below 50%.
        let t = SequentialBinomial::from_counts(2, 40).unwrap();
        assert!(t.refutes(0.5, conf(0.95)).unwrap());
        // 38 in 40: no evidence of being below 50%.
        let t = SequentialBinomial::from_counts(38, 40).unwrap();
        assert!(!t.refutes(0.5, conf(0.95)).unwrap());
    }

    #[test]
    fn upper_and_lower_bracket_point_estimate() {
        let beta = conf(0.95);
        for &(k, n) in &[(20u64, 50u64), (45, 50), (5, 50)] {
            let t = SequentialBinomial::from_counts(k, n).unwrap();
            let lb = t.lower_bound(beta).unwrap();
            let ub = t.upper_bound(beta).unwrap();
            let point = k as f64 / n as f64;
            assert!(lb <= point + 1e-12 && point <= ub + 1e-12, "k={k} n={n}");
        }
    }

    #[test]
    fn e_value_rejects_bad_domain() {
        let t = SequentialBinomial::from_counts(1, 2).unwrap();
        assert!(t.e_value(0.0).is_err());
        assert!(t.e_value(1.0).is_err());
        assert!(t.e_value(f64::NAN).is_err());
    }

    #[test]
    fn reset_restores_initial_wealth() {
        let mut t = SequentialBinomial::from_counts(30, 30).unwrap();
        t.reset();
        assert_eq!(t.trials(), 0);
        assert_eq!(t.e_value(0.9).unwrap(), 1.0);
    }
}
