//! Alternative binomial intervals — why the paper chose the exact method.
//!
//! The Clopper–Pearson interval is *conservative*: its coverage is at
//! least the nominal confidence for every true proportion. The cheaper
//! approximations (normal/Wald, Wilson score) can under-cover, which for
//! MITHRA would mean promising a success rate the hardware does not
//! deliver. These implementations exist to make that comparison
//! executable (see the `coverage` tests): the Wald interval's lower bound
//! is frequently *above* the exact one — an overpromise — while
//! Clopper–Pearson never is.

use crate::{Result, StatsError};

/// Approximate inverse standard-normal CDF (Acklam's rational
/// approximation; max absolute error ~1.15e-9).
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(0.0..1.0).contains(&p) || p == 0.0 {
        return Err(StatsError::InvalidArgument {
            parameter: "p",
            constraint: "0 < p < 1",
            value: p,
        });
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    let x = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    Ok(x)
}

fn validate(successes: u64, trials: u64) -> Result<()> {
    if trials == 0 {
        return Err(StatsError::InvalidArgument {
            parameter: "trials",
            constraint: "> 0",
            value: 0.0,
        });
    }
    if successes > trials {
        return Err(StatsError::SuccessesExceedTrials { successes, trials });
    }
    Ok(())
}

/// One-sided lower bound by the normal (Wald) approximation,
/// `p̂ − z·sqrt(p̂(1−p̂)/n)`, clamped to `[0, 1]`.
///
/// # Errors
///
/// Same domain errors as the exact method.
pub fn wald_lower_bound(successes: u64, trials: u64, confidence: f64) -> Result<f64> {
    validate(successes, trials)?;
    let z = normal_quantile(confidence)?;
    let n = trials as f64;
    let p_hat = successes as f64 / n;
    Ok((p_hat - z * (p_hat * (1.0 - p_hat) / n).sqrt()).clamp(0.0, 1.0))
}

/// One-sided lower bound by the Wilson score interval.
///
/// # Errors
///
/// Same domain errors as the exact method.
pub fn wilson_lower_bound(successes: u64, trials: u64, confidence: f64) -> Result<f64> {
    validate(successes, trials)?;
    let z = normal_quantile(confidence)?;
    let n = trials as f64;
    let p_hat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p_hat + z2 / (2.0 * n);
    let margin = z * ((p_hat * (1.0 - p_hat) + z2 / (4.0 * n)) / n).sqrt();
    Ok(((center - margin) / denom).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial::Binomial;
    use crate::clopper_pearson::{lower_bound, Confidence};

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5).unwrap()).abs() < 1e-8);
        assert!((normal_quantile(0.975).unwrap() - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.95).unwrap() - 1.644854).abs() < 1e-5);
        assert!((normal_quantile(0.05).unwrap() + 1.644854).abs() < 1e-5);
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
    }

    #[test]
    fn exact_bound_is_most_conservative_at_high_success_rates() {
        // In MITHRA's operating regime — high observed success rates,
        // where the normal approximation's symmetric margin is least
        // valid — the exact lower bound sits below both approximations:
        // it never overpromises the certified rate. (Pointwise dominance
        // does not hold for mid-range proportions; the rigorous statement
        // is the coverage test below.)
        let conf = Confidence::new(0.95).unwrap();
        for &(k, n) in &[(90u64, 100u64), (235, 250), (9, 10), (245, 250)] {
            let exact = lower_bound(k, n, conf).unwrap();
            let wald = wald_lower_bound(k, n, 0.95).unwrap();
            let wilson = wilson_lower_bound(k, n, 0.95).unwrap();
            assert!(
                exact <= wald + 1e-9,
                "exact {exact} > wald {wald} at {k}/{n}"
            );
            assert!(
                exact <= wilson + 1e-9,
                "exact {exact} > wilson {wilson} at {k}/{n}"
            );
        }
    }

    #[test]
    fn wald_undercovers_where_exact_does_not() {
        // Coverage experiment at n = 50, true p = 0.9, confidence 95%:
        // P[true p >= bound(K)] over K ~ Binomial(n, p) must be >= 0.95
        // for a sound method. Compute exactly via the binomial PMF.
        let (n, p, conf) = (50u64, 0.9f64, 0.95f64);
        let dist = Binomial::new(n, p).unwrap();
        let coverage = |bound: &dyn Fn(u64) -> f64| -> f64 {
            (0..=n)
                .filter(|&k| bound(k) <= p)
                .map(|k| dist.pmf(k).unwrap())
                .sum()
        };
        let exact_cov = coverage(&|k| lower_bound(k, n, Confidence::new(conf).unwrap()).unwrap());
        let wald_cov = coverage(&|k| wald_lower_bound(k, n, conf).unwrap());
        assert!(exact_cov >= conf - 1e-9, "exact coverage {exact_cov}");
        assert!(
            wald_cov < exact_cov,
            "wald {wald_cov} not below exact {exact_cov}"
        );
    }

    #[test]
    fn wilson_between_wald_and_exact_typically() {
        let (k, n) = (235u64, 250u64);
        let exact = lower_bound(k, n, Confidence::new(0.95).unwrap()).unwrap();
        let wilson = wilson_lower_bound(k, n, 0.95).unwrap();
        let wald = wald_lower_bound(k, n, 0.95).unwrap();
        assert!(exact < wilson && wilson < wald, "{exact} {wilson} {wald}");
    }

    #[test]
    fn degenerate_counts() {
        assert_eq!(wald_lower_bound(0, 10, 0.95).unwrap(), 0.0);
        assert!(wilson_lower_bound(10, 10, 0.95).unwrap() < 1.0);
        assert!(wald_lower_bound(3, 0, 0.95).is_err());
        assert!(wilson_lower_bound(11, 10, 0.95).is_err());
    }
}
