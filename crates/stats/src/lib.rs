//! Statistical machinery underpinning MITHRA's quality guarantees.
//!
//! MITHRA (ISCA 2016) converts a programmer-supplied *final output quality*
//! target into a *local accelerator error threshold* by solving a statistical
//! optimization problem. The statistical core of that optimization is the
//! [Clopper–Pearson exact method], which provides a conservative one-sided
//! lower bound on the success rate observed over a set of representative
//! input datasets. This crate implements that method from first principles:
//!
//! * [`special`] — log-gamma and the regularized incomplete beta function,
//!   the numerical primitives every exact binomial interval rests on;
//! * [`beta`] — the Beta distribution (CDF and quantile via bracketed
//!   Newton iteration);
//! * [`fdist`] — the F distribution, used to express the interval in the
//!   paper's Equation (3) form;
//! * [`clopper_pearson`] — one-sided and two-sided exact binomial intervals;
//! * [`sequential`] — always-valid e-process variants of the same bounds,
//!   safe under continuous monitoring (the online re-certifier's test);
//! * [`descriptive`] — means, geometric means, percentiles and empirical
//!   CDFs used throughout the evaluation harness;
//! * [`pareto`] — nondominated-set extraction with deterministic
//!   tie-breaking, used by the design-space explorer's certified
//!   frontiers.
//!
//! # Example
//!
//! The paper's worked example: 90 of 100 representative datasets meet the
//! quality target. What success rate can we project, with 95% confidence,
//! onto unseen datasets?
//!
//! ```
//! use mithra_stats::clopper_pearson::{lower_bound, Confidence};
//!
//! let bound = lower_bound(90, 100, Confidence::new(0.95)?)?;
//! // With 95% confidence at least ~84% of unseen datasets will meet the
//! // target (the paper prints the more conservative two-sided variant).
//! assert!(bound > 0.83 && bound < 0.86);
//! # Ok::<(), mithra_stats::StatsError>(())
//! ```
//!
//! [Clopper–Pearson exact method]: https://en.wikipedia.org/wiki/Binomial_proportion_confidence_interval

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod beta;
pub mod binomial;
pub mod clopper_pearson;
pub mod descriptive;
pub mod fdist;
pub mod intervals;
pub mod pareto;
pub mod sequential;
pub mod special;

mod error;

pub use error::StatsError;

/// Convenience result alias for fallible statistical routines.
pub type Result<T> = std::result::Result<T, StatsError>;
