//! Exact binomial distribution — the ground the Clopper–Pearson interval
//! stands on, exposed for cross-checks and planning.

use crate::special::{betainc, ln_gamma};
use crate::{Result, StatsError};

/// A Binomial(n, p) distribution.
///
/// # Example
///
/// ```
/// # use mithra_stats::binomial::Binomial;
/// let b = Binomial::new(10, 0.5)?;
/// assert!((b.pmf(5)? - 0.24609375).abs() < 1e-12);
/// assert!((b.cdf(5)? - 0.623046875).abs() < 1e-12);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a Binomial(n, p) with `n >= 1` and `p ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] for out-of-range values.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if n == 0 {
            return Err(StatsError::InvalidArgument {
                parameter: "n",
                constraint: ">= 1",
                value: 0.0,
            });
        }
        if !(0.0..=1.0).contains(&p) || !p.is_finite() {
            return Err(StatsError::InvalidArgument {
                parameter: "p",
                constraint: "0 <= p <= 1",
                value: p,
            });
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean, `n p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Probability mass at `k`, computed in log space.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `k > n`.
    pub fn pmf(&self, k: u64) -> Result<f64> {
        if k > self.n {
            return Err(StatsError::InvalidArgument {
                parameter: "k",
                constraint: "k <= n",
                value: k as f64,
            });
        }
        if self.p == 0.0 {
            return Ok(if k == 0 { 1.0 } else { 0.0 });
        }
        if self.p == 1.0 {
            return Ok(if k == self.n { 1.0 } else { 0.0 });
        }
        let (n, k) = (self.n as f64, k as f64);
        let ln_choose = ln_gamma(n + 1.0)? - ln_gamma(k + 1.0)? - ln_gamma(n - k + 1.0)?;
        Ok((ln_choose + k * self.p.ln() + (n - k) * (1.0 - self.p).ln()).exp())
    }

    /// `P[X <= k]`, via the incomplete-beta identity (exact, no summation
    /// loss for large `n`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `k > n`.
    pub fn cdf(&self, k: u64) -> Result<f64> {
        if k > self.n {
            return Err(StatsError::InvalidArgument {
                parameter: "k",
                constraint: "k <= n",
                value: k as f64,
            });
        }
        if k == self.n {
            return Ok(1.0);
        }
        betainc(1.0 - self.p, (self.n - k) as f64, k as f64 + 1.0)
    }

    /// `P[X >= k]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidArgument`] if `k > n`.
    pub fn sf(&self, k: u64) -> Result<f64> {
        if k == 0 {
            return Ok(1.0);
        }
        Ok(1.0 - self.cdf(k - 1)?)
    }
}

/// Exact one-sided binomial test of `H0: p >= hypothesized_rate` against
/// `H1: p < hypothesized_rate`, given `successes` out of `trials`.
///
/// Returns the p-value `P[X <= successes]` for `X ~ Binomial(trials,
/// hypothesized_rate)` — the worst case over the composite null, attained
/// at its boundary. A small value is strong evidence that the true success
/// probability falls short of the hypothesized rate. This is the test the
/// conformance harness applies to a certified `(success-rate, confidence)`
/// pair: the certificate claims the rate, the unseen-dataset sample either
/// refutes it or fails to.
///
/// Exact via the incomplete-beta identity, no summation loss for large
/// `trials`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidArgument`] if `trials == 0`,
/// `successes > trials`, or `hypothesized_rate` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// # use mithra_stats::binomial::one_sided_p_value;
/// // 80 of 100 unseen datasets met the target; the certificate claimed
/// // 90%. How surprising is an 80/100 sample if 90% were the truth?
/// let p = one_sided_p_value(80, 100, 0.90)?;
/// assert!(p < 0.01); // very: the claim is refuted
/// // 88 of 100 is entirely consistent with a 90% rate.
/// assert!(one_sided_p_value(88, 100, 0.90)? > 0.2);
/// # Ok::<(), mithra_stats::StatsError>(())
/// ```
pub fn one_sided_p_value(successes: u64, trials: u64, hypothesized_rate: f64) -> Result<f64> {
    if successes > trials {
        return Err(StatsError::SuccessesExceedTrials { successes, trials });
    }
    Binomial::new(trials, hypothesized_rate)?.cdf(successes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.3).unwrap();
        let total: f64 = (0..=20).map(|k| b.pmf(k).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_summation() {
        let b = Binomial::new(15, 0.62).unwrap();
        let mut acc = 0.0;
        for k in 0..=15 {
            acc += b.pmf(k).unwrap();
            assert!((b.cdf(k).unwrap() - acc).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(5, 0.0).unwrap();
        assert_eq!(zero.pmf(0).unwrap(), 1.0);
        assert_eq!(zero.pmf(3).unwrap(), 0.0);
        let one = Binomial::new(5, 1.0).unwrap();
        assert_eq!(one.pmf(5).unwrap(), 1.0);
        assert_eq!(one.cdf(4).unwrap(), 0.0);
    }

    #[test]
    fn sf_complements_cdf() {
        let b = Binomial::new(30, 0.4).unwrap();
        for k in 1..=30 {
            let lhs = b.sf(k).unwrap();
            let rhs = 1.0 - b.cdf(k - 1).unwrap();
            assert!((lhs - rhs).abs() < 1e-12);
        }
        assert_eq!(b.sf(0).unwrap(), 1.0);
    }

    #[test]
    fn clopper_pearson_coverage_cross_check() {
        // The defining property of the CP lower bound L(k, n): if the true
        // p equals L, then P[X >= k] = alpha. Verify numerically.
        use crate::clopper_pearson::{lower_bound, Confidence};
        let (k, n) = (90u64, 100u64);
        let conf = Confidence::new(0.95).unwrap();
        let lower = lower_bound(k, n, conf).unwrap();
        let at_bound = Binomial::new(n, lower).unwrap().sf(k).unwrap();
        assert!((at_bound - 0.05).abs() < 1e-6, "P[X>=k] = {at_bound}");
    }

    #[test]
    fn one_sided_p_value_matches_cdf_summation() {
        let (k, n, rate) = (7u64, 20u64, 0.6);
        let b = Binomial::new(n, rate).unwrap();
        let direct: f64 = (0..=k).map(|i| b.pmf(i).unwrap()).sum();
        let p = one_sided_p_value(k, n, rate).unwrap();
        assert!((p - direct).abs() < 1e-12, "{p} vs {direct}");
    }

    #[test]
    fn one_sided_p_value_monotone_in_successes() {
        // More observed successes can only make "p >= rate" less
        // surprising.
        let mut prev = 0.0;
        for k in 0..=50 {
            let p = one_sided_p_value(k, 50, 0.9).unwrap();
            assert!(p >= prev, "p-value decreased at k={k}");
            prev = p;
        }
        assert!((prev - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_sided_p_value_degenerate_rates() {
        // rate = 0: any sample is consistent (p-value 1).
        assert_eq!(one_sided_p_value(0, 10, 0.0).unwrap(), 1.0);
        // rate = 1: any miss at all is an exact refutation.
        assert_eq!(one_sided_p_value(9, 10, 1.0).unwrap(), 0.0);
        assert_eq!(one_sided_p_value(10, 10, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn one_sided_p_value_validation() {
        assert!(one_sided_p_value(5, 0, 0.5).is_err());
        assert!(one_sided_p_value(11, 10, 0.5).is_err());
        assert!(one_sided_p_value(5, 10, 1.5).is_err());
    }

    #[test]
    fn validation() {
        assert!(Binomial::new(0, 0.5).is_err());
        assert!(Binomial::new(10, 1.5).is_err());
        let b = Binomial::new(10, 0.5).unwrap();
        assert!(b.pmf(11).is_err());
        assert!(b.cdf(11).is_err());
        assert_eq!(b.mean(), 5.0);
    }
}
