#!/bin/bash
# Regenerates every table and figure at the paper's scale.
set -x
cd /root/repo
R=results
run() { name=$1; shift; start=$(date +%s); cargo run --release -q -p mithra-bench --bin $name -- "$@" > $R/$name.txt 2> $R/$name.log || echo "FAILED: $name" >> $R/failures.txt; echo "done: $name in $(( $(date +%s) - start ))s" >> $R/progress.txt; }
run table1_benchmarks
run fig01_error_cdf
run fig06_main_results
run fig07_false_decisions
run fig08_per_benchmark
run table2_classifier_sizes
run fig09_random_filtering
run fig10_success_sweep
run fig11_pareto
run ablation_designs
run textA_sw_overhead
echo ALL_DONE >> $R/progress.txt
