#!/bin/bash
# Regenerates every table and figure at the paper's scale.
set -x
cd /root/repo
R=results
# Fresh run, fresh log: progress.txt and failures.txt accumulate via
# appends below, so clear them up front.
: > $R/progress.txt
rm -f $R/failures.txt
run() {
  name=$1; shift; start=$(date +%s)
  cargo run --release -q -p mithra-bench --bin $name -- "$@" > $R/$name.txt 2> $R/$name.log || echo "FAILED: $name" >> $R/failures.txt
  echo "done: $name in $(( $(date +%s) - start ))s" >> $R/progress.txt
  # Per-stage wall times: each compile session prints a StageReport block
  # to stderr; mirror it into progress.txt so a long run is inspectable.
  grep -E '^(compile session \[|  (npu-training|profiling|certification|classifier-training|validation-profiling|pool-training|routed-certification|router-training) )' $R/$name.log >> $R/progress.txt 2>/dev/null || true
}
run table1_benchmarks
run fig01_error_cdf
run fig06_main_results
run fig07_false_decisions
run fig08_per_benchmark
run table2_classifier_sizes
run fig09_random_filtering
run fig10_success_sweep
run fig11_pareto
run ablation_designs
run textA_sw_overhead
# Fault-robustness sweep: q5 keeps the certified thresholds tight enough
# that faulted outputs register as violations (q10's lax thresholds mask
# them); 30/8 datasets keep the three-rate sweep tractable.
run figx_fault_robustness --scale full --datasets 30 --validation 8 --quality 5 --cache-dir target/mithra-cache
# Conformance validation: does the certified guarantee actually hold on
# unseen datasets? q5 is the paper's headline spec; 100 Monte-Carlo
# trials give the exact binomial test enough power to flag a broken
# certificate, and the mutation self-check must detect every planted
# defect for the verdicts to count.
run figy_guarantee_validation --scale full --quality 5 --cache-dir target/mithra-cache --out BENCH_conform.json
# Routed multi-approximator frontier: can a pool of cheap/medium/accurate
# topologies beat the binary accept/reject frontier at the same certified
# (S, beta)? --pool-check additionally compiles a pool of one per
# benchmark and requires its conformance report to be byte-identical to
# the binary baseline's.
run figz_multi_approximator --scale full --quality 5 --cache-dir target/mithra-cache --pool 3 --pool-check --out BENCH_route.json
# Closed-loop self-healing: per benchmark × drift scenario, the watchdog
# detects injected input drift, the recert engine re-certifies a fresh
# operating point online under the always-valid sequential test, and the
# swapped pair is judged on unseen drifted datasets. Drift severity is
# per-benchmark (see figw's default_noise_for).
run figw_self_healing --scale full --quality 5 --cache-dir target/mithra-cache --out BENCH_recert.json
# Design-space exploration: enumerate 27 pool compositions per
# benchmark, prune with probe-trained predictors down to the auto
# budget (a quarter of the space), fully certify the survivors, and
# emit the per-benchmark Pareto frontier over (speedup, energy,
# certified S). The fixed figz tiering and the pool of one ride along
# as force-evaluated anchors.
run figv_design_space --scale full --quality 5 --cache-dir target/mithra-cache --out BENCH_explore.json
# Extended (non-AxBench) workloads: Table I and Figure 1 regenerated for
# the grown suite members into separate *_extended files, so the paper's
# six-benchmark originals stay byte-identical (golden_pin.sh compares
# them exactly). The "paper" column for these rows is the measured
# full-approximation error, pinned by mithra-bench's
# measured_full_approx_error test.
for name in table1_benchmarks fig01_error_cdf; do
  start=$(date +%s)
  cargo run --release -q -p mithra-bench --bin $name -- --bench kmeans,raytrace \
    > $R/${name}_extended.txt 2> $R/${name}_extended.log || echo "FAILED: ${name}_extended" >> $R/failures.txt
  echo "done: ${name}_extended in $(( $(date +%s) - start ))s" >> $R/progress.txt
done
# Conformance verdicts for the extended workloads: the certified (S, beta)
# guarantee on 100 unseen full-scale datasets per workload, same spec as
# the six-benchmark figy run above.
start=$(date +%s)
cargo run --release -q -p mithra-bench --bin figy_guarantee_validation -- \
  --scale full --quality 5 --cache-dir target/mithra-cache \
  --bench kmeans,raytrace --out BENCH_conform_extended.json \
  > $R/figy_guarantee_validation_extended.txt 2> $R/figy_guarantee_validation_extended.log \
  || echo "FAILED: figy_guarantee_validation_extended" >> $R/failures.txt
echo "done: figy_guarantee_validation_extended in $(( $(date +%s) - start ))s" >> $R/progress.txt
echo ALL_DONE >> $R/progress.txt
