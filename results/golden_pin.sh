#!/bin/bash
# Golden pin: re-runs a cheap subset of run_all.sh (inversek2j + sobel at
# the full experiment scale) and byte-compares the per-benchmark output
# lines against the committed results/*.txt. The content of a benchmark's
# rows is independent of which other suite members ran; only the table
# column padding depends on the widest name in the run, so space runs are
# collapsed on both sides and the compare is byte-exact after that — any
# change that perturbs a published digit or label fails here.
set -euo pipefail
cd "$(dirname "$0")/.."
R=results
OUT=$(mktemp -d)
trap 'rm -rf "$OUT"' EXIT
BENCHES="inversek2j,sobel"

pin() {
  name=$1
  cargo run --locked --release -q -p mithra-bench --bin "$name" -- \
    --bench "$BENCHES" > "$OUT/$name.txt" 2> "$OUT/$name.log"
  for b in ${BENCHES//,/ }; do
    grep "^$b" "$R/$name.txt" | tr -s ' ' > "$OUT/$name.$b.expected"
    grep "^$b" "$OUT/$name.txt" | tr -s ' ' > "$OUT/$name.$b.actual"
    if ! cmp -s "$OUT/$name.$b.expected" "$OUT/$name.$b.actual"; then
      echo "GOLDEN PIN FAILED: $name/$b diverged from committed $R/$name.txt" >&2
      diff -u "$OUT/$name.$b.expected" "$OUT/$name.$b.actual" >&2 || true
      exit 1
    fi
    echo "pinned: $name/$b ($(wc -l < "$OUT/$name.$b.actual") lines byte-identical)"
  done
}

pin table1_benchmarks
pin fig01_error_cdf

# Extended-workload slice: the kmeans rows of the *_extended Table I and
# Figure 1 files (run_all.sh regenerates those with --bench
# kmeans,raytrace; rows are per-benchmark independent, so a kmeans-only
# re-run compares byte-exactly after space collapsing, same as above).
b=kmeans
for name in table1_benchmarks fig01_error_cdf; do
  cargo run --locked --release -q -p mithra-bench --bin "$name" -- \
    --bench "$b" > "$OUT/${name}_extended.txt" 2> "$OUT/${name}_extended.log"
  grep "^$b" "$R/${name}_extended.txt" | tr -s ' ' > "$OUT/${name}_extended.$b.expected"
  grep "^$b" "$OUT/${name}_extended.txt" | tr -s ' ' > "$OUT/${name}_extended.$b.actual"
  if ! cmp -s "$OUT/${name}_extended.$b.expected" "$OUT/${name}_extended.$b.actual"; then
    echo "GOLDEN PIN FAILED: ${name}_extended/$b diverged from committed $R/${name}_extended.txt" >&2
    diff -u "$OUT/${name}_extended.$b.expected" "$OUT/${name}_extended.$b.actual" >&2 || true
    exit 1
  fi
  echo "pinned: ${name}_extended/$b ($(wc -l < "$OUT/${name}_extended.$b.actual") lines byte-identical)"
done

# One figz slice: the routed-frontier rows for inversek2j, re-run with
# exactly the flags run_all.sh uses (the figz defaults differ) and
# byte-compared the same way. --pool-check doubles as a parity assert:
# the binary exits non-zero if the pool-of-one conformance report
# diverges from the binary baseline's.
name=figz_multi_approximator
b=inversek2j
cargo run --locked --release -q -p mithra-bench --bin "$name" -- \
  --scale full --quality 5 --cache-dir target/mithra-cache \
  --pool 3 --pool-check --out "$OUT/BENCH_route_pin.json" \
  --bench "$b" > "$OUT/$name.txt" 2> "$OUT/$name.log"
grep "^$b" "$R/$name.txt" | tr -s ' ' > "$OUT/$name.$b.expected"
grep "^$b" "$OUT/$name.txt" | tr -s ' ' > "$OUT/$name.$b.actual"
if ! cmp -s "$OUT/$name.$b.expected" "$OUT/$name.$b.actual"; then
  echo "GOLDEN PIN FAILED: $name/$b diverged from committed $R/$name.txt" >&2
  diff -u "$OUT/$name.$b.expected" "$OUT/$name.$b.actual" >&2 || true
  exit 1
fi
echo "pinned: $name/$b ($(wc -l < "$OUT/$name.$b.actual") lines byte-identical)"

# One figw slice: the closed-loop self-healing rows for inversek2j
# (step + ramp + transient at the per-benchmark default drift severity),
# re-run with exactly the flags run_all.sh uses and byte-compared the
# same way — pins the whole watchdog → recert → hot-swap → conformance
# chain, swap epoch and trial counts included.
name=figw_self_healing
b=inversek2j
cargo run --locked --release -q -p mithra-bench --bin "$name" -- \
  --scale full --quality 5 --cache-dir target/mithra-cache \
  --out "$OUT/BENCH_recert_pin.json" \
  --bench "$b" > "$OUT/$name.txt" 2> "$OUT/$name.log"
grep "^$b" "$R/$name.txt" | tr -s ' ' > "$OUT/$name.$b.expected"
grep "^$b" "$OUT/$name.txt" | tr -s ' ' > "$OUT/$name.$b.actual"
if ! cmp -s "$OUT/$name.$b.expected" "$OUT/$name.$b.actual"; then
  echo "GOLDEN PIN FAILED: $name/$b diverged from committed $R/$name.txt" >&2
  diff -u "$OUT/$name.$b.expected" "$OUT/$name.$b.actual" >&2 || true
  exit 1
fi
echo "pinned: $name/$b ($(wc -l < "$OUT/$name.$b.actual") lines byte-identical)"

# One figv slice: the design-space exploration rows for inversek2j
# (frontier lines + table row), re-run with exactly the flags
# run_all.sh uses and byte-compared the same way — pins the probe
# predictors, the prune/budget selection, every fully-evaluated
# certificate and the emitted frontier.
name=figv_design_space
b=inversek2j
cargo run --locked --release -q -p mithra-bench --bin "$name" -- \
  --scale full --quality 5 --cache-dir target/mithra-cache \
  --out "$OUT/BENCH_explore_pin.json" \
  --bench "$b" > "$OUT/$name.txt" 2> "$OUT/$name.log"
grep "^$b" "$R/$name.txt" | tr -s ' ' > "$OUT/$name.$b.expected"
grep "^$b" "$OUT/$name.txt" | tr -s ' ' > "$OUT/$name.$b.actual"
if ! cmp -s "$OUT/$name.$b.expected" "$OUT/$name.$b.actual"; then
  echo "GOLDEN PIN FAILED: $name/$b diverged from committed $R/$name.txt" >&2
  diff -u "$OUT/$name.$b.expected" "$OUT/$name.$b.actual" >&2 || true
  exit 1
fi
echo "pinned: $name/$b ($(wc -l < "$OUT/$name.$b.actual") lines byte-identical)"
echo "golden pin OK"
