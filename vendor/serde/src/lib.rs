//! Offline-vendored stand-in for the `serde` facade.
//!
//! The real serde is a zero-copy visitor framework; every use in this
//! workspace, however, flows through `serde_json` strings. This vendored
//! replacement therefore models serialization as conversion to and from
//! an owned [`Value`] tree, which `serde_json` (also vendored) renders
//! as JSON. The public surface the workspace relies on is preserved:
//! `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` (behind the `derive` feature) and
//! the `#[serde(skip)]` field attribute.
//!
//! Integers are kept exact: `u64` values (dataset seeds) never round-trip
//! through `f64`. Non-finite floats serialize as `null` and deserialize
//! back as NaN, mirroring `serde_json`'s lossy treatment.

// Lets derive-generated `::serde::` paths resolve inside this crate's
// own tests.
extern crate self as serde;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An owned tree of serialized data — the data model of this vendored
/// serde. JSON maps onto it directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`; also the encoding of non-finite floats.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer (negative numbers).
    Int(i64),
    /// An unsigned integer; kept separate so `u64` stays exact.
    UInt(u64),
    /// A finite floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// Key–value pairs in insertion order (struct fields, enum tags).
    Object(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a [`Value`] tree.
    fn serialize(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree does not match `Self`'s shape.
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

/// A deserialization failure: shape or type mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with a caller-supplied message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    fn expected(what: &str, got: &Value) -> Self {
        Self {
            message: format!("expected {what}, found {}", got.kind()),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

static NULL_VALUE: Value = Value::Null;

/// Looks up a struct field in an object value (derive support).
///
/// # Errors
///
/// Errors when `value` is not an object or lacks the field.
pub fn get_field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom(format!("missing field `{name}`"))),
        other => Err(DeError::expected("object", other)),
    }
}

/// Splits an externally tagged enum value into `(variant, payload)`:
/// a bare string is a unit variant (payload `null`); a single-entry
/// object is a data-carrying variant (derive support).
///
/// # Errors
///
/// Errors on any other shape.
pub fn as_variant(value: &Value) -> Result<(&str, &Value), DeError> {
    match value {
        Value::Str(tag) => Ok((tag, &NULL_VALUE)),
        Value::Object(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(DeError::expected("enum variant", other)),
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let wide = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$ty>::try_from(wide).map_err(|_| {
                    DeError::custom(format!(
                        "{wide} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )+};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($ty:ty),+) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }

        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        DeError::custom(format!("{u} out of range for i64"))
                    })?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$ty>::try_from(wide).map_err(|_| {
                    DeError::custom(format!(
                        "{wide} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )+};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            // JSON has no non-finite literals; serde_json emits null.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        // Every f32 is exactly representable as f64, so this widening
        // round-trips bit-for-bit.
        f64::from(*self).serialize()
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        let big: u64 = u64::MAX - 1;
        assert_eq!(u64::deserialize(&big.serialize()), Ok(big));
    }

    #[test]
    fn non_finite_floats_become_null_then_nan() {
        assert_eq!(f32::INFINITY.serialize(), Value::Null);
        assert!(f32::deserialize(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn f32_round_trips_bit_exactly() {
        for x in [0.1f32, f32::MIN_POSITIVE, 1e30, -0.0] {
            let back = f32::deserialize(&x.serialize()).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert!(get_field(&obj, "a").is_ok());
        assert!(get_field(&obj, "b").is_err());
        assert!(get_field(&Value::Null, "a").is_err());
    }

    #[test]
    fn variant_shapes() {
        let unit = Value::Str("Leaf".into());
        assert_eq!(as_variant(&unit).unwrap().0, "Leaf");
        let tagged = Value::Object(vec![("Split".into(), Value::Object(vec![]))]);
        assert_eq!(as_variant(&tagged).unwrap().0, "Split");
        assert!(as_variant(&Value::Array(vec![])).is_err());
    }
}
