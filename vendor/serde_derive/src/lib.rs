//! Offline-vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! Value-tree `serde` (see the workspace `README.md`, "Offline builds").
//!
//! The macros hand-parse the item's token stream (no `syn`/`quote` in an
//! offline sandbox) and emit impl blocks as source text. Supported input
//! shapes — the ones this workspace uses:
//!
//! * structs with named fields, including `#[serde(skip)]` fields
//!   (skipped on write, `Default::default()` on read);
//! * enums with unit variants (serialized as the variant-name string);
//! * enums with struct variants (externally tagged:
//!   `{"Variant": {fields…}}`).
//!
//! Tuple structs, tuple variants and generic items are rejected with a
//! `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, field list for struct variants.
    fields: Option<Vec<Field>>,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("error tokens")
}

/// Consumes one `#[...]` attribute (the leading `#` already consumed) and
/// reports whether it was `#[serde(skip)]`.
fn attr_is_serde_skip(iter: &mut impl Iterator<Item = TokenTree>) -> Result<bool, String> {
    match iter.next() {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Bracket => {
            let mut inner = group.stream().into_iter();
            let is_serde = matches!(
                inner.next(),
                Some(TokenTree::Ident(ident)) if ident.to_string() == "serde"
            );
            if !is_serde {
                return Ok(false);
            }
            match inner.next() {
                Some(TokenTree::Group(args)) => {
                    let body = args.stream().to_string();
                    if body.trim() == "skip" {
                        Ok(true)
                    } else {
                        Err(format!(
                            "unsupported serde attribute `{body}` (vendored derive)"
                        ))
                    }
                }
                _ => Ok(false),
            }
        }
        _ => Err("malformed attribute".to_string()),
    }
}

/// Parses named fields out of a brace-group stream; used for both struct
/// bodies and struct-variant bodies.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let mut skip = false;
        // Field attributes.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            skip |= attr_is_serde_skip(&mut iter)?;
        }
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type up to a top-level comma. Commas inside (), [],
        // {} are invisible here (groups are single trees); only commas
        // inside generic angle brackets need depth tracking.
        let mut angle_depth = 0i32;
        while let Some(tree) = iter.peek() {
            if let TokenTree::Punct(p) = tree {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        iter.next();
                        break;
                    }
                    _ => {}
                }
            }
            iter.next();
        }
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            attr_is_serde_skip(&mut iter)?;
        }
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                iter.next();
                Some(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple variant `{name}` unsupported by the vendored serde derive"
                ));
            }
            _ => None,
        };
        // Discriminant (`= expr`) and/or the trailing comma.
        while let Some(tree) = iter.peek() {
            if matches!(tree, TokenTree::Punct(p) if p.as_char() == ',') {
                iter.next();
                break;
            }
            iter.next();
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    // Outer attributes and visibility precede the keyword.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                attr_is_serde_skip(&mut iter)?;
            }
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                match word.as_str() {
                    "pub" => {
                        if matches!(
                            iter.peek(),
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis
                        ) {
                            iter.next();
                        }
                    }
                    "struct" | "enum" => break word,
                    other => return Err(format!("unexpected `{other}` before item keyword")),
                }
            }
            other => return Err(format!("unexpected token {other:?} before item keyword")),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic item `{name}` unsupported by the vendored serde derive"
        ));
    }
    let body_group = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!(
                "tuple struct `{name}` unsupported by the vendored serde derive"
            ));
        }
        other => return Err(format!("expected item body, found {other:?}")),
    };
    let body = if kind == "struct" {
        Body::Struct(parse_named_fields(body_group)?)
    } else {
        Body::Enum(parse_variants(body_group)?)
    };
    Ok(Item { name, body })
}

/// `fields.push(("name", <serialize expr>))` lines for a field list;
/// `accessor` is how a field named `f` is reached (`&self.f` or `f`).
fn serialize_fields(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for field in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "fields.push((String::from(\"{n}\"), ::serde::Serialize::serialize({a})));\n",
            n = field.name,
            a = accessor(&field.name),
        ));
    }
    out
}

/// `name: <deserialize expr>,` lines building a struct literal from the
/// object value bound to `source`.
fn deserialize_fields(fields: &[Field], source: &str) -> String {
    let mut out = String::new();
    for field in fields {
        if field.skip {
            out.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                field.name
            ));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::deserialize(::serde::get_field({s}, \"{n}\")?)?,\n",
                n = field.name,
                s = source,
            ));
        }
    }
    out
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => format!(
            "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
             {pushes}\
             ::serde::Value::Object(fields)",
            pushes = serialize_fields(fields, |f| format!("&self.{f}")),
        ),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.fields {
                    None => arms.push_str(&format!(
                        "Self::{v} => ::serde::Value::Str(String::from(\"{v}\")),\n"
                    )),
                    Some(fields) => {
                        let bindings: Vec<&str> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.as_str())
                            .collect();
                        arms.push_str(&format!(
                            "Self::{v} {{ {binds} .. }} => {{\n\
                             let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(vec![(String::from(\"{v}\"), \
                             ::serde::Value::Object(fields))])\n\
                             }}\n",
                            binds = bindings.iter().map(|b| format!("{b},")).collect::<String>(),
                            pushes = serialize_fields(fields, |f| f.to_string()),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => format!(
            "Ok(Self {{\n{fields}}})",
            fields = deserialize_fields(fields, "value"),
        ),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.fields {
                    None => arms.push_str(&format!("\"{v}\" => Ok(Self::{v}),\n")),
                    Some(fields) => arms.push_str(&format!(
                        "\"{v}\" => Ok(Self::{v} {{\n{fields}}}),\n",
                        fields = deserialize_fields(fields, "_payload"),
                    )),
                }
            }
            format!(
                "let (_tag, _payload) = ::serde::as_variant(value)?;\n\
                 match _tag {{\n\
                 {arms}\
                 other => Err(::serde::DeError::custom(format!(\n\
                 \"unknown variant `{{other}}` for `{name}`\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(\n\
         value: &::serde::Value,\n\
         ) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n\
         }}\n"
    )
}

/// Derives the vendored `serde::Serialize` (Value-tree conversion).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("vendored serde derive: {e}"))),
        Err(message) => compile_error(&message),
    }
}

/// Derives the vendored `serde::Deserialize` (Value-tree conversion).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("vendored serde derive: {e}"))),
        Err(message) => compile_error(&message),
    }
}
