//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::{
    any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Strategy,
    TestCaseError, TestCaseResult,
};
