//! Offline-vendored subset of the `proptest` API (see the workspace
//! `README.md`, "Offline builds").
//!
//! Provides the `proptest!`, `prop_assert!` and `prop_assert_eq!`
//! macros, the [`Strategy`] trait with `prop_map`, numeric-range and
//! `any::<T>()` strategies, `prop::collection::vec`,
//! `prop::array::uniform32` and tuple strategies — the surface this
//! workspace's property tests use.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! generated inputs' debug output unavailable, but the run is fully
//! deterministic (the RNG is seeded from the test name), so failures
//! reproduce exactly. Case count defaults to 32 and can be raised with
//! the `PROPTEST_CASES` environment variable, as upstream.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude;

/// The deterministic RNG driving test-case generation.
pub type TestRng = StdRng;

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// The result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property: runs `case` for the configured number of
/// generated inputs and panics on the first failure. Used by the
/// `proptest!` expansion; not part of the upstream API.
pub fn run_cases(name: &str, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let mut rng = TestRng::seed_from_u64(fnv1a(name));
    for i in 0..cases {
        if let Err(err) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}: {err}");
        }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Produces arbitrary values of a type, for [`any`].
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$ty>::MIN..=<$ty>::MAX)
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        Self { lo: len, hi: len }
    }
}

/// Strategy namespace mirroring upstream's `prop` module paths.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// The strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Generates vectors of `element` values with lengths in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::{Strategy, TestRng};

        /// The strategy returned by [`uniform32`].
        pub struct UniformArray32<S> {
            element: S,
        }

        impl<S: Strategy> Strategy for UniformArray32<S> {
            type Value = [S::Value; 32];

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.element.generate(rng))
            }
        }

        /// Generates `[T; 32]` arrays of `element` values.
        pub fn uniform32<S: Strategy>(element: S) -> UniformArray32<S> {
            UniformArray32 { element }
        }
    }
}

/// Defines property tests. Each `fn` becomes a `#[test]` that runs its
/// body over generated inputs; see the crate docs for the differences
/// from upstream (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($pname:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |rng| {
                    $(let $pname = $crate::Strategy::generate(&($strat), rng);)+
                    (move || -> $crate::TestCaseResult {
                        { $body };
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?} != {:?}`",
            left,
            right
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, bool)> {
        (0u32..100, any::<bool>()).prop_map(|(n, b)| (n * 2, b))
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0.5f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..=2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn arrays_are_fixed_size(a in prop::array::uniform32(any::<u8>())) {
            prop_assert_eq!(a.len(), 32);
        }

        #[test]
        fn mapped_tuples_flow_through(p in arb_pair()) {
            prop_assert_eq!(p.0 % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut first = Vec::new();
        crate::run_cases("det", |rng| {
            first.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("det", |rng| {
            second.push(Strategy::generate(&(0u64..1000), rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
