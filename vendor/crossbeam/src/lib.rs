//! Offline-vendored subset of the `crossbeam` 0.8 API.
//!
//! The sandbox this repository builds in has no access to crates.io, so
//! the workspace vendors the *small* slices of its external dependencies
//! it actually uses (see `README.md`, "Offline builds"). This crate
//! provides `crossbeam::thread::scope` with the crossbeam closure shape
//! (`|scope| ... scope.spawn(|_| ...)`), implemented on top of
//! `std::thread::scope`.
//!
//! Behavioural differences from upstream are limited to panic plumbing:
//! upstream joins panicked children and returns `Err`; this shim lets
//! `std::thread::scope` resume the unwind after joining. Code that treats
//! `scope(..)` returning `Ok` as "no child panicked" behaves identically.

/// Scoped threads (the `crossbeam::thread` module surface).
pub mod thread {
    /// A scope handle; spawn borrows non-`'static` data.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        ///
        /// Returns the payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope itself
        /// (crossbeam's signature), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller.
    /// All unjoined threads are joined before the call returns.
    ///
    /// # Errors
    ///
    /// The `Err` variant is reserved for child panics (upstream
    /// behaviour); this shim propagates child panics as unwinds instead,
    /// so an `Ok` is returned whenever the call returns at all.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_borrowed_slots() {
        let mut slots = vec![0u64; 16];
        super::thread::scope(|scope| {
            for (i, chunk) in slots.chunks_mut(4).enumerate() {
                scope.spawn(move |_| {
                    for (j, s) in chunk.iter_mut().enumerate() {
                        *s = (i * 4 + j) as u64 + 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn join_returns_thread_value() {
        let out = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 7u32);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }
}
