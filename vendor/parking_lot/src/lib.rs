//! Offline-vendored subset of the `parking_lot` 0.12 API.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free method
//! signatures (`lock()` returns the guard directly). See the workspace
//! `README.md`, "Offline builds", for why this exists.

use std::sync::{self, TryLockError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
