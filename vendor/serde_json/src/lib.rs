//! Offline-vendored subset of the `serde_json` API, backed by the
//! vendored Value-tree `serde` (see the workspace `README.md`, "Offline
//! builds"). Provides [`to_string`], [`to_vec`], [`from_str`] and
//! [`from_slice`].
//!
//! Numbers round-trip exactly: unsigned integers parse as `u64` without
//! an `f64` detour (dataset seeds near `u64::MAX` stay exact), and
//! floats are written with Rust's shortest round-trip formatting.

use serde::{DeError, Deserialize, Serialize, Value};

/// A serialization or parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(err: DeError) -> Self {
        Self::new(err.to_string())
    }
}

/// Serializes a value to a JSON string.
///
/// # Errors
///
/// Infallible for tree-shaped data; the `Result` mirrors upstream's
/// signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes a value to JSON bytes.
///
/// # Errors
///
/// See [`to_string`].
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Errors on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value).map_err(Error::from)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Errors on invalid UTF-8, malformed JSON, or a shape mismatch.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same bits — same guarantee upstream gets
                // from ryu.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let text =
            std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| Error::new(e.to_string()))?;
        let mut chars = text.char_indices();
        while let Some((offset, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += offset + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, h) = chars
                                .next()
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            code = code * 16
                                + h.to_digit(16).ok_or_else(|| Error::new("bad \\u escape"))?;
                        }
                        // Surrogate pairs are not produced by our writer;
                        // lone surrogates decode to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(Error::new(format!("bad escape {other:?}")));
                    }
                },
                c => out.push(c),
            }
        }
        Err(Error::new("unterminated string"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            return text
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")));
        }
        // Integers: parse exactly, preferring the unsigned form so u64
        // values survive; fall back to f64 only on 64-bit overflow.
        if text.starts_with('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v: u64 = u64::MAX - 3;
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), v);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
        assert_eq!(from_str::<bool>(" true ").unwrap(), true);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for x in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{json}");
        }
        let nan_json = to_string(&f64::NAN).unwrap();
        assert_eq!(nan_json, "null");
        assert!(from_str::<f64>(&nan_json).unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a \"quote\"\n\ttab \\ slash \u{1} unicode \u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_vectors_round_trip() {
        let v: Vec<Vec<f32>> = vec![vec![1.5, -2.25], vec![], vec![0.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&json).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_without_panic() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(from_str::<bool>(bad).is_err(), "{bad:?} should fail");
        }
        assert!(from_slice::<bool>(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn derived_struct_round_trips() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Demo {
            name: String,
            weights: Vec<f32>,
            count: usize,
            #[serde(skip)]
            scratch: Vec<u8>,
        }

        let demo = Demo {
            name: "sobel".into(),
            weights: vec![0.25, -1.5],
            count: 3,
            scratch: vec![9, 9],
        };
        let json = to_string(&demo).unwrap();
        assert!(!json.contains("scratch"), "skip field serialized: {json}");
        let back: Demo = from_str(&json).unwrap();
        assert_eq!(back.name, demo.name);
        assert_eq!(back.weights, demo.weights);
        assert_eq!(back.count, demo.count);
        assert!(back.scratch.is_empty(), "skip field must default");
    }

    #[test]
    fn derived_enums_round_trip() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Unit {
            A,
            B,
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Tree {
            Leaf {
                reject: bool,
            },
            Split {
                dim: usize,
                below: Box<Tree>,
                above: Box<Tree>,
            },
        }

        let json = to_string(&Unit::B).unwrap();
        assert_eq!(json, "\"B\"");
        assert_eq!(from_str::<Unit>(&json).unwrap(), Unit::B);
        assert!(from_str::<Unit>("\"C\"").is_err());

        let tree = Tree::Split {
            dim: 1,
            below: Box::new(Tree::Leaf { reject: true }),
            above: Box::new(Tree::Leaf { reject: false }),
        };
        let json = to_string(&tree).unwrap();
        assert_eq!(from_str::<Tree>(&json).unwrap(), tree);
    }
}
