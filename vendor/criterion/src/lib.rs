//! Offline-vendored subset of the `criterion` API (see the workspace
//! `README.md`, "Offline builds").
//!
//! Preserves the harness surface the workspace's `[[bench]]` targets
//! use — [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`black_box`], `criterion_group!`, `criterion_main!` — but replaces
//! upstream's statistical engine with a single timed batch per
//! benchmark, printed as a mean per-iteration wall time. Good enough to
//! keep `cargo bench` runnable and the targets compiling; not a
//! measurement-grade harness.

use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&name.into(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used per benchmark (upstream: samples
    /// per estimate).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (no-op here; upstream emits summary reports).
    pub fn finish(self) {}
}

fn run_benchmark(label: &str, iterations: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
        timed_iters: 0,
    };
    f(&mut bencher);
    if bencher.timed_iters > 0 {
        let per_iter = bencher.elapsed / bencher.timed_iters as u32;
        println!(
            "bench: {label:<50} {per_iter:>12.2?}/iter ({} iters)",
            bencher.timed_iters
        );
    } else {
        println!("bench: {label:<50} (no iterations run)");
    }
}

/// Times the routine under benchmark.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
    timed_iters: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing the batch.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.timed_iters += self.iterations;
    }
}

/// Declares a benchmark group function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_function_runs_directly() {
        let mut c = Criterion::default();
        let mut hits = 0usize;
        c.bench_function("direct", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }
}
