//! Offline-vendored subset of the `bytes` 1.x API.
//!
//! Provides cheaply clonable immutable byte buffers ([`Bytes`]), a
//! growable builder ([`BytesMut`]) and the [`BufMut`] write trait — the
//! slice of the upstream crate this workspace uses. Upstream's zero-copy
//! slicing machinery is intentionally absent; `Bytes` here shares its
//! storage through an `Arc`, which preserves O(1) `clone`. See the
//! workspace `README.md`, "Offline builds".

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply clonable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static slice (copied here; upstream borrows it).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// A growable byte buffer, convertible into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// An empty builder with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Freezes the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Sequential byte-sink write trait (the subset of upstream `BufMut`
/// used here: infallible appends to growable buffers).
pub trait BufMut {
    /// Appends a slice to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, b: u8) {
        self.put_slice(&[b]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_freezes_to_contents() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(&[1, 2]);
        b.put_u8(3);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
    }

    #[test]
    fn bytes_constructors_agree() {
        assert_eq!(Bytes::from_static(&[0]), Bytes::copy_from_slice(&[0]));
        assert!(Bytes::new().is_empty());
    }
}
