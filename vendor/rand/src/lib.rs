//! Offline-vendored subset of the `rand` 0.8 API.
//!
//! The sandbox this workspace builds in cannot reach a crates registry,
//! so the external dependencies are vendored as minimal in-tree
//! reimplementations (see the workspace `README.md`, "Offline builds").
//! This crate reimplements the slice of `rand` 0.8 the workspace uses,
//! following the upstream algorithms:
//!
//! * [`rngs::StdRng`]: the ChaCha12 generator with upstream's
//!   PCG32-based `seed_from_u64` seed expansion;
//! * [`Rng::gen_range`]: Lemire widening-multiply rejection sampling for
//!   integers, the `[1, 2)` mantissa-fill method for floats;
//! * [`Rng::gen_bool`]: Bernoulli via a 64-bit integer comparison;
//! * [`seq::SliceRandom::shuffle`]: Fisher–Yates with upstream's
//!   `gen_index` width reduction.
//!
//! Everything is deterministic for a given seed, which is what the
//! reproduction relies on (datasets, NPU initialization and training-set
//! shuffles are all seeded).

pub mod rngs;
pub mod seq;

mod range;

pub use range::SampleRange;

/// The core of a random number generator: uniform raw output.
pub trait RngCore {
    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with upstream `rand_core`'s
    /// PCG32-based filler, then constructs the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of [0, 1]"
        );
        if p >= 1.0 {
            return true;
        }
        // Upstream Bernoulli: compare 64 random bits against p * 2^64.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX - 1)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX - 1)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x), "{x} escaped the range");
            let y: f64 = rng.gen_range(0.0..1e-3);
            assert!((0.0..1e-3).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
        for _ in 0..1_000 {
            let v = rng.gen_range(5i32..6);
            assert_eq!(v, 5);
            let w = rng.gen_range(0u64..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "p=0.5 gave {heads}/10000");
    }
}
