//! Slice helpers. Only [`SliceRandom::shuffle`] is provided, following
//! `rand` 0.8's Fisher–Yates implementation, including its `gen_index`
//! width reduction (indices below `u32::MAX` sample through the 32-bit
//! path), so shuffles of seeded data match upstream exactly.

use crate::{Rng, RngCore};

/// Randomised operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

/// Upstream's index sampler: small bounds go through u32 generation.
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut data: Vec<u32> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<u8> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(99));
        b.shuffle(&mut StdRng::seed_from_u64(99));
        assert_eq!(a, b);
        let mut c = a.clone();
        c.shuffle(&mut StdRng::seed_from_u64(100));
        assert_ne!(a, c, "different seeds should permute differently");
    }

    #[test]
    fn trivial_slices_are_stable() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [7u8];
        one.shuffle(&mut rng);
        assert_eq!(one, [7]);
    }
}
