//! Concrete generators. Only [`StdRng`] is provided: the ChaCha12
//! stream cipher used by `rand` 0.8's `StdRng`, reimplemented here so
//! seeded sequences match upstream bit-for-bit.

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator: ChaCha with 12 rounds,
/// matching `rand` 0.8's `StdRng` output stream (stream id 0).
#[derive(Clone)]
pub struct StdRng {
    /// ChaCha input block: 4 constant words, 8 key words, a 64-bit
    /// block counter in words 12–13 and a zero nonce in words 14–15.
    state: [u32; 16],
    /// Current output block (the keystream), consumed word by word.
    buffer: [u32; 16],
    /// Next unread index into `buffer`; 16 means "exhausted".
    index: usize,
}

impl std::fmt::Debug for StdRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StdRng { .. }")
    }
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const DOUBLE_ROUNDS: usize = 6; // 12 ChaCha rounds

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl StdRng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit little-endian block counter across words 12 and 13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, bytes) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(bytes.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter and nonce) start at zero.
        Self {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let value = self.buffer[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        // Upstream composes 64-bit output from two 32-bit words, low first.
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_boundary_counter_advances() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(
            first_block, second_block,
            "counter must change the keystream"
        );
    }

    #[test]
    fn seed_bytes_all_matter() {
        let base = StdRng::from_seed([0u8; 32]);
        for i in 0..32 {
            let mut seed = [0u8; 32];
            seed[i] = 1;
            let mut changed = StdRng::from_seed(seed);
            let mut base = base.clone();
            assert_ne!(base.next_u64(), changed.next_u64(), "seed byte {i} ignored");
        }
    }

    #[test]
    fn seed_from_u64_reference_vector() {
        // First word of rand_core 0.6's PCG32 expansion of state 0:
        // state = 0*MUL + INC, then the xsh-rr output permutation.
        const INC: u64 = 11634580027462260723;
        let state = INC;
        let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
        let rot = (state >> 59) as u32;
        let expected_word = xorshifted.rotate_right(rot);

        struct Capture([u8; 32]);
        impl SeedableRng for Capture {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Capture(seed)
            }
        }
        let captured = Capture::seed_from_u64(0).0;
        let first = u32::from_le_bytes(captured[..4].try_into().unwrap());
        assert_eq!(first, expected_word);
    }
}
