//! Range sampling, following `rand` 0.8's `sample_single` algorithms:
//! Lemire widening-multiply rejection for integers (with small types
//! promoted to 32-bit generation, as upstream does) and the `[1, 2)`
//! mantissa-fill construction for floats. Matching these exactly keeps
//! seeded sequences identical to ones produced with the real crate.
//!
//! The trait structure also matches upstream — a blanket
//! [`SampleRange`] impl over a per-type [`SampleUniform`] — because the
//! blanket impl is what lets unsuffixed literals like
//! `rng.gen_range(0.85..1.15)` infer `f32` from the call site.

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A type with a uniform-sampling implementation over its ranges.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`. Callers guarantee
    /// `low < high`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Samples uniformly from `[low, high]`. Callers guarantee
    /// `low <= high`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// A range that [`crate::Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample empty range");
        T::sample_single_inclusive(low, high, rng)
    }
}

/// Widening multiply returning `(high, low)` halves of the product.
trait WideningMul: Sized {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn wmul(self, other: Self) -> (Self, Self) {
        let product = (self as u64) * (other as u64);
        ((product >> 32) as u32, product as u32)
    }
}

impl WideningMul for u64 {
    fn wmul(self, other: Self) -> (Self, Self) {
        let product = (self as u128) * (other as u128);
        ((product >> 64) as u64, product as u64)
    }
}

/// Lemire rejection sampling of a value in `[0, range)` with upstream's
/// bitmask zone (for 32-bit-and-wider generation widths).
macro_rules! lemire_loop {
    ($rng:ident, $range:ident, $gen:ident, $width:ty) => {{
        let zone: $width = ($range << $range.leading_zeros()).wrapping_sub(1);
        loop {
            let v: $width = $rng.$gen() as $width;
            let (hi, lo) = v.wmul($range);
            if lo <= zone {
                break hi;
            }
        }
    }};
}

macro_rules! uniform_int_impl {
    // $ty: sampled type; $unsigned: its unsigned twin; $u_large: the
    // width actually generated; $gen: RngCore method for $u_large.
    ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                let offset = lemire_loop!(rng, range, $gen, $u_large);
                low.wrapping_add(offset as $ty)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // Computed with wrapping arithmetic, as upstream: the
                // full type domain wraps to zero and falls back to a
                // plain full-width draw.
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    return rng.$gen() as $ty;
                }
                let offset = lemire_loop!(rng, range, $gen, $u_large);
                low.wrapping_add(offset as $ty)
            }
        }
    };
}

uniform_int_impl! { u32, u32, u32, next_u32 }
uniform_int_impl! { i32, u32, u32, next_u32 }
uniform_int_impl! { u64, u64, u64, next_u64 }
uniform_int_impl! { i64, u64, u64, next_u64 }
uniform_int_impl! { usize, usize, u64, next_u64 }
uniform_int_impl! { isize, usize, u64, next_u64 }

/// Rejection sampling for sub-32-bit types with upstream's exact zone:
/// `u32::MAX - (u32::MAX - range + 1) % range`, still generating u32s.
fn sample_small<R: RngCore + ?Sized>(rng: &mut R, range: u32) -> u32 {
    debug_assert!(range != 0);
    let ints_to_reject = (u32::MAX - range + 1) % range;
    let zone = u32::MAX - ints_to_reject;
    loop {
        let v = rng.next_u32();
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! uniform_small_int_impl {
    ($ty:ty, $unsigned:ty) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let range = high.wrapping_sub(low) as $unsigned as u32;
                low.wrapping_add(sample_small(rng, range) as $ty)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                // The wrap to zero happens at the narrow width, as
                // upstream: the full domain falls back to a plain draw.
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as u32;
                if range == 0 {
                    return rng.next_u32() as $ty;
                }
                low.wrapping_add(sample_small(rng, range) as $ty)
            }
        }
    };
}

uniform_small_int_impl! { u8, u8 }
uniform_small_int_impl! { i8, u8 }
uniform_small_int_impl! { u16, u16 }
uniform_small_int_impl! { i16, u16 }

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_one:expr, $gen:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let scale = high - low;
                assert!(
                    scale.is_finite(),
                    "cannot sample range with non-finite span"
                );
                loop {
                    // A uniform value in [1, 2): fixed exponent, random
                    // mantissa — then shifted down to [0, 1).
                    let mantissa = (rng.$gen() as $uty) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits($exponent_one | mantissa);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    // Rounding can land exactly on `high`; retry then,
                    // as upstream does.
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let scale = high - low;
                assert!(
                    scale.is_finite(),
                    "cannot sample range with non-finite span"
                );
                let mantissa = (rng.$gen() as $uty) >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits($exponent_one | mantissa);
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                if res > high {
                    high
                } else {
                    res
                }
            }
        }
    };
}

uniform_float_impl! { f32, u32, 32 - 23, 0x3F80_0000u32, next_u32 }
uniform_float_impl! { f64, u64, 64 - 52, 0x3FF0_0000_0000_0000u64, next_u64 }

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_int_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5i32..5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_float_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(1.0f32..1.0);
    }

    #[test]
    fn inclusive_full_domain_does_not_hang() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(0u8..=u8::MAX);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1_000 {
            let v = rng.gen_range(-10i32..-5);
            assert!((-10..-5).contains(&v));
        }
    }

    #[test]
    fn small_int_types_sample() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1_000 {
            let v = rng.gen_range(2u16..=256);
            assert!((2..=256).contains(&v));
            let b = rng.gen_range(0u8..4);
            assert!(b < 4);
        }
    }

    #[test]
    fn unsuffixed_float_literals_infer_from_target() {
        let mut rng = StdRng::seed_from_u64(17);
        let x: f32 = rng.gen_range(0.85..1.15);
        assert!((0.85..1.15).contains(&x));
        let base = 1.5f32;
        let y = base + rng.gen_range(-0.45..0.45);
        assert!((1.05..1.95).contains(&y));
    }
}
