//! MITHRA — statistical quality control for approximate acceleration.
//!
//! This facade crate re-exports the whole reproduction of *"Towards
//! Statistical Guarantees in Controlling Quality Tradeoffs for Approximate
//! Acceleration"* (ISCA 2016):
//!
//! * [`core`] — the paper's contribution: MISR table and neural
//!   classifiers, the statistical threshold optimizer, the compile
//!   pipeline;
//! * [`npu`] — the approximate accelerator substrate;
//! * [`axbench`] — the six-benchmark suite (Table I);
//! * [`sim`] — the system-level timing/energy simulator;
//! * [`stats`] — Clopper–Pearson exact intervals and friends;
//! * [`conform`] — the Monte-Carlo conformance harness that re-proves
//!   the certified guarantee on unseen datasets;
//! * [`bdi`] — Base-Delta-Immediate compression.
//!
//! # Quickstart
//!
//! ```no_run
//! use mithra::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. Pick a workload and a quality requirement: at most 5% final
//! //    quality loss, certified at 95% confidence for 90% of unseen
//! //    datasets.
//! let bench: Arc<_> = mithra::axbench::suite::by_name("sobel").unwrap().into();
//! let mut config = CompileConfig::default();
//! config.spec = QualitySpec::paper_default(0.05)?;
//!
//! // 2. Compile: trains the NPU, finds the certified threshold, trains
//! //    both hardware classifiers.
//! let compiled = compile(bench, &config)?;
//!
//! // 3. Run an unseen dataset under the table classifier.
//! let dataset = compiled.function.dataset(1_000_001, Default::default());
//! let profile = DatasetProfile::collect(&compiled.function, dataset);
//! let mut classifier = compiled.table.clone();
//! let run = mithra::sim::system::simulate(
//!     &compiled,
//!     &profile,
//!     &mut classifier,
//!     &Default::default(),
//! );
//! println!("speedup {:.2}x at {:.2}% quality loss", run.speedup(), run.quality_loss * 100.0);
//! # Ok::<(), mithra::core::MithraError>(())
//! ```

#![warn(missing_docs)]

pub use mithra_axbench as axbench;
pub use mithra_bdi as bdi;
pub use mithra_conform as conform;
pub use mithra_core as core;
pub use mithra_explore as explore;
pub use mithra_npu as npu;
pub use mithra_serve as serve;
pub use mithra_sim as sim;
pub use mithra_stats as stats;

/// The most commonly used items across all crates.
pub mod prelude {
    pub use mithra_axbench::prelude::*;
    pub use mithra_core::prelude::*;
    pub use mithra_npu::prelude::*;
    pub use mithra_serve::{EndpointSpec, RoutedServeSpec, ServeConfig, ServeEngine};
    pub use mithra_sim::report::{BenchmarkSummary, SuiteSummary};
    pub use mithra_sim::system::{
        run_routed, simulate, RoutedInvocationModel, RunResult, SimOptions,
    };
    pub use mithra_stats::clopper_pearson::{lower_bound, Confidence};
}
