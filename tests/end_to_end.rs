//! End-to-end integration: the full compile → classify → simulate flow
//! across crates, at smoke scale.

use mithra::prelude::*;
use mithra_core::random::RandomFilter;
use mithra_sim::system::simulate;
use std::sync::Arc;

fn compiled_smoke(name: &str) -> Compiled {
    let bench: Arc<_> = mithra::axbench::suite::by_name(name)
        .expect("suite benchmark")
        .into();
    compile(bench, &CompileConfig::smoke()).expect("smoke compile succeeds")
}

fn fresh_profile(compiled: &Compiled, seed: u64) -> DatasetProfile {
    let ds = compiled
        .function
        .dataset(seed, mithra::axbench::dataset::DatasetScale::Smoke);
    DatasetProfile::collect(&compiled.function, ds)
}

#[test]
fn pipeline_produces_working_system_for_every_benchmark() {
    for bench in mithra::axbench::suite::all() {
        let name = bench.name();
        let compiled = compiled_smoke(name);
        let profile = fresh_profile(&compiled, 5_000_000);
        let mut table = compiled.table.clone();
        let run = simulate(&compiled, &profile, &mut table, &SimOptions::default());
        assert!(run.accelerated_cycles > 0.0, "{name}: no cycles charged");
        assert!(run.quality_loss.is_finite(), "{name}: bad quality");
        assert!(
            run.invocation_rate() <= 1.0 && run.invocation_rate() >= 0.0,
            "{name}: invocation rate out of range"
        );
    }
}

#[test]
fn oracle_upper_bounds_quality_respecting_designs() {
    // The oracle maximizes benefit *among designs that never approximate
    // an above-threshold invocation*. A classifier with false negatives
    // can out-invoke it (by sacrificing quality), so dominance is only
    // asserted against runs with zero false negatives.
    let compiled = compiled_smoke("inversek2j");
    for seed in 5_100_000..5_100_005u64 {
        let profile = fresh_profile(&compiled, seed);
        let mut oracle = compiled.oracle_for(&profile);
        let mut table = compiled.table.clone();
        let mut neural = compiled.neural.clone();
        let opts = SimOptions::default();
        let o = simulate(&compiled, &profile, &mut oracle, &opts);
        assert_eq!(o.false_positives + o.false_negatives, 0);
        for run in [
            simulate(&compiled, &profile, &mut table, &opts),
            simulate(&compiled, &profile, &mut neural, &opts),
        ] {
            // Invocation-rate dominance over quality-respecting runs.
            if run.false_negatives == 0 {
                assert!(
                    o.invocation_rate() >= run.invocation_rate() - 1e-9,
                    "oracle out-invoked by a zero-FN design"
                );
                assert!(
                    o.speedup() >= run.speedup() * 0.98,
                    "oracle beaten by a zero-FN design"
                );
            }
            // And the oracle's quality always respects the threshold
            // semantics: every approximated invocation was within it.
            assert!(o.quality_loss.is_finite());
        }
    }
}

#[test]
fn quality_control_beats_full_approximation_on_quality() {
    let compiled = compiled_smoke("sobel");
    let mut better = 0;
    let n = 6;
    for seed in 5_200_000..(5_200_000 + n) {
        let profile = fresh_profile(&compiled, seed);
        let mut always = RandomFilter::new(1.0, 0);
        let mut table = compiled.table.clone();
        let opts = SimOptions::default();
        let full = simulate(&compiled, &profile, &mut always, &opts);
        let controlled = simulate(&compiled, &profile, &mut table, &opts);
        if controlled.quality_loss <= full.quality_loss + 1e-12 {
            better += 1;
        }
    }
    assert!(
        better >= n - 1,
        "quality control improved quality on only {better}/{n} datasets"
    );
}

#[test]
fn compiled_artifacts_are_internally_consistent() {
    let compiled = compiled_smoke("blackscholes");
    // The classifier training data is labeled against the compiled
    // threshold.
    for ex in compiled.training_data.iter().take(200) {
        assert_eq!(ex.input.len(), compiled.function.benchmark().input_dim());
    }
    // Compressed tables decompress to the same decisions.
    let stats = compiled.table.compress().stats();
    assert_eq!(stats.uncompressed_bytes, 4096);
    assert!(stats.compressed_bytes <= stats.uncompressed_bytes);
    // The neural classifier matches the accelerator's input width.
    assert_eq!(
        compiled.neural.topology().inputs(),
        compiled.function.benchmark().input_dim()
    );
    assert_eq!(compiled.neural.topology().outputs(), 2);
}

#[test]
fn online_updates_only_increase_conservatism() {
    let compiled = compiled_smoke("sobel");
    let profile = fresh_profile(&compiled, 5_300_000);
    let opts_off = SimOptions::default();
    let opts_on = SimOptions {
        online_update_period: 4,
        ..SimOptions::default()
    };
    let mut table_off = compiled.table.clone();
    let mut table_on = compiled.table.clone();
    let off = simulate(&compiled, &profile, &mut table_off, &opts_off);
    let on = simulate(&compiled, &profile, &mut table_on, &opts_on);
    // Online updates only ever set bits: the invocation rate cannot rise.
    assert!(on.invocation_rate() <= off.invocation_rate() + 1e-9);
}
