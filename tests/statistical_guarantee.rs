//! The headline claim, tested empirically: the Clopper–Pearson certified
//! success rate is a *conservative* floor for unseen-dataset behaviour.

use mithra::prelude::*;
use mithra_core::threshold::ThresholdOptimizer;
use mithra_stats::clopper_pearson::{lower_bound, Confidence};
use std::sync::Arc;

#[test]
fn certified_rate_holds_on_unseen_datasets() {
    // Compile sobel at a moderate spec over 25 datasets, then check the
    // oracle-filtered quality on 40 unseen datasets: the fraction meeting
    // the target should not fall below the certified floor (with slack
    // for the small sample).
    let bench: Arc<_> = mithra::axbench::suite::by_name("sobel").unwrap().into();
    let mut config = CompileConfig::smoke();
    config.compile_datasets = 25;
    config.spec = QualitySpec::new(0.08, 0.90, 0.60).unwrap();
    let compiled = compile(bench, &config).unwrap();

    let scale = config.scale;
    let n = 40u64;
    let mut successes = 0;
    for seed in 0..n {
        let ds = compiled.function.dataset(7_000_000 + seed, scale);
        let profile = DatasetProfile::collect(&compiled.function, ds);
        let replay =
            profile.replay_with_threshold(&compiled.function, compiled.threshold.threshold);
        if replay.quality_loss <= config.spec.max_quality_loss {
            successes += 1;
        }
    }
    let empirical = f64::from(successes) / n as f64;
    assert!(
        empirical >= compiled.threshold.certified_rate - 0.15,
        "empirical {empirical:.2} far below certified {:.2}",
        compiled.threshold.certified_rate
    );
}

#[test]
fn certification_is_monotone_in_threshold() {
    let bench: Arc<_> = mithra::axbench::suite::by_name("inversek2j")
        .unwrap()
        .into();
    let config = CompileConfig::smoke();
    let compiled = compile(bench, &config).unwrap();
    let optimizer = ThresholdOptimizer::new(config.spec);

    let mut prev_successes = u64::MAX;
    for step in 0..5 {
        let th = compiled.threshold.threshold * (1.0 + step as f32 * 0.5);
        let (s, _, _) = optimizer
            .certify(&compiled.function, &compiled.profiles, th)
            .unwrap();
        assert!(
            s <= prev_successes,
            "successes increased as the threshold loosened"
        );
        prev_successes = s;
    }
}

#[test]
fn paper_guarantee_arithmetic() {
    // The exact numbers behind the paper's §V-B1 statement: 235 of 250
    // validation sets passing certifies a 90% success rate at 95%
    // confidence.
    let beta = Confidence::new(0.95).unwrap();
    assert!(lower_bound(235, 250, beta).unwrap() >= 0.90);
    // And the guarantee really is conservative: the certified rate is
    // below the empirical 94%.
    assert!(lower_bound(235, 250, beta).unwrap() < 235.0 / 250.0);
}

#[test]
fn uncertifiable_specs_fail_loudly() {
    let bench: Arc<_> = mithra::axbench::suite::by_name("sobel").unwrap().into();
    let mut config = CompileConfig::smoke();
    config.compile_datasets = 5;
    // 5 datasets cannot certify 99% at 95% confidence no matter what.
    config.spec = QualitySpec::new(0.10, 0.95, 0.99).unwrap();
    let err = compile(bench, &config).unwrap_err();
    assert!(matches!(err, MithraError::Uncertifiable { .. }), "{err}");
}
