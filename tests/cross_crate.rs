//! Cross-crate seams: serialization, compression round-trips, and the
//! NPU/classifier cost interfaces the simulator consumes.

use mithra::prelude::*;
use mithra_npu::cost::NpuCostModel;
use std::sync::Arc;

fn compiled_smoke(name: &str) -> Compiled {
    let bench: Arc<_> = mithra::axbench::suite::by_name(name).unwrap().into();
    compile(bench, &CompileConfig::smoke()).unwrap()
}

#[test]
fn table_classifier_serde_round_trip_preserves_decisions() {
    let compiled = compiled_smoke("inversek2j");
    let json = serde_json::to_string(&compiled.table).expect("serializes");
    let mut restored: TableClassifier = serde_json::from_str(&json).expect("deserializes");
    let mut original = compiled.table.clone();

    let ds = compiled
        .function
        .dataset(8_000_000, mithra::axbench::dataset::DatasetScale::Smoke);
    for (i, input) in ds.iter().enumerate() {
        assert_eq!(
            original.classify(i, input),
            restored.classify(i, input),
            "decision diverged after serde round trip at invocation {i}"
        );
    }
}

#[test]
fn compressed_table_is_lossless() {
    let compiled = compiled_smoke("sobel");
    let compressed = compiled.table.compress();
    let bytes = compressed.decompress();
    // Re-compressing the decompressed content is a fixed point.
    let recompressed = mithra::bdi::CompressedTable::new(&bytes);
    assert_eq!(recompressed.decompress(), bytes);
    assert_eq!(
        compressed.stats().compressed_bytes,
        recompressed.stats().compressed_bytes
    );
}

#[test]
fn npu_parameters_round_trip_through_accelerator_config() {
    let compiled = compiled_smoke("blackscholes");
    let (weights, biases) = compiled.function.npu().to_parameters();
    let rebuilt = mithra::npu::mlp::Mlp::from_parameters(
        compiled.function.npu().topology().clone(),
        &weights,
        &biases,
        compiled.function.npu().output_activation(),
    )
    .unwrap();
    let input = vec![0.5f32; compiled.function.benchmark().input_dim()];
    assert_eq!(
        compiled.function.npu().run(&input).unwrap(),
        rebuilt.run(&input).unwrap()
    );
}

#[test]
fn classifier_overheads_price_into_energy_model() {
    use mithra_sim::energy::EnergyModel;
    let compiled = compiled_smoke("jmeint");
    let energy = EnergyModel::paper_default();
    let cost_model = NpuCostModel::new();

    let table_nj = energy.classifier_decision_nj(&compiled.table.overhead(), &cost_model);
    let neural_nj = energy.classifier_decision_nj(&compiled.neural.overhead(), &cost_model);
    // The neural classifier runs a whole network; it must cost more than
    // the table's handful of SRAM bit reads.
    assert!(neural_nj > table_nj * 10.0, "{neural_nj} vs {table_nj}");
}

#[test]
fn fixed_point_npu_tracks_float_npu() {
    use mithra::npu::fixed::{FixedMlp, QFormat};
    let compiled = compiled_smoke("inversek2j");
    let fixed = FixedMlp::quantize(compiled.function.npu(), QFormat::new(16).unwrap());
    let input = vec![0.4f32, 0.6];
    let float_out = compiled.function.npu().run(&input).unwrap();
    let fixed_out = fixed.run(&input).unwrap();
    for (f, q) in float_out.iter().zip(&fixed_out) {
        assert!((f - q).abs() < 0.02, "float {f} vs fixed {q}");
    }
}
