//! Integration tests for the paper's extension features: multi-function
//! threshold tuples, context-switch state, online neural training, and
//! the Rumba-style comparison designs.

use mithra::prelude::*;
use mithra_core::context::{ArchitecturalState, ContextSwitchModel};
use mithra_core::function::NpuTrainConfig;
use mithra_core::multi::{Region, TupleOptimizer};
use mithra_core::online::OnlineNeuralClassifier;
use mithra_core::regression::{RegressionFilter, RegressionTrainConfig};
use mithra_core::tree::{TreeClassifier, TreeTrainConfig};
use mithra_sim::system::simulate;
use std::sync::Arc;

fn compiled_smoke(name: &str) -> Compiled {
    let bench: Arc<_> = mithra::axbench::suite::by_name(name).unwrap().into();
    compile(bench, &CompileConfig::smoke()).unwrap()
}

#[test]
fn tuple_optimizer_certifies_a_two_region_application() {
    let scale = mithra::axbench::dataset::DatasetScale::Smoke;
    let regions: Vec<Region> = ["sobel", "inversek2j"]
        .iter()
        .map(|name| {
            let bench: Arc<dyn mithra::axbench::benchmark::Benchmark> =
                mithra::axbench::suite::by_name(name).unwrap().into();
            let train: Vec<_> = (0..2).map(|s| bench.dataset(s, scale)).collect();
            let function = AcceleratedFunction::train(
                bench,
                &train,
                &NpuTrainConfig {
                    epochs: Some(25),
                    max_samples: 1200,
                    seed: 2,
                },
            )
            .unwrap();
            let profiles = (0..15)
                .map(|s| DatasetProfile::collect(&function, function.dataset(600 + s, scale)))
                .collect();
            Region {
                function,
                profiles,
                weight: 1.0,
            }
        })
        .collect();

    let spec = QualitySpec::new(0.12, 0.9, 0.5).unwrap();
    let outcome = TupleOptimizer::new(spec).optimize(&regions).unwrap();
    assert_eq!(outcome.thresholds.len(), 2);
    assert!(outcome.certified_rate >= 0.5);
}

#[test]
fn architectural_state_sizes_and_lazy_switching() {
    let compiled = compiled_smoke("sobel");
    let state = ArchitecturalState::of(&compiled);
    assert!(state.total_bytes() > 0);
    let model = ContextSwitchModel::default_model();
    // With the default 30% touch probability, lazy switching wins.
    assert!(model.lazy_saving(&state) > 1.0);
    assert!(model.eager_cycles(&state) > model.lazy_expected_cycles(&state));
}

#[test]
fn online_neural_classifier_runs_in_the_simulator() {
    let compiled = compiled_smoke("inversek2j");
    let ds = compiled
        .function
        .dataset(9_100_000, mithra::axbench::dataset::DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, ds);
    let mut online = OnlineNeuralClassifier::new(
        compiled.neural.clone(),
        compiled.training_data.clone(),
        compiled.function.benchmark().input_dim(),
        Default::default(),
        64,
    );
    let opts = SimOptions {
        online_update_period: 2,
        ..SimOptions::default()
    };
    let run = simulate(&compiled, &profile, &mut online, &opts);
    assert!(run.quality_loss.is_finite());
    assert!(online.pending_observations() > 0 || online.refresh_count() > 0);
}

#[test]
fn rumba_style_designs_run_in_the_simulator() {
    let compiled = compiled_smoke("sobel");
    let ds = compiled
        .function
        .dataset(9_200_000, mithra::axbench::dataset::DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, ds);
    let opts = SimOptions::default();

    let mut tree =
        TreeClassifier::train(&compiled.training_data, &TreeTrainConfig::default()).unwrap();
    let tree_run = simulate(&compiled, &profile, &mut tree, &opts);
    assert!(tree_run.invocation_rate() <= 1.0);

    let mut regression = RegressionFilter::train(
        &compiled.profiles,
        compiled.threshold.threshold,
        &RegressionTrainConfig {
            epochs: 30,
            max_samples: 2000,
            ..RegressionTrainConfig::default()
        },
    )
    .unwrap();
    let reg_run = simulate(&compiled, &profile, &mut regression, &opts);
    assert!(reg_run.quality_loss.is_finite());
}

#[test]
fn all_designs_share_the_classifier_interface() {
    // The whole design space is interchangeable behind `Classifier` —
    // the property that makes the evaluation harness generic.
    let compiled = compiled_smoke("blackscholes");
    let ds = compiled
        .function
        .dataset(9_300_000, mithra::axbench::dataset::DatasetScale::Smoke);
    let profile = DatasetProfile::collect(&compiled.function, ds);

    let classifiers: Vec<Box<dyn Classifier>> = vec![
        Box::new(compiled.table.clone()),
        Box::new(compiled.neural.clone()),
        Box::new(compiled.oracle_for(&profile)),
        Box::new(mithra_core::random::RandomFilter::new(0.5, 1)),
        Box::new(
            TreeClassifier::train(&compiled.training_data, &TreeTrainConfig::default()).unwrap(),
        ),
    ];
    for mut c in classifiers {
        let run = simulate(&compiled, &profile, c.as_mut(), &SimOptions::default());
        assert!(
            run.accelerated_cycles > 0.0,
            "{} charged no cycles",
            c.name()
        );
    }
}
